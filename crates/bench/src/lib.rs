//! # dr-bench — benchmark harness support
//!
//! Shared fixtures for the Criterion benches under `benches/`: each bench
//! regenerates the timing behaviour behind one of the paper's tables or
//! figures (see DESIGN.md §3 for the index), and `ablations` measures the
//! design choices of §IV-B in isolation.

#![warn(missing_docs)]

use dr_core::MatchContext;
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::Relation;

/// A prepared keyed-dataset workload: KB + rules + clean/dirty relations.
pub struct Workload {
    /// The knowledge base.
    pub kb: dr_kb::KnowledgeBase,
    /// The verified rule set.
    pub rules: Vec<dr_core::DetectiveRule>,
    /// Ground truth.
    pub clean: Relation,
    /// Noisy input.
    pub dirty: Relation,
}

impl Workload {
    /// A match context over the workload's KB.
    pub fn ctx(&self) -> MatchContext<'_> {
        MatchContext::new(&self.kb)
    }

    /// A match context sharing `registry`, so repairs warm-start from value
    /// caches populated by earlier same-schema runs.
    pub fn ctx_with_registry(
        &self,
        registry: std::sync::Arc<dr_core::CacheRegistry>,
    ) -> MatchContext<'_> {
        MatchContext::with_registry(&self.kb, registry)
    }
}

/// Builds a Nobel workload of `n` tuples with 10% noise.
pub fn nobel_workload(n: usize, flavor: KbFlavor) -> Workload {
    let world = NobelWorld::generate(n, 71);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 71).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::of(flavor));
    let rules = NobelWorld::rules(&kb);
    Workload {
        kb,
        rules,
        clean,
        dirty,
    }
}

/// Builds a Nobel workload plus a stream of `stream_len` dirty variants of
/// its clean relation (same schema, different noise seeds) — the
/// same-schema stream shape the
/// [`CacheRegistry`](dr_core::CacheRegistry) targets. The workload's own
/// `dirty` is the first element of the stream.
pub fn nobel_stream_workload(
    n: usize,
    stream_len: usize,
    flavor: KbFlavor,
) -> (Workload, Vec<Relation>) {
    let world = NobelWorld::generate(n, 71);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let stream: Vec<Relation> = (0..stream_len.max(1) as u64)
        .map(|i| {
            inject(
                &clean,
                &NoiseSpec::new(0.10, 71 ^ (i + 1)).with_excluded(vec![name]),
                &world.semantic_source(),
            )
            .0
        })
        .collect();
    let kb = world.kb(&KbProfile::of(flavor));
    let rules = NobelWorld::rules(&kb);
    let dirty = stream[0].clone();
    (
        Workload {
            kb,
            rules,
            clean,
            dirty,
        },
        stream,
    )
}

/// Builds a UIS workload of `n` tuples with 10% noise.
pub fn uis_workload(n: usize, flavor: KbFlavor) -> Workload {
    let world = UisWorld::generate(n, 73);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 73).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::of(flavor));
    let rules = UisWorld::rules(&kb);
    Workload {
        kb,
        rules,
        clean,
        dirty,
    }
}
