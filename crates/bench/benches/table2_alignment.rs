//! Table II bench: alignment counting between the datasets and both KBs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_datasets::{alignment, KbFlavor, KbProfile, NobelWorld, UisWorld};

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_alignment");
    group.sample_size(20);

    let nobel = NobelWorld::generate(500, 5);
    let nobel_relation = nobel.clean_relation();
    let uis = UisWorld::generate(1_000, 5);
    let uis_relation = uis.clean_relation();

    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let profile = KbProfile::of(flavor);
        let nobel_kb = nobel.kb(&profile);
        group.bench_with_input(BenchmarkId::new("nobel", flavor.label()), &(), |b, ()| {
            b.iter(|| alignment(&nobel_kb, &nobel_relation, 500))
        });
        let uis_kb = uis.kb(&profile);
        group.bench_with_input(BenchmarkId::new("uis", flavor.label()), &(), |b, ()| {
            b.iter(|| alignment(&uis_kb, &uis_relation, 500))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
