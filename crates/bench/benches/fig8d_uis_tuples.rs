//! Figure 8(d) bench: UIS repair time vs tuple count, all methods.
//! (Criterion scale is reduced; the `exp_fig8` binary runs 20K–100K.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dr_baselines::{llunatic_repair, mine_constant_cfds, LlunaticConfig};
use dr_bench::uis_workload;
use dr_core::repair::basic::basic_repair;
use dr_core::{fast_repair, ApplyOptions};
use dr_datasets::KbFlavor;
use dr_eval::runner::fds;

fn bench_fig8d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8d_uis_tuples");
    group.sample_size(10);

    for size in [500usize, 1_000, 2_000] {
        let workload = uis_workload(size, KbFlavor::YagoLike);
        let ctx = workload.ctx();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("bRepair", size), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                basic_repair(
                    &ctx,
                    &workload.rules,
                    &mut working,
                    &ApplyOptions::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fRepair", size), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                fast_repair(
                    &ctx,
                    &workload.rules,
                    &mut working,
                    &ApplyOptions::default(),
                )
            })
        });
        let fd_list = fds::uis(workload.clean.schema());
        group.bench_with_input(BenchmarkId::new("llunatic", size), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                llunatic_repair(&mut working, &fd_list, &LlunaticConfig::default())
            })
        });
        let cfds = mine_constant_cfds(&workload.clean, &fd_list);
        group.bench_with_input(BenchmarkId::new("ccfd", size), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                cfds.apply(&mut working)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8d);
criterion_main!(benches);
