//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! 1. **Rule order selection** — fRepair's topological check order vs the
//!    basic chase's re-scanning, with the element cache held constant.
//! 2. **Shared element cache** — per-rule element memoization vs fresh
//!    caches, with the check order held constant.
//! 3. **Signature index** — PASS-JOIN threshold-ED lookup vs a linear scan
//!    with the banded verifier.
//! 4. **Relation-scoped value cache** — cross-tuple memoization of element
//!    checks (sequential and work-stealing parallel) vs the per-tuple-only
//!    overlay, on a duplicate-heavy relation; prints the hit rate and phase
//!    timings from the repair report.
//! 5. **Cache persistence** — a stream of same-schema relations repaired
//!    cold (fresh value cache per relation) vs warm (one `CacheRegistry`
//!    shared across the stream).
//! 6. **Batch claiming** — the work-stealing scheduler claiming one row per
//!    `fetch_add` vs an auto-tuned batch of rows; also prints the
//!    per-worker `rows_claimed` / `steal_attempts` counters from the
//!    metric registry for each regime.
//! 7. **Observability overhead** — repair with no `Obs` handle vs an
//!    attached registry + tracer at sampling rates 0 / 1% / 100%
//!    (DESIGN.md §4d's "pay only for what you sample" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_bench::{nobel_stream_workload, uis_workload};
use dr_core::repair::basic::basic_repair;
use dr_core::repair::cache::ElementCache;
use dr_core::repair::rule_graph::RuleGraph;
use dr_core::{apply_rule_cached, fast_repair, ApplyOptions, MatchContext};
use dr_datasets::KbFlavor;
use dr_relation::Relation;
use dr_simmatch::{within_bool, SignatureIndex};

/// fRepair's check order but a fresh cache per rule application
/// (order-only ablation).
fn order_only_repair(
    ctx: &MatchContext<'_>,
    rules: &[dr_core::DetectiveRule],
    relation: &mut Relation,
    opts: &ApplyOptions,
) {
    let order = RuleGraph::build(rules).check_order();
    for row in 0..relation.len() {
        let tuple = relation.tuple_mut(row);
        for group in &order {
            let mut remaining = group.clone();
            loop {
                let mut fired = None;
                for (pos, &ri) in remaining.iter().enumerate() {
                    let mut cache = ElementCache::new(); // fresh: no sharing
                    if apply_rule_cached(ctx, &rules[ri], tuple, opts, &mut cache).applied() {
                        fired = Some(pos);
                        break;
                    }
                }
                match fired {
                    Some(pos) => {
                        remaining.remove(pos);
                    }
                    None => break,
                }
            }
        }
    }
}

fn bench_repair_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_repair");
    group.sample_size(10);
    let workload = uis_workload(1_000, KbFlavor::YagoLike);
    let ctx = workload.ctx();
    let opts = ApplyOptions::default();

    group.bench_function("full_fRepair(order+cache)", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            fast_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    group.bench_function("order_only(no shared cache)", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            order_only_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    group.bench_function("neither(bRepair)", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            basic_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    group.finish();
}

/// The pre-`ValueCache` fast repair: per-tuple element caches only, no
/// cross-tuple sharing (cache-scope ablation baseline).
fn tuple_only_repair(
    ctx: &MatchContext<'_>,
    rules: &[dr_core::DetectiveRule],
    relation: &mut Relation,
    opts: &ApplyOptions,
) {
    let repairer = dr_core::FastRepairer::new(rules);
    for row in 0..relation.len() {
        let _ = repairer.repair_tuple(ctx, relation.tuple_mut(row), opts);
    }
}

fn bench_value_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_value_cache");
    group.sample_size(10);
    // UIS columns (City/State/Zip) are drawn from small pools, so values
    // repeat across many rows — the duplicate-heavy shape the
    // relation-scoped cache targets.
    let workload = uis_workload(1_000, KbFlavor::YagoLike);
    let ctx = workload.ctx();
    let opts = ApplyOptions::default();

    // Measure (and report) the cross-tuple hit rate once, outside timing.
    let mut probe = workload.dirty.clone();
    let report = fast_repair(&ctx, &workload.rules, &mut probe, &opts);
    assert!(
        report.cache.hits() > 0,
        "duplicate-heavy relation must produce cross-tuple cache hits: {:?}",
        report.cache
    );
    eprintln!(
        "value-cache: sequential hit rate {:.1}% ({} hits / {} misses), prewarm {:?}, repair {:?}",
        report.cache.hit_rate() * 100.0,
        report.cache.hits(),
        report.cache.misses(),
        report.timing.prewarm,
        report.timing.repair,
    );
    let mut probe = workload.dirty.clone();
    let par_opts = dr_core::ParallelOptions {
        apply: opts.clone(),
        threads: 4,
        ..Default::default()
    };
    let report = dr_core::parallel_repair(&ctx, &workload.rules, &mut probe, &par_opts);
    eprintln!(
        "value-cache: 4-thread hit rate {:.1}% ({} hits / {} misses), prewarm {:?}, repair {:?}",
        report.cache.hit_rate() * 100.0,
        report.cache.hits(),
        report.cache.misses(),
        report.timing.prewarm,
        report.timing.repair,
    );

    group.bench_function("shared_value_cache(sequential)", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            fast_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    group.bench_function("shared_value_cache(4 threads)", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            dr_core::parallel_repair(&ctx, &workload.rules, &mut working, &par_opts)
        })
    });
    group.bench_function("per_tuple_cache_only", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            tuple_only_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    group.finish();
}

fn bench_signature_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_signature_index");

    // A realistic label pool: UIS street names.
    let world = dr_datasets::UisWorld::generate(20_000, 3);
    let labels: Vec<String> = world.streets.clone();
    let queries: Vec<String> = labels
        .iter()
        .take(50)
        .map(|s| {
            // Perturb to force fuzzy matching.
            let mut chars: Vec<char> = s.chars().collect();
            if chars.len() > 2 {
                chars.swap(0, 1);
            }
            chars.into_iter().collect()
        })
        .collect();

    let index = SignatureIndex::build(
        2,
        labels
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str())),
    );
    group.bench_with_input(
        BenchmarkId::new("passjoin_index", labels.len()),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += index.lookup(q).len();
                }
                hits
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("linear_scan", labels.len()),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += labels.iter().filter(|l| within_bool(q, l, 2)).count();
                }
                hits
            })
        },
    );
    group.finish();
}

fn bench_cache_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cache_persistence");
    group.sample_size(10);
    let (workload, stream) = nobel_stream_workload(1_000, 5, KbFlavor::YagoLike);
    let repairer = dr_core::FastRepairer::new(&workload.rules);
    let opts = ApplyOptions::default();

    // Both regimes share `workload`'s match context indexes; only the value
    // cache's lifetime differs, so the delta isolates persistence.
    let ctx = workload.ctx();
    group.bench_function("cold(fresh cache per relation)", |b| {
        b.iter(|| {
            for dirty in &stream {
                let mut working = dirty.clone();
                repairer.repair_relation(&ctx, &mut working, &opts);
            }
        })
    });
    group.bench_function("warm(shared registry)", |b| {
        b.iter(|| {
            // A fresh registry per iteration: relation 1 is the cold fill,
            // relations 2..n warm-start from it.
            let registry = std::sync::Arc::new(dr_core::CacheRegistry::new(
                dr_core::RegistryConfig::default(),
            ));
            let ctx = workload.ctx_with_registry(registry);
            for dirty in &stream {
                let mut working = dirty.clone();
                repairer.repair_relation(&ctx, &mut working, &opts);
            }
        })
    });
    group.finish();
}

fn bench_batch_claim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batch_claim");
    group.sample_size(10);
    // UIS is narrow (arity 6), the shape batch claiming targets.
    let workload = uis_workload(1_000, KbFlavor::YagoLike);
    let ctx = workload.ctx();
    for (label, batch_claim) in [("single_row_claim", false), ("batch_claim(auto)", true)] {
        let par_opts = dr_core::ParallelOptions {
            threads: 4,
            batch_claim,
            ..Default::default()
        };
        // Probe run with a metric registry attached: surface the per-worker
        // claim/steal counters the regimes differ by (outside timing).
        let obs = std::sync::Arc::new(dr_obs::Obs::new());
        let obs_ctx = workload.ctx().with_obs(std::sync::Arc::clone(&obs));
        let mut probe = workload.dirty.clone();
        dr_core::parallel_repair(&obs_ctx, &workload.rules, &mut probe, &par_opts);
        let snap = obs.metrics().snapshot();
        let series = |name: &str| -> String {
            snap.counters
                .iter()
                .filter(|c| c.name == name)
                .map(|c| format!("{}={}", c.labels, c.value))
                .collect::<Vec<_>>()
                .join(" ")
        };
        eprintln!(
            "{label}: rows_claimed [{}], steal_attempts [{}]",
            series("scheduler_rows_claimed_total"),
            series("scheduler_steal_attempts_total"),
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                dr_core::parallel_repair(&ctx, &workload.rules, &mut working, &par_opts)
            })
        });
    }
    group.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_obs_overhead");
    group.sample_size(10);
    let workload = uis_workload(1_000, KbFlavor::YagoLike);
    let opts = ApplyOptions::default();

    let ctx = workload.ctx();
    group.bench_function("no_obs", |b| {
        b.iter(|| {
            let mut working = workload.dirty.clone();
            fast_repair(&ctx, &workload.rules, &mut working, &opts)
        })
    });
    for (label, rate) in [
        ("obs(rate=0)", 0.0),
        ("obs(rate=0.01)", 0.01),
        ("obs(rate=1.0)", 1.0),
    ] {
        group.bench_function(label, |b| {
            // A fresh Obs per sample batch so the registry never grows
            // unboundedly; the tracer writes to a null sink so the bench
            // measures event construction + sampling, not disk.
            let obs = std::sync::Arc::new(dr_obs::Obs::with_tracer(dr_obs::Tracer::new(
                Box::new(std::io::sink()),
                dr_obs::Sampler::new(42, rate),
            )));
            let ctx = workload.ctx().with_obs(obs);
            b.iter(|| {
                let mut working = workload.dirty.clone();
                fast_repair(&ctx, &workload.rules, &mut working, &opts)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repair_ablations,
    bench_value_cache,
    bench_signature_index,
    bench_cache_persistence,
    bench_batch_claim,
    bench_obs_overhead
);
criterion_main!(benches);
