//! Figure 7 bench: repair cost as the typo share varies (0%–100% of a 10%
//! error rate) — fuzzy matching dominates at high typo shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{KbFlavor, KbProfile, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_typo_rate");
    group.sample_size(10);

    let world = UisWorld::generate(1_000, 29);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let kb = world.kb(&KbProfile::of(KbFlavor::YagoLike));
    let rules = UisWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    for typo_pct in [0u64, 50, 100] {
        let spec = NoiseSpec::new(0.10, 29)
            .with_typo_share(typo_pct as f64 / 100.0)
            .with_excluded(vec![name]);
        let (dirty, _) = inject(&clean, &spec, &world.semantic_source());
        group.bench_with_input(BenchmarkId::new("drs", typo_pct), &(), |b, ()| {
            b.iter(|| {
                let mut working = dirty.clone();
                fast_repair(&ctx, &rules, &mut working, &ApplyOptions::default())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
