//! Figure 8(a) bench: WebTables repair time vs rule-pool size (10–50),
//! bRepair vs fRepair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::repair::basic::basic_repair;
use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, WebTablesWorld};

fn bench_fig8a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_webtables_rules");
    group.sample_size(10);

    let world = WebTablesWorld::generate(41);
    let kb = world.kb(&KbProfile::yago());
    let ctx = MatchContext::new(&kb);
    let all_rules = world.rules(&kb);

    for n_rules in [10usize, 30, 50] {
        let rules = &all_rules[..n_rules.min(all_rules.len())];
        group.bench_with_input(BenchmarkId::new("bRepair", n_rules), &(), |b, ()| {
            b.iter(|| {
                for table in &world.tables {
                    let table_rules =
                        WebTablesWorld::applicable_rules(rules, table.dirty.schema().arity());
                    let mut working = table.dirty.clone();
                    basic_repair(&ctx, &table_rules, &mut working, &ApplyOptions::default());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("fRepair", n_rules), &(), |b, ()| {
            b.iter(|| {
                for table in &world.tables {
                    let table_rules =
                        WebTablesWorld::applicable_rules(rules, table.dirty.schema().arity());
                    let mut working = table.dirty.clone();
                    fast_repair(&ctx, &table_rules, &mut working, &ApplyOptions::default());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8a);
criterion_main!(benches);
