//! Table III bench: the full DR repair pass (fRepair) and the KATARA
//! simulation on Nobel and UIS against both KBs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_bench::{nobel_workload, uis_workload};
use dr_core::{ApplyOptions, FastRepairer};
use dr_datasets::KbFlavor;
use dr_eval::katara_pattern;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_quality");
    group.sample_size(10);

    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        for (name, workload) in [
            ("nobel-500", nobel_workload(500, flavor)),
            ("uis-1000", uis_workload(1_000, flavor)),
        ] {
            let ctx = workload.ctx();
            let repairer = FastRepairer::new(&workload.rules);
            group.bench_with_input(
                BenchmarkId::new(format!("drs/{name}"), flavor.label()),
                &(),
                |b, ()| {
                    b.iter(|| {
                        let mut working = workload.dirty.clone();
                        repairer.repair_relation(&ctx, &mut working, &ApplyOptions::default())
                    })
                },
            );
            let pattern = katara_pattern(&workload.rules);
            group.bench_with_input(
                BenchmarkId::new(format!("katara/{name}"), flavor.label()),
                &(),
                |b, ()| {
                    b.iter(|| {
                        let katara = dr_baselines::Katara::new(&ctx, &pattern);
                        let mut working = workload.dirty.clone();
                        katara.clean(&mut working)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
