//! Figure 6 bench: repair cost as the error rate grows (4%–20%), DRs vs
//! the IC-based baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_baselines::{llunatic_repair, mine_constant_cfds, LlunaticConfig};
use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{KbFlavor, KbProfile, NobelWorld};
use dr_eval::runner::fds;
use dr_relation::noise::{inject, NoiseSpec};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_error_rate");
    group.sample_size(10);

    let world = NobelWorld::generate(500, 23);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let kb = world.kb(&KbProfile::of(KbFlavor::YagoLike));
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);
    let fd_list = fds::nobel(clean.schema());
    let cfds = mine_constant_cfds(&clean, &fd_list);

    for rate_pct in [4u64, 12, 20] {
        let spec = NoiseSpec::new(rate_pct as f64 / 100.0, 23).with_excluded(vec![name]);
        let (dirty, _) = inject(&clean, &spec, &world.semantic_source());
        group.bench_with_input(BenchmarkId::new("drs", rate_pct), &(), |b, ()| {
            b.iter(|| {
                let mut working = dirty.clone();
                fast_repair(&ctx, &rules, &mut working, &ApplyOptions::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("llunatic", rate_pct), &(), |b, ()| {
            b.iter(|| {
                let mut working = dirty.clone();
                llunatic_repair(&mut working, &fd_list, &LlunaticConfig::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("ccfd", rate_pct), &(), |b, ()| {
            b.iter(|| {
                let mut working = dirty.clone();
                cfds.apply(&mut working)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
