//! Figure 8(c) bench: UIS repair time vs rule count (1–5), bRepair vs
//! fRepair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_bench::uis_workload;
use dr_core::repair::basic::basic_repair;
use dr_core::{fast_repair, ApplyOptions};
use dr_datasets::KbFlavor;

fn bench_fig8c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8c_uis_rules");
    group.sample_size(10);

    let workload = uis_workload(2_000, KbFlavor::YagoLike);
    let ctx = workload.ctx();

    for n_rules in 1..=5usize {
        let rules = &workload.rules[..n_rules];
        group.bench_with_input(BenchmarkId::new("bRepair", n_rules), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                basic_repair(&ctx, rules, &mut working, &ApplyOptions::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("fRepair", n_rules), &(), |b, ()| {
            b.iter(|| {
                let mut working = workload.dirty.clone();
                fast_repair(&ctx, rules, &mut working, &ApplyOptions::default())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8c);
criterion_main!(benches);
