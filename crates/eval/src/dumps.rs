//! Lenient loading of external dumps for the experiment binaries.
//!
//! The drivers accept repeated `--dump <path>` arguments naming real-world
//! files (`.nt` triple dumps, `.csv` tables). Real dumps are dirty, so
//! these loads go through the lenient parsers (DESIGN.md §4c): malformed
//! records are quarantined instead of aborting the run, and each file gets
//! one capped [`DumpSummary`] on stderr — the total skipped count plus a
//! bounded sample of diagnostics, so a wholly-garbage file cannot flood
//! the experiment log.

use dr_kb::{KnowledgeBase, LenientOptions, Quarantine};
use dr_relation::Relation;
use std::fmt;
use std::path::{Path, PathBuf};

/// Maximum diagnostics a [`DumpSummary`] renders per file. The quarantine
/// itself retains up to [`LenientOptions::max_diagnostics`]; this cap only
/// bounds what is *printed*.
pub const SUMMARY_SAMPLE: usize = 8;

/// What a dump file parsed into.
#[derive(Debug)]
pub enum DumpData {
    /// A knowledge base, from a `.nt` triple dump. Boxed: a
    /// [`KnowledgeBase`] is hundreds of bytes wider than a [`Relation`].
    Kb(Box<KnowledgeBase>),
    /// A relation, from a `.csv` table dump.
    Table(Relation),
}

/// Per-file load outcome: how much loaded, how much was quarantined, and a
/// capped sample of why.
#[derive(Debug, Clone)]
pub struct DumpSummary {
    /// The file that was loaded.
    pub path: PathBuf,
    /// Records loaded (data triples for a KB, tuples for a relation).
    pub records: usize,
    /// The quarantine ledger the lenient parser returned.
    pub quarantine: Quarantine,
}

impl DumpSummary {
    /// Whether the load skipped nothing.
    pub fn is_clean(&self) -> bool {
        self.quarantine.is_empty()
    }
}

impl fmt::Display for DumpSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dump {}: {} record(s) loaded, {}",
            self.path.display(),
            self.records,
            self.quarantine
        )?;
        let shown = self.quarantine.diagnostics().len().min(SUMMARY_SAMPLE);
        for diagnostic in &self.quarantine.diagnostics()[..shown] {
            write!(f, "\n  {diagnostic}")?;
        }
        let hidden = self.quarantine.diagnostics().len() - shown + self.quarantine.dropped();
        if hidden > 0 {
            write!(f, "\n  … {hidden} more diagnostic(s) not shown")?;
        }
        Ok(())
    }
}

/// Loads one dump file leniently, dispatching on its extension (`.nt` →
/// KB, `.csv` → relation).
///
/// # Errors
///
/// Unsupported extensions, unreadable files, and non-record-local failures
/// (a cyclic taxonomy, a missing CSV header) — everything record-local is
/// quarantined into the summary instead.
pub fn load_dump(path: &Path) -> Result<(DumpData, DumpSummary), String> {
    let opts = LenientOptions::default();
    match path.extension().and_then(|e| e.to_str()).unwrap_or("") {
        "nt" => {
            let (kb, quarantine) = dr_kb::ntriples::load_file_lenient(path, &opts)
                .map_err(|e| format!("dump {}: {e}", path.display()))?;
            let records = kb.triples().count();
            let summary = DumpSummary {
                path: path.to_owned(),
                records,
                quarantine,
            };
            Ok((DumpData::Kb(Box::new(kb)), summary))
        }
        "csv" => {
            let (table, quarantine) = dr_relation::csv::load_file_lenient(path, &opts)
                .map_err(|e| format!("dump {}: {e}", path.display()))?;
            let summary = DumpSummary {
                path: path.to_owned(),
                records: table.len(),
                quarantine,
            };
            Ok((DumpData::Table(table), summary))
        }
        other => Err(format!(
            "dump {}: unsupported extension `{other}` (expected .nt or .csv)",
            path.display()
        )),
    }
}

/// Extracts every `--dump <path>` pair from a raw argument list.
pub fn dump_paths(args: &[String]) -> Vec<PathBuf> {
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--dump" {
            if let Some(path) = iter.next() {
                paths.push(PathBuf::from(path));
            }
        }
    }
    paths
}

/// Loads every dump and prints one capped summary per file to stderr.
/// Returns the total quarantined count across all files. A file that fails
/// outright (unreadable, unsupported) is reported and skipped — one bad
/// path must not abort the experiment.
pub fn report_dumps(paths: &[PathBuf]) -> usize {
    let mut total = 0;
    for path in paths {
        match load_dump(path) {
            Ok((_, summary)) => {
                total += summary.quarantine.quarantined();
                eprintln!("{summary}");
            }
            Err(message) => eprintln!("{message}"),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::Diagnostic;

    fn fixture(name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
    }

    #[test]
    fn malformed_triple_dump_loads_with_quarantine() {
        let (data, summary) = load_dump(&fixture("malformed.nt")).expect("lenient load");
        let DumpData::Kb(kb) = data else {
            panic!(".nt parses to a KB");
        };
        // The two well-formed data triples survive; the four broken lines
        // (4, 5, 7, 8) are quarantined with the strict parser's messages.
        assert_eq!(summary.records, 2);
        assert_eq!(kb.triples().count(), 2);
        assert_eq!(summary.quarantine.quarantined(), 4);
        assert_eq!(summary.quarantine.dropped(), 0);
        let lines: Vec<usize> = summary
            .quarantine
            .diagnostics()
            .iter()
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![4, 5, 7, 8]);
        let rendered = summary.to_string();
        assert!(rendered.contains("malformed.nt"), "{rendered}");
        assert!(rendered.contains("4 record(s) quarantined"), "{rendered}");
        assert!(rendered.contains("expected trailing `.`"), "{rendered}");
    }

    #[test]
    fn malformed_csv_dump_loads_with_quarantine() {
        let (data, summary) = load_dump(&fixture("malformed.csv")).expect("lenient load");
        let DumpData::Table(table) = data else {
            panic!(".csv parses to a relation");
        };
        // Two clean tuples load; the ragged records (3, 5) and the stray
        // quote (4) are quarantined.
        assert_eq!(summary.records, 2);
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema().arity(), 3);
        assert_eq!(summary.quarantine.quarantined(), 3);
        let lines: Vec<usize> = summary
            .quarantine
            .diagnostics()
            .iter()
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![3, 4, 5]);
        assert!(summary.to_string().contains("expected 3 fields, found 2"));
    }

    #[test]
    fn summary_display_caps_the_sample() {
        let opts = LenientOptions {
            max_diagnostics: 12,
        };
        let mut quarantine = Quarantine::new();
        for line in 1..=20 {
            quarantine.record(
                Diagnostic {
                    line,
                    message: "bad".into(),
                },
                &opts,
            );
        }
        let summary = DumpSummary {
            path: "garbage.nt".into(),
            records: 5,
            quarantine,
        };
        let rendered = summary.to_string();
        // Header + SUMMARY_SAMPLE diagnostics + one "more" trailer; the 4
        // retained-but-unprinted plus the 8 dropped-by-cap are all counted.
        assert_eq!(rendered.lines().count(), 1 + SUMMARY_SAMPLE + 1);
        assert!(rendered.contains("20 record(s) quarantined"), "{rendered}");
        assert!(
            rendered.contains("… 12 more diagnostic(s) not shown"),
            "{rendered}"
        );
    }

    #[test]
    fn dump_paths_extracts_repeated_flags() {
        let args: Vec<String> = ["exp", "--quick", "--dump", "a.nt", "--dump", "b.csv"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(
            dump_paths(&args),
            vec![PathBuf::from("a.nt"), PathBuf::from("b.csv")]
        );
        assert!(dump_paths(&["exp".to_owned(), "--dump".to_owned()]).is_empty());
    }

    #[test]
    fn unsupported_extension_is_an_error() {
        let err = load_dump(Path::new("dump.json")).expect_err("json unsupported");
        assert!(err.contains("unsupported extension"), "{err}");
        let err = load_dump(&fixture("missing.nt")).expect_err("missing file");
        assert!(err.contains("missing.nt"), "{err}");
    }
}
