//! Plain-text table rendering for experiment output, shaped like the
//! paper's tables.

/// Renders a fixed-width text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with three decimals (the paper's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats seconds adaptively (ms below one second).
pub fn secs(x: f64) -> String {
    if x < 1.0 {
        format!("{:.1}ms", x * 1e3)
    } else {
        format!("{x:.2}s")
    }
}

/// Formats value-cache counters as `hits/misses/evictions`.
pub fn cache_cell(c: &dr_core::CacheStats) -> String {
    format!("{}/{}/{}", c.hits(), c.misses(), c.evictions)
}

/// Formats resilience counters as `degraded/failed/quarantined/retried`.
pub fn resilience_cell(r: &dr_core::ResilienceReport) -> String {
    format!(
        "{}/{}/{}/{}",
        r.degraded, r.failed, r.quarantined, r.retried
    )
}

/// Formats disk-snapshot counters as `warm/cold/rejected/saves`.
pub fn snapshot_cell(s: &dr_core::SnapshotStats) -> String {
    format!(
        "{}/{}/{}/{}",
        s.warm_loads, s.cold_loads, s.rejected, s.saves
    )
}

/// Formats phase timings as `prewarm+repair`.
pub fn phases_cell(t: &dr_core::PhaseTimings) -> String {
    format!(
        "{}+{}",
        secs(t.prewarm.as_secs_f64()),
        secs(t.repair.as_secs_f64())
    )
}

/// Renders a [`MetricsSnapshot`](dr_obs::MetricsSnapshot) as a compact
/// human-readable summary table: one row per counter family (summed over
/// label sets), gauges, and histogram quantiles.
pub fn metrics_summary(snap: &dr_obs::MetricsSnapshot) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut families: Vec<&str> = snap
        .counters
        .iter()
        .map(|c| c.name.as_str())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    families.sort_unstable();
    for name in families {
        let total = snap.counter_total(name);
        let value = if name.ends_with("_seconds") {
            secs(total as f64 / 1e9)
        } else {
            total.to_string()
        };
        rows.push(vec![name.to_owned(), "counter".into(), value]);
    }
    for g in &snap.gauges {
        rows.push(vec![g.name.clone(), "gauge".into(), g.value.to_string()]);
    }
    for h in &snap.histograms {
        let q = |p: Option<u64>| p.map_or_else(|| "-".to_owned(), |n| secs(n as f64 / 1e9));
        let quantiles = format!(
            "n={} p50={} p95={} p99={}",
            h.count,
            q(h.p50),
            q(h.p95),
            q(h.p99),
        );
        rows.push(vec![h.name.clone(), "histogram".into(), quantiles]);
    }
    render_table("METRICS SUMMARY", &["metric", "kind", "value"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let text = render_table(
            "TABLE",
            &["method", "P"],
            &[
                vec!["DRs".into(), "1.000".into()],
                vec!["KATARA(long)".into(), "0.730".into()],
            ],
        );
        assert!(text.contains("TABLE"));
        assert!(text.contains("KATARA(long)"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator, two rows + title.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(secs(0.0123), "12.3ms");
        assert_eq!(secs(2.5), "2.50s");
    }
}
