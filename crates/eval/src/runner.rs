//! Shared experiment plumbing: running each cleaning system on a prepared
//! `(clean, dirty)` pair and scoring it.

use crate::metrics::{evaluate, Quality, RepairExtras};
use dr_baselines::ccfd::ConstantCfdSet;
use dr_baselines::katara::Katara;
use dr_baselines::llunatic::{llunatic_repair, LlunaticConfig};
use dr_baselines::Fd;
use dr_core::graph::schema::{SchemaGraph, SchemaNode};
use dr_core::repair::basic::basic_repair;
use dr_core::repair::fast::FastRepairer;
use dr_core::{parallel_repair, ApplyOptions, DetectiveRule, MatchContext, ParallelOptions};
use dr_relation::Relation;
use dr_simmatch::SimFn;
use std::time::Instant;

/// Which detective-rule algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrAlgo {
    /// Algorithm 1 (the basic chase).
    Basic,
    /// Algorithm 2 (rule ordering + shared element cache).
    Fast,
    /// Algorithm 2 fanned out over the work-stealing scheduler with the
    /// given worker count (0 = one per core).
    Parallel(usize),
}

impl DrAlgo {
    /// Method label used in result rows.
    pub fn label(self) -> &'static str {
        match self {
            DrAlgo::Basic => "bRepair",
            DrAlgo::Fast => "fRepair",
            DrAlgo::Parallel(_) => "pRepair",
        }
    }
}

/// Outcome of one system run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Quality against the ground truth.
    pub quality: Quality,
    /// Wall-clock seconds of the repair itself (excludes setup).
    pub seconds: f64,
    /// Cells marked positive (`#-POS`), where the system supports marking.
    pub pos_marks: usize,
    /// Relation-scoped value-cache counters (all-zero for systems that do
    /// not share one — the baselines and the basic chase). When the context
    /// carries a `CacheRegistry`, these are this run's deltas against the
    /// persistent cache.
    pub cache: dr_core::CacheStats,
    /// Per-phase wall-clock timings (zero where the system has no phases).
    pub timing: dr_core::PhaseTimings,
    /// Degraded / failed / quarantined counters (all-zero for baselines
    /// and for unbounded, fault-free runs — the overwhelmingly common case;
    /// a non-clean report means tuples were skipped, so quality numbers
    /// must be read alongside it).
    pub resilience: dr_core::ResilienceReport,
    /// Disk-snapshot activity attributable to this run (all-zero unless
    /// the context carries a registry configured with a cache directory).
    pub snapshot: dr_core::SnapshotStats,
}

impl RunOutcome {
    fn without_phases(quality: Quality, seconds: f64, pos_marks: usize) -> Self {
        Self {
            quality,
            seconds,
            pos_marks,
            cache: dr_core::CacheStats::default(),
            timing: dr_core::PhaseTimings::default(),
            resilience: dr_core::ResilienceReport::default(),
            snapshot: dr_core::SnapshotStats::default(),
        }
    }
}

/// Runs detective rules over a copy of `dirty` and scores the result. A
/// registry-carrying `ctx` (see [`MatchContext::with_registry`]) makes the
/// `Fast`/`Parallel` algorithms warm-start from earlier same-schema runs.
pub fn run_drs(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    clean: &Relation,
    dirty: &Relation,
    algo: DrAlgo,
) -> RunOutcome {
    let opts = ApplyOptions::default();
    let mut working = dirty.clone();
    let snap_before = ctx.registry().map(|r| r.stats().snapshot);
    let start = Instant::now();
    let report = match algo {
        DrAlgo::Basic => basic_repair(ctx, rules, &mut working, &opts),
        DrAlgo::Fast => FastRepairer::new(rules).repair_relation(ctx, &mut working, &opts),
        DrAlgo::Parallel(threads) => parallel_repair(
            ctx,
            rules,
            &mut working,
            &ParallelOptions {
                apply: opts.clone(),
                threads,
                ..Default::default()
            },
        ),
    };
    let seconds = start.elapsed().as_secs_f64();
    let extras = RepairExtras::from_report(&report);
    let quality = evaluate(clean, dirty, &working, &extras);
    RunOutcome {
        quality,
        seconds,
        pos_marks: working.positive_count(),
        cache: report.cache,
        timing: report.timing,
        resilience: report.resilience,
        snapshot: match (snap_before, ctx.registry()) {
            (Some(before), Some(r)) => r.stats().snapshot.delta_since(&before),
            _ => dr_core::SnapshotStats::default(),
        },
    }
}

/// Builds a KATARA table pattern from a rule set: the union of the rules'
/// positive graphs with **exact** matching (KATARA has no fuzzy matching).
pub fn katara_pattern(rules: &[DetectiveRule]) -> SchemaGraph {
    let mut graph = SchemaGraph::new();
    let mut index_of = dr_kb::FxHashMap::default();
    let mut node_for = |graph: &mut SchemaGraph, n: &SchemaNode| -> usize {
        *index_of
            .entry(n.col)
            .or_insert_with(|| graph.add_node(SchemaNode::new(n.col, n.ty, SimFn::Equal)))
    };
    let mut seen_edges = dr_kb::FxHashSet::default();
    for rule in rules {
        let positive = rule.positive_graph();
        for e in positive.edges() {
            let from_node = positive.nodes()[e.from];
            let to_node = positive.nodes()[e.to];
            let from = node_for(&mut graph, &from_node);
            let to = node_for(&mut graph, &to_node);
            if seen_edges.insert((from, to, e.rel)) {
                graph.add_edge(from, to, e.rel);
            }
        }
    }
    graph
}

/// Runs the KATARA simulation over a copy of `dirty` and scores it.
pub fn run_katara(
    ctx: &MatchContext<'_>,
    pattern: &SchemaGraph,
    clean: &Relation,
    dirty: &Relation,
) -> RunOutcome {
    let katara = Katara::new(ctx, pattern);
    let mut working = dirty.clone();
    let start = Instant::now();
    let report = katara.clean(&mut working);
    let seconds = start.elapsed().as_secs_f64();
    let quality = evaluate(clean, dirty, &working, &RepairExtras::default());
    RunOutcome::without_phases(quality, seconds, report.marked_positive)
}

/// Runs the Llunatic-style FD repair over a copy of `dirty` and scores it.
pub fn run_llunatic(fds: &[Fd], clean: &Relation, dirty: &Relation) -> RunOutcome {
    let mut working = dirty.clone();
    let start = Instant::now();
    let changes = llunatic_repair(&mut working, fds, &LlunaticConfig::default());
    let seconds = start.elapsed().as_secs_f64();
    let extras = RepairExtras::from_llunatic(&changes);
    let quality = evaluate(clean, dirty, &working, &extras);
    RunOutcome::without_phases(quality, seconds, 0)
}

/// Runs mined constant CFDs over a copy of `dirty` and scores it.
pub fn run_ccfd(cfds: &ConstantCfdSet, clean: &Relation, dirty: &Relation) -> RunOutcome {
    let mut working = dirty.clone();
    let start = Instant::now();
    cfds.apply(&mut working);
    let seconds = start.elapsed().as_secs_f64();
    let quality = evaluate(clean, dirty, &working, &RepairExtras::default());
    RunOutcome::without_phases(quality, seconds, 0)
}

/// The FDs used by the IC-based baselines per dataset (only dependencies
/// with actual redundancy in the data are useful to them).
pub mod fds {
    use super::Fd;
    use dr_relation::Schema;

    /// Nobel: Institution → City, City → Country.
    pub fn nobel(schema: &Schema) -> Vec<Fd> {
        vec![
            Fd::new(schema, &["Institution"], "City"),
            Fd::new(schema, &["City"], "Country"),
        ]
    }

    /// UIS: City → State, City → Zip, Zip → City, Zip → State.
    pub fn uis(schema: &Schema) -> Vec<Fd> {
        vec![
            Fd::new(schema, &["City"], "State"),
            Fd::new(schema, &["City"], "Zip"),
            Fd::new(schema, &["Zip"], "City"),
            Fd::new(schema, &["Zip"], "State"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_baselines::mine_constant_cfds;
    use dr_datasets::{KbProfile, NobelWorld};
    use dr_relation::noise::{inject, NoiseSpec};

    #[test]
    fn dr_run_produces_sane_quality() {
        let w = NobelWorld::generate(80, 3);
        let kb = w.kb(&KbProfile::yago());
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(0.1, 2).with_excluded(vec![name]),
            &w.semantic_source(),
        );
        for algo in [DrAlgo::Basic, DrAlgo::Fast, DrAlgo::Parallel(4)] {
            let outcome = run_drs(&ctx, &rules, &clean, &dirty, algo);
            assert!(
                outcome.quality.precision > 0.9,
                "{algo:?}: {:?}",
                outcome.quality
            );
            assert!(
                outcome.quality.recall > 0.4,
                "{algo:?}: {:?}",
                outcome.quality
            );
            assert!(outcome.pos_marks > 0);
            match algo {
                // The fast/parallel repairers share a relation-scoped value
                // cache: repeated values across the 80 rows must produce hits.
                DrAlgo::Fast | DrAlgo::Parallel(_) => {
                    assert!(outcome.cache.hits() > 0, "{:?}", outcome.cache);
                }
                DrAlgo::Basic => {
                    assert_eq!(outcome.cache.hits(), 0);
                    assert_eq!(outcome.timing, dr_core::PhaseTimings::default());
                }
            }
        }
    }

    #[test]
    fn basic_and_fast_agree_on_quality() {
        let w = NobelWorld::generate(60, 9);
        let kb = w.kb(&KbProfile::yago());
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(0.12, 8).with_excluded(vec![name]),
            &w.semantic_source(),
        );
        let a = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Basic);
        let b = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Fast);
        assert_eq!(a.quality.repaired, b.quality.repaired);
        assert_eq!(a.quality.correct, b.quality.correct);
        assert_eq!(a.pos_marks, b.pos_marks);
    }

    #[test]
    fn katara_pattern_merges_rule_positives() {
        let kb = dr_kb::fixtures::nobel_mini_kb();
        let rules = dr_core::fixtures::figure4_rules(&kb);
        let pattern = katara_pattern(&rules);
        assert_eq!(pattern.len(), 6); // all six Nobel columns appear
        assert!(pattern.validate().is_ok(), "{:?}", pattern.validate());
        // Every node is exact.
        assert!(pattern.nodes().iter().all(|n| n.sim == SimFn::Equal));
    }

    #[test]
    fn baselines_run_end_to_end() {
        let w = NobelWorld::generate(100, 5);
        let clean = w.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(0.1, 4).with_excluded(vec![name]),
            &w.semantic_source(),
        );
        let fds = fds::nobel(clean.schema());
        let llunatic = run_llunatic(&fds, &clean, &dirty);
        assert!(llunatic.quality.precision <= 1.0);

        let cfds = mine_constant_cfds(&clean, &fds);
        let ccfd = run_ccfd(&cfds, &clean, &dirty);
        assert!(ccfd.quality.precision <= 1.0);
        assert!(ccfd.seconds < 1.0, "constant CFDs are near-instant");
    }
}
