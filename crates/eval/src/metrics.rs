//! Repair-quality metrics (§V-A "Measuring Quality"):
//!
//! > "precision is the ratio of correctly repaired attribute values to the
//! > number of all the repaired attributes; recall is the ratio of correctly
//! > repaired attribute values to the number of all erroneous values; and
//! > F-measure is the harmonic mean of precision and recall."
//!
//! Two refinements from the paper are honored: multi-version repairs count
//! as correct when **any** candidate equals the ground truth, and Llunatic's
//! lluns (labelled nulls) count **0.5** ("metric 0.5").

use dr_baselines::llunatic::{LlunaticChange, LLUN};
use dr_core::repair::basic::RelationReport;
use dr_core::RuleApplication;
use dr_kb::FxHashMap;
use dr_relation::{CellRef, Relation};

/// Precision / recall / F-measure plus raw counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Correct repairs ÷ all repairs (1.0 when nothing was repaired).
    pub precision: f64,
    /// Correct repairs ÷ all erroneous cells (1.0 when nothing was wrong).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
    /// Number of cells the system rewrote.
    pub repaired: usize,
    /// Correct-repair mass (fractional because lluns score 0.5).
    pub correct: f64,
    /// Number of erroneous cells in the dirty relation.
    pub errors: usize,
}

impl Quality {
    pub(crate) fn from_counts(repaired: usize, correct: f64, errors: usize) -> Self {
        let precision = if repaired == 0 {
            1.0
        } else {
            correct / repaired as f64
        };
        let recall = if errors == 0 {
            1.0
        } else {
            correct / errors as f64
        };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f_measure,
            repaired,
            correct,
            errors,
        }
    }
}

/// Per-cell extra information extracted from a repair run.
#[derive(Debug, Clone, Default)]
pub struct RepairExtras {
    /// Multi-version candidate sets per repaired cell.
    pub candidates: FxHashMap<CellRef, Vec<String>>,
    /// Cells repaired to a llun (count 0.5 each when judging correctness).
    pub lluns: dr_kb::FxHashSet<CellRef>,
}

impl RepairExtras {
    /// Extracts candidate sets from a detective-rule [`RelationReport`].
    pub fn from_report(report: &RelationReport) -> Self {
        let mut extras = Self::default();
        for (row, tuple_report) in report.tuples.iter().enumerate() {
            for step in &tuple_report.steps {
                if let RuleApplication::Repaired {
                    col, candidates, ..
                } = &step.application
                {
                    if candidates.len() > 1 {
                        extras
                            .candidates
                            .insert(CellRef { row, attr: *col }, candidates.clone());
                    }
                }
            }
        }
        extras
    }

    /// Extracts llun cells from a list of Llunatic changes.
    pub fn from_llunatic(changes: &[LlunaticChange]) -> Self {
        let mut extras = Self::default();
        for change in changes {
            if change.is_llun {
                extras.lluns.insert(change.cell);
            }
        }
        extras
    }
}

/// Scores a repair: `clean` is the ground truth, `dirty` the pre-repair
/// relation, `repaired` the post-repair relation, `extras` the
/// candidate/llun information (use `RepairExtras::default()` for plain
/// systems).
pub fn evaluate(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
) -> Quality {
    evaluate_masked(clean, dirty, repaired, extras, None)
}

/// [`evaluate`] restricted to the rows where `mask` is `true` — the paper
/// evaluates "the tuples whose value in key attribute have corresponding
/// entities in KBs" (§V-A).
pub fn evaluate_masked(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
    mask: Option<&[bool]>,
) -> Quality {
    assert_eq!(clean.len(), dirty.len(), "row count mismatch");
    assert_eq!(clean.len(), repaired.len(), "row count mismatch");
    if let Some(mask) = mask {
        assert_eq!(mask.len(), clean.len(), "mask length mismatch");
    }
    let mut n_repaired = 0usize;
    let mut correct = 0f64;
    let mut errors = 0usize;
    for cell in clean.cell_refs() {
        if mask.is_some_and(|m| !m[cell.row]) {
            continue;
        }
        let truth = clean.value(cell);
        let before = dirty.value(cell);
        let after = repaired.value(cell);
        if before != truth {
            errors += 1;
        }
        if after != before {
            n_repaired += 1;
            if after == truth {
                correct += 1.0;
            } else if extras.lluns.contains(&cell) && after == LLUN {
                // A llun on a genuinely erroneous cell is half credit
                // (the paper's "metric 0.5").
                if before != truth {
                    correct += 0.5;
                }
            } else if extras
                .candidates
                .get(&cell)
                .is_some_and(|cands| cands.iter().any(|c| c == truth))
            {
                // Multi-version repair containing the ground truth.
                correct += 1.0;
            }
        }
    }
    Quality::from_counts(n_repaired, correct, errors)
}

/// Per-column quality breakdown: one [`Quality`] per attribute, useful to
/// diagnose which rules carry a dataset's recall.
pub fn evaluate_per_column(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
) -> Vec<(String, Quality)> {
    let schema = clean.schema().clone();
    schema
        .attrs()
        .map(|(attr, name)| {
            let mut n_repaired = 0usize;
            let mut correct = 0f64;
            let mut errors = 0usize;
            for row in 0..clean.len() {
                let cell = CellRef { row, attr };
                let truth = clean.value(cell);
                let before = dirty.value(cell);
                let after = repaired.value(cell);
                if before != truth {
                    errors += 1;
                }
                if after != before {
                    n_repaired += 1;
                    if after == truth
                        || extras
                            .candidates
                            .get(&cell)
                            .is_some_and(|cands| cands.iter().any(|c| c == truth))
                    {
                        correct += 1.0;
                    } else if extras.lluns.contains(&cell) && after == LLUN && before != truth {
                        correct += 0.5;
                    }
                }
            }
            (name.to_owned(), Quality::from_counts(n_repaired, correct, errors))
        })
        .collect()
}

/// Formats a quality triple the way the paper's tables print it.
pub fn fmt_quality(q: &Quality) -> String {
    format!(
        "P={:.2} R={:.2} F={:.2} (repaired {}, errors {})",
        q.precision, q.recall, q.f_measure, q.repaired, q.errors
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_relation::{Schema, Tuple};

    fn relation(rows: &[&[&str]]) -> Relation {
        let schema = Schema::new("R", &["A", "B"]);
        let mut r = Relation::new(schema);
        for row in rows {
            r.push(Tuple::from_strs(row));
        }
        r
    }

    #[test]
    fn perfect_repair() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "2"]]);
        let repaired = clean.clone();
        let q = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f_measure, 1.0);
        assert_eq!(q.errors, 1);
        assert_eq!(q.repaired, 1);
    }

    #[test]
    fn no_repairs_is_precision_one_recall_zero() {
        let clean = relation(&[&["x", "1"]]);
        let dirty = relation(&[&["x", "9"]]);
        let q = evaluate(&clean, &dirty, &dirty, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f_measure, 0.0);
    }

    #[test]
    fn wrong_repair_costs_precision() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "2"]]);
        // Repairs the error incorrectly AND breaks a correct cell.
        let repaired = relation(&[&["x", "8"], &["y", "3"]]);
        let q = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(q.repaired, 2);
        assert_eq!(q.correct, 0.0);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn llun_scores_half() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "8"]]);
        let repaired = relation(&[&["x", LLUN], &["y", "2"]]);
        let mut extras = RepairExtras::default();
        extras.lluns.insert(CellRef {
            row: 0,
            attr: clean.schema().attr_expect("B"),
        });
        let q = evaluate(&clean, &dirty, &repaired, &extras);
        assert_eq!(q.repaired, 2);
        assert_eq!(q.correct, 1.5);
        assert!((q.precision - 0.75).abs() < 1e-12);
        assert!((q.recall - 0.75).abs() < 1e-12);
    }

    #[test]
    fn multi_version_counts_when_truth_among_candidates() {
        let clean = relation(&[&["x", "1"]]);
        let dirty = relation(&[&["x", "9"]]);
        let repaired = relation(&[&["x", "7"]]); // picked the other branch
        let mut extras = RepairExtras::default();
        extras.candidates.insert(
            CellRef {
                row: 0,
                attr: clean.schema().attr_expect("B"),
            },
            vec!["7".into(), "1".into()],
        );
        let q = evaluate(&clean, &dirty, &repaired, &extras);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn per_column_breakdown() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["z", "2"]]); // B and A errors
        let repaired = relation(&[&["x", "1"], &["z", "2"]]); // only B repaired
        let cols = evaluate_per_column(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(cols.len(), 2);
        let a = &cols[0];
        let b = &cols[1];
        assert_eq!(a.0, "A");
        assert_eq!(a.1.errors, 1);
        assert_eq!(a.1.recall, 0.0);
        assert_eq!(b.0, "B");
        assert_eq!(b.1.recall, 1.0);
        assert_eq!(b.1.precision, 1.0);
    }

    #[test]
    fn per_column_agrees_with_overall() {
        let clean = relation(&[&["x", "1"], &["y", "2"], &["w", "3"]]);
        let dirty = relation(&[&["a", "9"], &["y", "8"], &["w", "3"]]);
        let repaired = relation(&[&["x", "9"], &["y", "2"], &["w", "3"]]);
        let overall = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        let cols = evaluate_per_column(&clean, &dirty, &repaired, &RepairExtras::default());
        let repaired_sum: usize = cols.iter().map(|(_, q)| q.repaired).sum();
        let correct_sum: f64 = cols.iter().map(|(_, q)| q.correct).sum();
        let errors_sum: usize = cols.iter().map(|(_, q)| q.errors).sum();
        assert_eq!(repaired_sum, overall.repaired);
        assert_eq!(correct_sum, overall.correct);
        assert_eq!(errors_sum, overall.errors);
    }

    #[test]
    fn clean_input_scores_perfect() {
        let clean = relation(&[&["x", "1"]]);
        let q = evaluate(&clean, &clean, &clean, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.errors, 0);
    }
}
