//! Repair-quality metrics (§V-A "Measuring Quality"):
//!
//! > "precision is the ratio of correctly repaired attribute values to the
//! > number of all the repaired attributes; recall is the ratio of correctly
//! > repaired attribute values to the number of all erroneous values; and
//! > F-measure is the harmonic mean of precision and recall."
//!
//! Two refinements from the paper are honored: multi-version repairs count
//! as correct when **any** candidate equals the ground truth, and Llunatic's
//! lluns (labelled nulls) count **0.5** ("metric 0.5").

use dr_baselines::llunatic::{LlunaticChange, LLUN};
use dr_core::repair::basic::RelationReport;
use dr_core::RuleApplication;
use dr_kb::FxHashMap;
use dr_relation::{CellRef, Relation};

/// Precision / recall / F-measure plus raw counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Correct repairs ÷ all repairs (1.0 when nothing was repaired).
    pub precision: f64,
    /// Correct repairs ÷ all erroneous cells (1.0 when nothing was wrong).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
    /// Number of cells the system rewrote.
    pub repaired: usize,
    /// Correct-repair mass (fractional because lluns score 0.5).
    pub correct: f64,
    /// Number of erroneous cells in the dirty relation.
    pub errors: usize,
}

impl Quality {
    pub(crate) fn from_counts(repaired: usize, correct: f64, errors: usize) -> Self {
        let precision = if repaired == 0 {
            1.0
        } else {
            correct / repaired as f64
        };
        let recall = if errors == 0 {
            1.0
        } else {
            correct / errors as f64
        };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f_measure,
            repaired,
            correct,
            errors,
        }
    }
}

/// Per-cell extra information extracted from a repair run.
#[derive(Debug, Clone, Default)]
pub struct RepairExtras {
    /// Multi-version candidate sets per repaired cell.
    pub candidates: FxHashMap<CellRef, Vec<String>>,
    /// Cells repaired to a llun (count 0.5 each when judging correctness).
    pub lluns: dr_kb::FxHashSet<CellRef>,
}

impl RepairExtras {
    /// Extracts candidate sets from a detective-rule [`RelationReport`].
    pub fn from_report(report: &RelationReport) -> Self {
        let mut extras = Self::default();
        for (row, tuple_report) in report.tuples.iter().enumerate() {
            for step in &tuple_report.steps {
                if let RuleApplication::Repaired {
                    col, candidates, ..
                } = &step.application
                {
                    if candidates.len() > 1 {
                        extras
                            .candidates
                            .insert(CellRef { row, attr: *col }, candidates.clone());
                    }
                }
            }
        }
        extras
    }

    /// Extracts llun cells from a list of Llunatic changes.
    pub fn from_llunatic(changes: &[LlunaticChange]) -> Self {
        let mut extras = Self::default();
        for change in changes {
            if change.is_llun {
                extras.lluns.insert(change.cell);
            }
        }
        extras
    }
}

/// Accumulates the §V-A counters one cell at a time — the single scoring
/// path shared by [`evaluate_masked`] and [`evaluate_per_column`], so the
/// llun/multi-version branch order cannot drift between them.
#[derive(Debug, Default)]
struct CellScorer {
    repaired: usize,
    correct: f64,
    errors: usize,
}

impl CellScorer {
    /// Scores one cell: `truth` from the clean relation, `before`/`after`
    /// from the dirty and repaired relations.
    fn observe(
        &mut self,
        cell: CellRef,
        truth: &str,
        before: &str,
        after: &str,
        extras: &RepairExtras,
    ) {
        if before != truth {
            self.errors += 1;
        }
        if after == before {
            return;
        }
        self.repaired += 1;
        if after == truth {
            self.correct += 1.0;
        } else if extras.lluns.contains(&cell) && after == LLUN {
            // A llun on a genuinely erroneous cell is half credit (the
            // paper's "metric 0.5"); a llun takes precedence over any
            // multi-version candidate set for the same cell.
            if before != truth {
                self.correct += 0.5;
            }
        } else if extras
            .candidates
            .get(&cell)
            .is_some_and(|cands| cands.iter().any(|c| c == truth))
        {
            // Multi-version repair containing the ground truth.
            self.correct += 1.0;
        }
    }

    fn quality(self) -> Quality {
        Quality::from_counts(self.repaired, self.correct, self.errors)
    }
}

/// Scores a repair: `clean` is the ground truth, `dirty` the pre-repair
/// relation, `repaired` the post-repair relation, `extras` the
/// candidate/llun information (use `RepairExtras::default()` for plain
/// systems).
pub fn evaluate(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
) -> Quality {
    evaluate_masked(clean, dirty, repaired, extras, None)
}

/// [`evaluate`] restricted to the rows where `mask` is `true` — the paper
/// evaluates "the tuples whose value in key attribute have corresponding
/// entities in KBs" (§V-A).
pub fn evaluate_masked(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
    mask: Option<&[bool]>,
) -> Quality {
    assert_eq!(clean.len(), dirty.len(), "row count mismatch");
    assert_eq!(clean.len(), repaired.len(), "row count mismatch");
    if let Some(mask) = mask {
        assert_eq!(mask.len(), clean.len(), "mask length mismatch");
    }
    let mut scorer = CellScorer::default();
    for cell in clean.cell_refs() {
        if mask.is_some_and(|m| !m[cell.row]) {
            continue;
        }
        scorer.observe(
            cell,
            clean.value(cell),
            dirty.value(cell),
            repaired.value(cell),
            extras,
        );
    }
    scorer.quality()
}

/// Per-column quality breakdown: one [`Quality`] per attribute, useful to
/// diagnose which rules carry a dataset's recall.
pub fn evaluate_per_column(
    clean: &Relation,
    dirty: &Relation,
    repaired: &Relation,
    extras: &RepairExtras,
) -> Vec<(String, Quality)> {
    let schema = clean.schema().clone();
    schema
        .attrs()
        .map(|(attr, name)| {
            let mut scorer = CellScorer::default();
            for row in 0..clean.len() {
                let cell = CellRef { row, attr };
                scorer.observe(
                    cell,
                    clean.value(cell),
                    dirty.value(cell),
                    repaired.value(cell),
                    extras,
                );
            }
            (name.to_owned(), scorer.quality())
        })
        .collect()
}

/// Formats a quality triple the way the paper's tables print it.
pub fn fmt_quality(q: &Quality) -> String {
    format!(
        "P={:.2} R={:.2} F={:.2} (repaired {}, errors {})",
        q.precision, q.recall, q.f_measure, q.repaired, q.errors
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_relation::{Schema, Tuple};

    fn relation(rows: &[&[&str]]) -> Relation {
        let schema = Schema::new("R", &["A", "B"]);
        let mut r = Relation::new(schema);
        for row in rows {
            r.push(Tuple::from_strs(row));
        }
        r
    }

    #[test]
    fn perfect_repair() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "2"]]);
        let repaired = clean.clone();
        let q = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f_measure, 1.0);
        assert_eq!(q.errors, 1);
        assert_eq!(q.repaired, 1);
    }

    #[test]
    fn no_repairs_is_precision_one_recall_zero() {
        let clean = relation(&[&["x", "1"]]);
        let dirty = relation(&[&["x", "9"]]);
        let q = evaluate(&clean, &dirty, &dirty, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f_measure, 0.0);
    }

    #[test]
    fn wrong_repair_costs_precision() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "2"]]);
        // Repairs the error incorrectly AND breaks a correct cell.
        let repaired = relation(&[&["x", "8"], &["y", "3"]]);
        let q = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(q.repaired, 2);
        assert_eq!(q.correct, 0.0);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn llun_scores_half() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["y", "8"]]);
        let repaired = relation(&[&["x", LLUN], &["y", "2"]]);
        let mut extras = RepairExtras::default();
        extras.lluns.insert(CellRef {
            row: 0,
            attr: clean.schema().attr_expect("B"),
        });
        let q = evaluate(&clean, &dirty, &repaired, &extras);
        assert_eq!(q.repaired, 2);
        assert_eq!(q.correct, 1.5);
        assert!((q.precision - 0.75).abs() < 1e-12);
        assert!((q.recall - 0.75).abs() < 1e-12);
    }

    #[test]
    fn multi_version_counts_when_truth_among_candidates() {
        let clean = relation(&[&["x", "1"]]);
        let dirty = relation(&[&["x", "9"]]);
        let repaired = relation(&[&["x", "7"]]); // picked the other branch
        let mut extras = RepairExtras::default();
        extras.candidates.insert(
            CellRef {
                row: 0,
                attr: clean.schema().attr_expect("B"),
            },
            vec!["7".into(), "1".into()],
        );
        let q = evaluate(&clean, &dirty, &repaired, &extras);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn per_column_breakdown() {
        let clean = relation(&[&["x", "1"], &["y", "2"]]);
        let dirty = relation(&[&["x", "9"], &["z", "2"]]); // B and A errors
        let repaired = relation(&[&["x", "1"], &["z", "2"]]); // only B repaired
        let cols = evaluate_per_column(&clean, &dirty, &repaired, &RepairExtras::default());
        assert_eq!(cols.len(), 2);
        let a = &cols[0];
        let b = &cols[1];
        assert_eq!(a.0, "A");
        assert_eq!(a.1.errors, 1);
        assert_eq!(a.1.recall, 0.0);
        assert_eq!(b.0, "B");
        assert_eq!(b.1.recall, 1.0);
        assert_eq!(b.1.precision, 1.0);
    }

    #[test]
    fn per_column_agrees_with_overall() {
        let clean = relation(&[&["x", "1"], &["y", "2"], &["w", "3"]]);
        let dirty = relation(&[&["a", "9"], &["y", "8"], &["w", "3"]]);
        let repaired = relation(&[&["x", "9"], &["y", "2"], &["w", "3"]]);
        let overall = evaluate(&clean, &dirty, &repaired, &RepairExtras::default());
        let cols = evaluate_per_column(&clean, &dirty, &repaired, &RepairExtras::default());
        let repaired_sum: usize = cols.iter().map(|(_, q)| q.repaired).sum();
        let correct_sum: f64 = cols.iter().map(|(_, q)| q.correct).sum();
        let errors_sum: usize = cols.iter().map(|(_, q)| q.errors).sum();
        assert_eq!(repaired_sum, overall.repaired);
        assert_eq!(correct_sum, overall.correct);
        assert_eq!(errors_sum, overall.errors);
    }

    /// Branch-order pin: a llun repair takes precedence over a candidate set
    /// listing the truth — in the overall *and* the per-column scorer (the
    /// two used to disagree on this order before sharing [`CellScorer`]).
    #[test]
    fn llun_precedes_candidates_in_both_scorers() {
        let clean = relation(&[&["x", "1"]]);
        let dirty = relation(&[&["x", "9"]]);
        let repaired = relation(&[&["x", LLUN]]);
        let cell = CellRef {
            row: 0,
            attr: clean.schema().attr_expect("B"),
        };
        let mut extras = RepairExtras::default();
        extras.lluns.insert(cell);
        extras
            .candidates
            .insert(cell, vec![LLUN.into(), "1".into()]);
        let overall = evaluate(&clean, &dirty, &repaired, &extras);
        assert_eq!(
            overall.correct, 0.5,
            "llun half-credit, not full candidate credit"
        );
        let cols = evaluate_per_column(&clean, &dirty, &repaired, &extras);
        assert_eq!(cols[1].1.correct, 0.5);
        assert_eq!(cols[1].1.repaired, overall.repaired);
    }

    #[test]
    fn clean_input_scores_perfect() {
        let clean = relation(&[&["x", "1"]]);
        let q = evaluate(&clean, &clean, &clean, &RepairExtras::default());
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.errors, 0);
    }
}
