//! Overhead gate for live span capture (DESIGN.md §11): a request that is
//! *armed* for tracing — spans created end to end, then discarded by tail
//! sampling — must cost less than 2% over the same repair with capture
//! off. This is the production steady state: `dr-serve` arms every repair
//! request, and the tail policy keeps almost none of them.
//!
//! Usage: `cargo run -p dr-eval --bin exp_trace_overhead --release
//! [-- --quick] [--out <path>]`
//!
//! Methodology mirrors `tests/tests/obs_overhead.rs`: the two paths are
//! interleaved round-robin (clock drift and CPU contention hit both
//! minima equally) and the gate accepts as soon as the running minima land
//! inside the budget. Exits 1 when the budget is exceeded.

use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_kb::fixtures::nobel_mini_kb;
use dr_obs::{ActiveTrace, SpanCtx, TraceId, DEFAULT_MAX_SPANS};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUDGET: f64 = 1.02;

/// Table I duplicated until per-tuple work dominates setup.
fn table1_workload(copies: usize) -> dr_relation::Relation {
    let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
    let base = dr_core::fixtures::table1_dirty();
    for _ in 0..copies {
        for t in base.tuples() {
            relation.push(t.clone());
        }
    }
    relation
}

/// One repair pass with capture off.
fn pass_bare(ctx: &MatchContext<'_>, rules: &[dr_core::DetectiveRule], copies: usize) -> Duration {
    let opts = ApplyOptions::default();
    let mut relation = table1_workload(copies);
    let start = Instant::now();
    fast_repair(ctx, rules, &mut relation, &opts);
    start.elapsed()
}

/// One repair pass armed exactly like a served request: fresh trace, root
/// span, span ctx forked through the repair — and the whole capture
/// dropped unretained at the end (the tail-sampling "no" path).
fn pass_armed(ctx: &MatchContext<'_>, rules: &[dr_core::DetectiveRule], copies: usize) -> Duration {
    let opts = ApplyOptions::default();
    let mut relation = table1_workload(copies);
    let start = Instant::now();
    let trace = Arc::new(ActiveTrace::new(
        TraceId::generate(),
        DEFAULT_MAX_SPANS,
        false,
    ));
    let root = SpanCtx::root(Arc::clone(&trace)).child("request");
    let armed = ctx.fork().with_span(root.ctx());
    fast_repair(&armed, rules, &mut relation, &opts);
    root.finish();
    drop(trace); // discarded, not retained
    start.elapsed()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let copies = if quick { 32 } else { 128 };
    let rounds = if quick { 30 } else { 60 };

    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    // Warm indexes and the allocator on both paths before timing.
    pass_bare(&ctx, &rules, copies);
    pass_armed(&ctx, &rules, copies);

    let (mut bare, mut armed) = (Duration::MAX, Duration::MAX);
    let mut used = rounds;
    for round in 1..=rounds {
        bare = bare.min(pass_bare(&ctx, &rules, copies));
        armed = armed.min(pass_armed(&ctx, &rules, copies));
        if round >= 5 && armed.as_secs_f64() <= bare.as_secs_f64() * BUDGET {
            used = round;
            break;
        }
    }
    let ratio = armed.as_secs_f64() / bare.as_secs_f64();
    let pass = ratio <= BUDGET;

    let mut report = String::from("TRACE CAPTURE OVERHEAD (armed, tail-sampled away)\n");
    report.push_str(&format!(
        "workload: Table I x{copies} ({} rows), rounds used: {used}/{rounds}\n",
        copies * 4
    ));
    report.push_str(&format!(
        "capture off (min): {:>10.3}ms\n",
        bare.as_secs_f64() * 1e3
    ));
    report.push_str(&format!(
        "armed, unretained: {:>10.3}ms\n",
        armed.as_secs_f64() * 1e3
    ));
    report.push_str(&format!(
        "overhead: {:+.2}%  (budget {:+.0}%)  -> {}\n",
        (ratio - 1.0) * 100.0,
        (BUDGET - 1.0) * 100.0,
        if pass { "PASS" } else { "FAIL" }
    ));
    print!("{report}");

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("exp_trace_overhead: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if !pass {
        std::process::exit(1);
    }
}
