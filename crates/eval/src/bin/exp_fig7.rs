//! Regenerates **Figure 7**: precision / recall / F-measure vs typo rate
//! (0%–100% of a fixed 10% error rate) on Nobel and UIS.
//!
//! Usage: `cargo run -p dr-eval --bin exp_fig7 --release [-- --quick]`

use dr_eval::exp2::{typo_rate_sweep, Exp2Config, SweepDataset, SweepPoint};
use dr_eval::report::{f3, render_table};
use dr_eval::DrAlgo;

fn print_sweep(title: &str, points: &[SweepPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.x * 100.0),
                p.method.clone(),
                f3(p.quality.precision),
                f3(p.quality.recall),
                f3(p.quality.f_measure),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            title,
            &["typo rate", "method", "Precision", "Recall", "F-measure"],
            &rows,
        )
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (nobel_size, uis_size, algo) = if quick {
        (200, 300, DrAlgo::Fast)
    } else {
        (dr_datasets::nobel::PAPER_SIZE, 5_000, DrAlgo::Basic)
    };
    let shares = [0.0, 0.25, 0.5, 0.75, 1.0];

    let cfg = Exp2Config {
        size: nobel_size,
        seed: 29,
        dr_algo: algo,
    };
    eprintln!("running Fig 7 Nobel sweep (n={nobel_size})...");
    let points = typo_rate_sweep(SweepDataset::Nobel, &shares, &cfg);
    print_sweep(
        "FIGURE 7 (a,c,e). EFFECTIVENESS vs TYPO RATE — Nobel",
        &points,
    );

    let cfg = Exp2Config {
        size: uis_size,
        seed: 29,
        dr_algo: algo,
    };
    eprintln!("running Fig 7 UIS sweep (n={uis_size})...");
    let points = typo_rate_sweep(SweepDataset::Uis, &shares, &cfg);
    print_sweep(
        "FIGURE 7 (b,d,f). EFFECTIVENESS vs TYPO RATE — UIS",
        &points,
    );
}
