//! Regenerates **Figure 8**: efficiency and scalability.
//!
//! * (a) WebTables, time vs #-rules 10–50;
//! * (b) Nobel, time vs #-rules 1–5;
//! * (c) UIS-20K, time vs #-rules 1–5;
//! * (d) UIS, time vs #-tuples 20K–100K, all methods.
//!
//! Usage: `cargo run -p dr-eval --bin exp_fig8 --release [-- --quick]
//! [--dump <path>]...`
//!
//! `--dump <path>` (repeatable) loads an external `.nt`/`.csv` dump
//! leniently and prints a capped quarantine summary to stderr.
//! `--metrics` / `--trace <path>` / `--trace-sample <rate>` /
//! `--trace-seed <seed>` — observability flags, see
//! [`dr_eval::obsflags`].

use dr_eval::exp2::SweepDataset;
use dr_eval::exp3::{
    keyed_rule_sweep, uis_tuple_sweep, webtables_rule_sweep, Exp3Config, TimingPoint,
};
use dr_eval::obsflags::ObsCli;
use dr_eval::report::{cache_cell, phases_cell, render_table, resilience_cell, secs};

fn print_points(title: &str, x_label: &str, points: &[TimingPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.x.to_string(),
                p.method.clone(),
                secs(p.seconds),
                cache_cell(&p.cache),
                phases_cell(&p.timing),
                resilience_cell(&p.resilience),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            title,
            &[
                x_label,
                "method",
                "time",
                "cache h/m/e",
                "phases pw+rep",
                "res d/f/q/r"
            ],
            &rows
        )
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    let dumps = dr_eval::dumps::dump_paths(&args);
    if !dumps.is_empty() {
        let quarantined = dr_eval::dumps::report_dumps(&dumps);
        eprintln!(
            "loaded {} external dump(s), {} record(s) quarantined",
            dumps.len(),
            quarantined
        );
    }
    let obs_cli = ObsCli::from_args(&args);
    let mut cfg = if quick {
        Exp3Config {
            nobel_size: 200,
            uis_size: 500,
            ..Default::default()
        }
    } else {
        Exp3Config::default()
    };
    cfg.obs = obs_cli.obs.clone();

    eprintln!("running Fig 8(a) WebTables rule sweep...");
    let points = webtables_rule_sweep(&[10, 20, 30, 40, 50], &cfg);
    print_points("FIGURE 8(a). TIME vs #-RULE — WebTables", "#-rule", &points);

    eprintln!(
        "running Fig 8(b) Nobel rule sweep (n={})...",
        cfg.nobel_size
    );
    let points = keyed_rule_sweep(SweepDataset::Nobel, &[1, 2, 3, 4, 5], &cfg);
    print_points("FIGURE 8(b). TIME vs #-RULE — Nobel", "#-rule", &points);

    eprintln!("running Fig 8(c) UIS rule sweep (n={})...", cfg.uis_size);
    let points = keyed_rule_sweep(SweepDataset::Uis, &[1, 2, 3, 4, 5], &cfg);
    print_points("FIGURE 8(c). TIME vs #-RULE — UIS", "#-rule", &points);

    let sizes: Vec<usize> = if quick {
        vec![200, 400]
    } else {
        vec![20_000, 40_000, 60_000, 80_000, 100_000]
    };
    eprintln!("running Fig 8(d) UIS tuple sweep ({sizes:?})...");
    let points = uis_tuple_sweep(&sizes, &cfg);
    print_points("FIGURE 8(d). TIME vs #-TUPLE — UIS", "#-tuple", &points);
    obs_cli.finish();
}
