//! KB-coverage sweep (reproduction-specific; see `dr_eval::coverage`):
//! validates that DR recall tracks KB entity coverage while precision holds,
//! the mechanism behind the paper's Yago-vs-DBpedia gap.
//!
//! Usage: `cargo run -p dr-eval --bin exp_coverage --release [-- --quick]`

use dr_eval::coverage::{coverage_sweep, CoverageConfig};
use dr_eval::report::{f3, render_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = CoverageConfig {
        size: if quick {
            300
        } else {
            dr_datasets::nobel::PAPER_SIZE
        },
        ..Default::default()
    };
    let coverages = [0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.95, 1.0];
    let points = coverage_sweep(&coverages, &cfg);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.coverage * 100.0),
                f3(p.quality.precision),
                f3(p.quality.recall),
                f3(p.quality.f_measure),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "KB ENTITY COVERAGE vs DR QUALITY (Nobel; 0.75 ≈ DBpedia, 0.95 ≈ Yago)",
            &["coverage", "Precision", "Recall", "F-measure"],
            &rows,
        )
    );
}
