//! Incremental repair benchmark (DESIGN.md §10): after a small KB delta,
//! how much of a prior repair survives? Compares a **full re-repair**
//! against the delta'd KB with **selective re-repair**
//! (`parallel_repair_selective`), which re-runs only the rows whose
//! recorded provenance footprint intersects the delta's write footprint,
//! and reports how many warm value-cache entries the registry sweep
//! actually invalidates.
//!
//! Every selective run is verified cell-for-cell against the full re-run
//! before its timing is reported — a speedup that changed an outcome
//! would be a bug, not a result.
//!
//! Usage: `cargo run -p dr-eval --bin exp_incremental --release [-- --quick]`

use std::sync::Arc;
use std::time::Instant;

use dr_core::{
    parallel_repair, parallel_repair_selective, CacheRegistry, DetectiveRule, MatchContext,
    ParallelOptions, RegistryConfig, RelationReport,
};
use dr_datasets::{KbProfile, NobelWorld, UisWorld};
use dr_eval::report::render_table;
use dr_kb::{DeltaNode, KbDelta, KnowledgeBase, Node};
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::Relation;

struct Fixture {
    name: &'static str,
    kb: KnowledgeBase,
    rules: Vec<DetectiveRule>,
    dirty: Relation,
}

fn nobel_fixture(rows: usize, seed: u64) -> Fixture {
    let world = NobelWorld::generate(rows, seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.1, seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    Fixture {
        name: "Nobel",
        kb,
        rules,
        dirty,
    }
}

fn uis_fixture(rows: usize, seed: u64) -> Fixture {
    let world = UisWorld::generate(rows, seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.1, seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = UisWorld::rules(&kb);
    Fixture {
        name: "UIS",
        kb,
        rules,
        dirty,
    }
}

/// An edge-only delta retracting the `worksAt` (Nobel) / `graduatedFrom`
/// (UIS) edges of `count` distinct subjects — the kind of curation edit a
/// live KB sees, with a footprint confined to the touched adjacency pairs
/// (type/taxonomy edits would touch class extents and select far more).
fn edge_delta(kb: &KnowledgeBase, count: usize) -> KbDelta {
    let mut delta = KbDelta::new();
    let mut taken = 0usize;
    let mut last_subject = None;
    for (s, p, o) in kb.triples() {
        let pred = kb.pred_name(p);
        if pred != "worksAt" && pred != "graduatedFrom" {
            continue;
        }
        if last_subject == Some(s) {
            continue; // one edge per subject spreads the footprint
        }
        last_subject = Some(s);
        let object = match o {
            Node::Instance(i) => DeltaNode::Instance(kb.instance_label(i).to_owned()),
            Node::Literal(l) => DeltaNode::Literal(kb.literal_value(l).to_owned()),
        };
        delta.retract(kb.instance_label(s), pred, object);
        taken += 1;
        if taken == count {
            break;
        }
    }
    delta
}

fn best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let value = run();
        best = best.min(started.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn assert_agree(full: &Relation, selective: &Relation, label: &str) {
    assert_eq!(full.len(), selective.len(), "{label}: row counts");
    for cell in full.cell_refs() {
        assert_eq!(
            full.value(cell),
            selective.value(cell),
            "{label}: value at {cell:?}"
        );
    }
}

struct Row {
    edges: usize,
    selected: usize,
    rows: usize,
    full_s: f64,
    selective_s: f64,
    entries_before: usize,
    invalidated: u64,
}

fn run_fixture(fixture: &Fixture, fractions: &[f64], reps: usize) -> Vec<Row> {
    let opts = ParallelOptions::default();
    let rows = fixture.dirty.len();
    let mut out = Vec::new();
    for &fraction in fractions {
        let edges = ((rows as f64 * fraction).ceil() as usize).max(1);
        let delta = edge_delta(&fixture.kb, edges);

        // Prior repair on the old KB, with a registry so the warm cache's
        // survival under the delta sweep is measurable.
        let registry = Arc::new(CacheRegistry::new(RegistryConfig::default()));
        let ctx = MatchContext::with_registry(&fixture.kb, Arc::clone(&registry));
        let mut prior_repaired = fixture.dirty.clone();
        let prior: RelationReport =
            parallel_repair(&ctx, &fixture.rules, &mut prior_repaired, &opts);

        let mut next_kb = fixture.kb.clone();
        let footprint = next_kb
            .apply_delta(&delta)
            .expect("edge-only deltas cannot cycle");
        let cache = registry.cache_for(&fixture.kb, fixture.dirty.schema());
        let entries_before = cache.len();
        let stats_before = registry.stats();
        registry.apply_delta(
            fixture.kb.generation(),
            next_kb.generation(),
            next_kb.content_hash(),
            &footprint,
        );
        let invalidated = registry.stats().invalidated_entries - stats_before.invalidated_entries;

        let next_ctx = MatchContext::new(&next_kb);
        let (full_s, full) = best_of(reps, || {
            let mut relation = fixture.dirty.clone();
            parallel_repair(&next_ctx, &fixture.rules, &mut relation, &opts);
            relation
        });
        let mut selected = 0usize;
        let (selective_s, selective) = best_of(reps, || {
            let mut relation = fixture.dirty.clone();
            let report = parallel_repair_selective(
                &next_ctx,
                &fixture.rules,
                &mut relation,
                &opts,
                &prior,
                &prior_repaired,
                &footprint,
            );
            selected = report.selected_rows.expect("selective mode");
            relation
        });
        assert_agree(&full, &selective, fixture.name);

        out.push(Row {
            edges,
            selected,
            rows,
            full_s,
            selective_s,
            entries_before,
            invalidated,
        });
    }
    out
}

fn print_rows(name: &str, rows: &[Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.edges),
                format!(
                    "{}/{} ({:.1}%)",
                    r.selected,
                    r.rows,
                    100.0 * r.selected as f64 / r.rows as f64
                ),
                format!("{:.1}", r.full_s * 1e3),
                format!("{:.1}", r.selective_s * 1e3),
                format!("{:.2}x", r.full_s / r.selective_s.max(1e-9)),
                format!(
                    "{}/{} ({:.1}%)",
                    r.invalidated,
                    r.entries_before,
                    100.0 * r.invalidated as f64 / (r.entries_before.max(1)) as f64
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("INCREMENTAL RE-REPAIR AFTER KB DELTA — {name} (selective ≡ full verified)"),
            &[
                "delta edges",
                "rows re-run",
                "full ms",
                "selective ms",
                "speedup",
                "cache swept",
            ],
            &table,
        )
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (nobel_size, uis_size, reps) = if quick {
        (400, 600, 1)
    } else {
        (2_000, 3_000, 3)
    };
    let fractions = [0.01, 0.05, 0.10];

    eprintln!("running incremental Nobel (n={nobel_size})...");
    let fixture = nobel_fixture(nobel_size, 41);
    let rows = run_fixture(&fixture, &fractions, reps);
    print_rows(fixture.name, &rows);

    eprintln!("running incremental UIS (n={uis_size})...");
    let fixture = uis_fixture(uis_size, 43);
    let rows = run_fixture(&fixture, &fractions, reps);
    print_rows(fixture.name, &rows);

    println!(
        "selective-agrees-with-full: ok ({} configurations verified cell-for-cell)",
        2 * fractions.len()
    );
}
