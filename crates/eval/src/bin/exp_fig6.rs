//! Regenerates **Figure 6**: precision / recall / F-measure vs error rate
//! (4%–20%) on Nobel and UIS for bRepair(Yago), bRepair(DBpedia), Llunatic,
//! and constant CFDs, with a 50/50 typo/semantic split.
//!
//! Usage: `cargo run -p dr-eval --bin exp_fig6 --release [-- --quick]`

use dr_eval::exp2::{error_rate_sweep, Exp2Config, SweepDataset, SweepPoint};
use dr_eval::report::{f3, render_table};
use dr_eval::DrAlgo;

fn print_sweep(title: &str, points: &[SweepPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.x * 100.0),
                p.method.clone(),
                f3(p.quality.precision),
                f3(p.quality.recall),
                f3(p.quality.f_measure),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            title,
            &["error rate", "method", "Precision", "Recall", "F-measure"],
            &rows,
        )
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (nobel_size, uis_size, algo) = if quick {
        (200, 300, DrAlgo::Fast)
    } else {
        (dr_datasets::nobel::PAPER_SIZE, 5_000, DrAlgo::Basic)
    };
    let rates = [0.04, 0.08, 0.12, 0.16, 0.20];

    let cfg = Exp2Config {
        size: nobel_size,
        seed: 23,
        dr_algo: algo,
    };
    eprintln!("running Fig 6 Nobel sweep (n={nobel_size})...");
    let points = error_rate_sweep(SweepDataset::Nobel, &rates, &cfg);
    print_sweep(
        "FIGURE 6 (a,c,e). EFFECTIVENESS vs ERROR RATE — Nobel",
        &points,
    );

    let cfg = Exp2Config {
        size: uis_size,
        seed: 23,
        dr_algo: algo,
    };
    eprintln!("running Fig 6 UIS sweep (n={uis_size})...");
    let points = error_rate_sweep(SweepDataset::Uis, &rates, &cfg);
    print_sweep(
        "FIGURE 6 (b,d,f). EFFECTIVENESS vs ERROR RATE — UIS",
        &points,
    );
}
