//! Quality ablations (see `dr_eval::ablation`): what typo normalization,
//! detection-without-repair, cross-relation cache persistence, and
//! cross-process snapshot warm starts are worth.
//!
//! Usage: `cargo run -p dr-eval --bin exp_ablation --release [-- --quick]
//! [--cache-dir <dir>] [--metrics] [--trace <path>]`
//!
//! The snapshot warm-start ablation needs a disk directory; without
//! `--cache-dir` it uses (and cleans up) a scratch directory under the
//! system temp dir.

use dr_eval::ablation::{
    cache_persistence_ablation, detection_ablation, normalization_ablation,
    snapshot_warm_start_ablation, AblationConfig,
};
use dr_eval::obsflags::ObsCli;
use dr_eval::report::{
    cache_cell, f3, phases_cell, render_table, resilience_cell, secs, snapshot_cell,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let obs_cli = ObsCli::from_args(&args);
    let cfg = AblationConfig {
        size: if quick { 200 } else { 2_000 },
        obs: obs_cli.obs.clone(),
        ..Default::default()
    };

    let typo_cfg = AblationConfig {
        typo_share: 1.0,
        ..cfg.clone()
    };
    let rows: Vec<Vec<String>> = normalization_ablation(&typo_cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: TYPO NORMALIZATION (Nobel, 100% typos)",
            &["config", "Precision", "Recall", "F-measure", "#-POS"],
            &rows,
        )
    );

    let rows: Vec<Vec<String>> = detection_ablation(&cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
                r.flagged.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: DETECTION WITHOUT REPAIR (UIS, sparse KB)",
            &[
                "config",
                "Precision",
                "Recall",
                "F-measure",
                "#-POS",
                "#-flagged"
            ],
            &rows,
        )
    );

    let stream_len = 5;
    let rows: Vec<Vec<String>> = cache_persistence_ablation(&cfg, stream_len)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.relations.to_string(),
                secs(r.seconds),
                cache_cell(&r.cache),
                phases_cell(&r.timing),
                resilience_cell(&r.resilience),
                r.changes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: CACHE PERSISTENCE (Nobel stream, same schema)",
            &[
                "config",
                "#-relations",
                "time",
                "cache h/m/e",
                "phases pw+rep",
                "res d/f/q/r",
                "#-changes"
            ],
            &rows,
        )
    );

    // Snapshot warm start: two fresh registries ("processes") sharing one
    // on-disk cache directory.
    let (snap_dir, ephemeral) = match &cache_dir {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("dr-snap-ablation-{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&snap_dir).expect("create snapshot cache dir");
    let snap_rows = snapshot_warm_start_ablation(&cfg, stream_len, &snap_dir);
    let rows: Vec<Vec<String>> = snap_rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.relations.to_string(),
                secs(r.seconds),
                cache_cell(&r.cache),
                snapshot_cell(&r.snapshot),
                r.changes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: SNAPSHOT WARM START (Nobel stream, shared disk cache)",
            &[
                "config",
                "#-relations",
                "time",
                "cache h/m/e",
                "snap w/c/r/s",
                "#-changes"
            ],
            &rows,
        )
    );
    let warm: u64 = snap_rows.iter().map(|r| r.snapshot.warm_loads).sum();
    println!("snapshot-warm-loads: {warm}");
    if ephemeral {
        std::fs::remove_dir_all(&snap_dir).ok();
    }
    obs_cli.finish();
}
