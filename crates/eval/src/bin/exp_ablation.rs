//! Quality ablations (see `dr_eval::ablation`): what typo normalization and
//! detection-without-repair are worth.
//!
//! Usage: `cargo run -p dr-eval --bin exp_ablation --release [-- --quick]`

use dr_eval::ablation::{detection_ablation, normalization_ablation, AblationConfig};
use dr_eval::report::{f3, render_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = AblationConfig {
        size: if quick { 200 } else { 2_000 },
        ..Default::default()
    };

    let typo_cfg = AblationConfig {
        typo_share: 1.0,
        ..cfg.clone()
    };
    let rows: Vec<Vec<String>> = normalization_ablation(&typo_cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: TYPO NORMALIZATION (Nobel, 100% typos)",
            &["config", "Precision", "Recall", "F-measure", "#-POS"],
            &rows,
        )
    );

    let rows: Vec<Vec<String>> = detection_ablation(&cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
                r.flagged.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: DETECTION WITHOUT REPAIR (UIS, sparse KB)",
            &[
                "config",
                "Precision",
                "Recall",
                "F-measure",
                "#-POS",
                "#-flagged"
            ],
            &rows,
        )
    );
}
