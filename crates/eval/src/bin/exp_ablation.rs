//! Quality ablations (see `dr_eval::ablation`): what typo normalization,
//! detection-without-repair, and cross-relation cache persistence are worth.
//!
//! Usage: `cargo run -p dr-eval --bin exp_ablation --release [-- --quick]`

use dr_eval::ablation::{
    cache_persistence_ablation, detection_ablation, normalization_ablation, AblationConfig,
};
use dr_eval::report::{cache_cell, f3, phases_cell, render_table, resilience_cell, secs};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = AblationConfig {
        size: if quick { 200 } else { 2_000 },
        ..Default::default()
    };

    let typo_cfg = AblationConfig {
        typo_share: 1.0,
        ..cfg.clone()
    };
    let rows: Vec<Vec<String>> = normalization_ablation(&typo_cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: TYPO NORMALIZATION (Nobel, 100% typos)",
            &["config", "Precision", "Recall", "F-measure", "#-POS"],
            &rows,
        )
    );

    let rows: Vec<Vec<String>> = detection_ablation(&cfg)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
                r.flagged.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: DETECTION WITHOUT REPAIR (UIS, sparse KB)",
            &[
                "config",
                "Precision",
                "Recall",
                "F-measure",
                "#-POS",
                "#-flagged"
            ],
            &rows,
        )
    );

    let stream_len = 5;
    let rows: Vec<Vec<String>> = cache_persistence_ablation(&cfg, stream_len)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.relations.to_string(),
                secs(r.seconds),
                cache_cell(&r.cache),
                phases_cell(&r.timing),
                resilience_cell(&r.resilience),
                r.changes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "ABLATION: CACHE PERSISTENCE (Nobel stream, same schema)",
            &[
                "config",
                "#-relations",
                "time",
                "cache h/m/e",
                "phases pw+rep",
                "res d/f/q",
                "#-changes"
            ],
            &rows,
        )
    );
}
