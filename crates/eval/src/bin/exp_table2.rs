//! Regenerates **Table II**: aligned classes and relationships per dataset
//! and KB flavor.
//!
//! Usage: `cargo run -p dr-eval --bin exp_table2 --release [-- --quick]`

use dr_eval::exp1::{table2, Exp1Config};
use dr_eval::report::render_table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Exp1Config {
            nobel_size: 200,
            uis_size: 500,
            ..Default::default()
        }
    } else {
        Exp1Config::default()
    };
    let rows = table2(&cfg);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_owned(),
                r.kb.label().to_owned(),
                r.stats.classes.to_string(),
                r.stats.relationships.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "TABLE II. DATASETS (ALIGNED CLASSES AND RELATIONS)",
            &["dataset", "KB", "#-class", "#-relationship"],
            &table_rows,
        )
    );
}
