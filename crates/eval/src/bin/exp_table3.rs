//! Regenerates **Table III**: data annotation and repair accuracy of
//! detective rules vs KATARA (precision / recall / F-measure / #-POS) on
//! WebTables, Nobel, and UIS against both KBs.
//!
//! Usage: `cargo run -p dr-eval --bin exp_table3 --release [-- --quick]
//! [--cache-dir <dir>] [--dump <path>]...`
//!
//! * `--cache-dir <dir>` turns on cross-process value-cache snapshots
//!   (DESIGN.md §4a): DR registries seed from the directory and persist
//!   back to it, so a second invocation warm-starts from disk. The run
//!   also prints a greppable `snapshot-warm-loads: N` line.
//! * `--dump <path>` (repeatable) loads an external `.nt`/`.csv` dump
//!   leniently and prints a capped quarantine summary to stderr.
//! * `--metrics` / `--trace <path>` / `--trace-sample <rate>` /
//!   `--trace-seed <seed>` — observability flags, see
//!   [`dr_eval::obsflags`].

use dr_eval::exp1::{table3, Exp1Config};
use dr_eval::obsflags::ObsCli;
use dr_eval::report::{
    cache_cell, f3, phases_cell, render_table, resilience_cell, secs, snapshot_cell,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    let dumps = dr_eval::dumps::dump_paths(&args);
    if !dumps.is_empty() {
        let quarantined = dr_eval::dumps::report_dumps(&dumps);
        eprintln!(
            "loaded {} external dump(s), {} record(s) quarantined",
            dumps.len(),
            quarantined
        );
    }

    let mut cfg = if quick {
        Exp1Config {
            nobel_size: 200,
            uis_size: 400,
            ..Default::default()
        }
    } else {
        Exp1Config::default()
    };
    if let Some(dir) = &cache_dir {
        std::fs::create_dir_all(dir).expect("create cache dir");
        cfg.cache_dir = Some(dir.clone());
    }
    let obs_cli = ObsCli::from_args(&args);
    cfg.obs = obs_cli.obs.clone();
    eprintln!(
        "running Table III (nobel={}, uis={}, e={}%)...",
        cfg.nobel_size,
        cfg.uis_size,
        cfg.error_rate * 100.0
    );
    let rows = table3(&cfg);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_owned(),
                r.method.to_owned(),
                r.kb.label().to_owned(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
                secs(r.seconds),
                cache_cell(&r.cache),
                phases_cell(&r.timing),
                resilience_cell(&r.resilience),
                snapshot_cell(&r.snapshot),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "TABLE III. DATA ANNOTATION AND REPAIR ACCURACY",
            &[
                "dataset",
                "method",
                "KB",
                "Precision",
                "Recall",
                "F-measure",
                "#-POS",
                "time",
                "cache h/m/e",
                "phases pw+rep",
                "res d/f/q/r",
                "snap w/c/r/s"
            ],
            &table_rows,
        )
    );
    if cache_dir.is_some() {
        let warm: u64 = rows.iter().map(|r| r.snapshot.warm_loads).sum();
        println!("snapshot-warm-loads: {warm}");
    }
    obs_cli.finish();
}
