//! Regenerates **Table III**: data annotation and repair accuracy of
//! detective rules vs KATARA (precision / recall / F-measure / #-POS) on
//! WebTables, Nobel, and UIS against both KBs.
//!
//! Usage: `cargo run -p dr-eval --bin exp_table3 --release [-- --quick]`

use dr_eval::exp1::{table3, Exp1Config};
use dr_eval::report::{cache_cell, f3, phases_cell, render_table, resilience_cell, secs};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        Exp1Config {
            nobel_size: 200,
            uis_size: 400,
            ..Default::default()
        }
    } else {
        Exp1Config::default()
    };
    eprintln!(
        "running Table III (nobel={}, uis={}, e={}%)...",
        cfg.nobel_size,
        cfg.uis_size,
        cfg.error_rate * 100.0
    );
    let rows = table3(&cfg);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_owned(),
                r.method.to_owned(),
                r.kb.label().to_owned(),
                f3(r.quality.precision),
                f3(r.quality.recall),
                f3(r.quality.f_measure),
                r.pos.to_string(),
                secs(r.seconds),
                cache_cell(&r.cache),
                phases_cell(&r.timing),
                resilience_cell(&r.resilience),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "TABLE III. DATA ANNOTATION AND REPAIR ACCURACY",
            &[
                "dataset",
                "method",
                "KB",
                "Precision",
                "Recall",
                "F-measure",
                "#-POS",
                "time",
                "cache h/m/e",
                "phases pw+rep",
                "res d/f/q"
            ],
            &table_rows,
        )
    );
}
