//! Exp-3 (Figure 8): efficiency and scalability.
//!
//! * Fig. 8(a–c) — repair time vs number of rules (`bRepair` vs `fRepair`,
//!   both KBs) on WebTables, Nobel, and UIS;
//! * Fig. 8(d) — repair time vs number of tuples on UIS for all methods
//!   (DR variants, KATARA, Llunatic, constant CFDs).

use crate::runner::{fds, katara_pattern, run_ccfd, run_drs, run_katara, run_llunatic, DrAlgo};
use dr_baselines::mine_constant_cfds;
use dr_core::MatchContext;
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld, WebTablesWorld};
use dr_relation::noise::{inject, NoiseSpec};

/// One timing measurement.
#[derive(Debug, Clone)]
pub struct TimingPoint {
    /// Swept x value (#rules or #tuples).
    pub x: usize,
    /// Method label.
    pub method: String,
    /// Wall-clock repair seconds.
    pub seconds: f64,
    /// Value-cache counters (all-zero for methods without one).
    pub cache: dr_core::CacheStats,
    /// Per-phase repair timings (all-zero for methods without phases).
    pub timing: dr_core::PhaseTimings,
    /// Degraded / failed / quarantined counters (all-zero for baselines
    /// and fault-free unbounded runs).
    pub resilience: dr_core::ResilienceReport,
}

impl TimingPoint {
    fn bare(x: usize, method: String, seconds: f64) -> Self {
        Self {
            x,
            method,
            seconds,
            cache: dr_core::CacheStats::default(),
            timing: dr_core::PhaseTimings::default(),
            resilience: dr_core::ResilienceReport::default(),
        }
    }
}

/// Configuration for the efficiency experiments.
#[derive(Debug, Clone)]
pub struct Exp3Config {
    /// Nobel tuple count (paper: 1069).
    pub nobel_size: usize,
    /// UIS tuple count for the rule sweep (paper: 20K).
    pub uis_size: usize,
    /// Error rate (paper: 10%).
    pub error_rate: f64,
    /// Master seed.
    pub seed: u64,
    /// Observability handle (DESIGN.md §4d); `None` keeps the
    /// zero-overhead path.
    pub obs: Option<std::sync::Arc<dr_obs::Obs>>,
}

impl Default for Exp3Config {
    fn default() -> Self {
        Self {
            nobel_size: dr_datasets::nobel::PAPER_SIZE,
            uis_size: 20_000,
            error_rate: 0.10,
            seed: 41,
            obs: None,
        }
    }
}

/// Fig. 8(a): WebTables repair time vs rule count (10–50 by 10), for
/// `bRepair`/`fRepair` × both KBs.
pub fn webtables_rule_sweep(rule_counts: &[usize], cfg: &Exp3Config) -> Vec<TimingPoint> {
    let world = WebTablesWorld::generate(cfg.seed);
    let mut out = Vec::new();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let ctx = MatchContext::new(&kb).with_obs_opt(cfg.obs.clone());
        let all_rules = world.rules(&kb);
        for &n in rule_counts {
            let rules = &all_rules[..n.min(all_rules.len())];
            for algo in [DrAlgo::Basic, DrAlgo::Fast] {
                let mut seconds = 0.0;
                let mut cache = dr_core::CacheStats::default();
                let mut timing = dr_core::PhaseTimings::default();
                let mut resilience = dr_core::ResilienceReport::default();
                for table in &world.tables {
                    let table_rules = dr_datasets::WebTablesWorld::applicable_rules(
                        rules,
                        table.dirty.schema().arity(),
                    );
                    let outcome = run_drs(&ctx, &table_rules, &table.clean, &table.dirty, algo);
                    seconds += outcome.seconds;
                    cache += outcome.cache;
                    timing += outcome.timing;
                    resilience += outcome.resilience;
                }
                out.push(TimingPoint {
                    x: n,
                    method: format!("{}({})", algo.label(), flavor.label()),
                    seconds,
                    cache,
                    timing,
                    resilience,
                });
            }
        }
    }
    out
}

/// Fig. 8(b)/(c): Nobel or UIS repair time vs rule count (1–5).
pub fn keyed_rule_sweep(
    dataset: super::exp2::SweepDataset,
    rule_counts: &[usize],
    cfg: &Exp3Config,
) -> Vec<TimingPoint> {
    use super::exp2::SweepDataset;
    let mut out = Vec::new();
    match dataset {
        SweepDataset::Nobel => {
            let world = NobelWorld::generate(cfg.nobel_size, cfg.seed);
            let clean = world.clean_relation();
            let name = clean.schema().attr_expect("Name");
            let (dirty, _) = inject(
                &clean,
                &NoiseSpec::new(cfg.error_rate, cfg.seed).with_excluded(vec![name]),
                &world.semantic_source(),
            );
            for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
                let kb = world.kb(&KbProfile::of(flavor));
                let ctx = MatchContext::new(&kb).with_obs_opt(cfg.obs.clone());
                let all_rules = NobelWorld::rules(&kb);
                sweep_rules(
                    &ctx,
                    &all_rules,
                    rule_counts,
                    flavor,
                    &clean,
                    &dirty,
                    &mut out,
                );
            }
        }
        SweepDataset::Uis => {
            let world = UisWorld::generate(cfg.uis_size, cfg.seed);
            let clean = world.clean_relation();
            let name = clean.schema().attr_expect("Name");
            let (dirty, _) = inject(
                &clean,
                &NoiseSpec::new(cfg.error_rate, cfg.seed).with_excluded(vec![name]),
                &world.semantic_source(),
            );
            for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
                let kb = world.kb(&KbProfile::of(flavor));
                let ctx = MatchContext::new(&kb).with_obs_opt(cfg.obs.clone());
                let all_rules = UisWorld::rules(&kb);
                sweep_rules(
                    &ctx,
                    &all_rules,
                    rule_counts,
                    flavor,
                    &clean,
                    &dirty,
                    &mut out,
                );
            }
        }
    }
    out
}

fn sweep_rules(
    ctx: &MatchContext<'_>,
    all_rules: &[dr_core::DetectiveRule],
    rule_counts: &[usize],
    flavor: KbFlavor,
    clean: &dr_relation::Relation,
    dirty: &dr_relation::Relation,
    out: &mut Vec<TimingPoint>,
) {
    for &n in rule_counts {
        let rules = &all_rules[..n.min(all_rules.len())];
        for algo in [DrAlgo::Basic, DrAlgo::Fast] {
            let outcome = run_drs(ctx, rules, clean, dirty, algo);
            out.push(TimingPoint {
                x: n,
                method: format!("{}({})", algo.label(), flavor.label()),
                seconds: outcome.seconds,
                cache: outcome.cache,
                timing: outcome.timing,
                resilience: outcome.resilience,
            });
        }
    }
}

/// Fig. 8(d): UIS repair time vs tuple count (paper: 20K–100K), for all
/// methods. KB build time **is** included for the DR/KATARA series, as in
/// the paper ("the time of reading and handling KBs was included").
pub fn uis_tuple_sweep(sizes: &[usize], cfg: &Exp3Config) -> Vec<TimingPoint> {
    let mut out = Vec::new();
    for &size in sizes {
        let world = UisWorld::generate(size, cfg.seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(cfg.error_rate, cfg.seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );

        for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
            let setup = std::time::Instant::now();
            let kb = world.kb(&KbProfile::of(flavor));
            let ctx = MatchContext::new(&kb).with_obs_opt(cfg.obs.clone());
            let rules = UisWorld::rules(&kb);
            let kb_seconds = setup.elapsed().as_secs_f64();

            for algo in [DrAlgo::Basic, DrAlgo::Fast] {
                let outcome = run_drs(&ctx, &rules, &clean, &dirty, algo);
                out.push(TimingPoint {
                    x: size,
                    method: format!("{}({})", algo.label(), flavor.label()),
                    seconds: kb_seconds + outcome.seconds,
                    cache: outcome.cache,
                    timing: outcome.timing,
                    resilience: outcome.resilience,
                });
            }
            // KATARA only on Yago/DBpedia like the paper's plot.
            let pattern = katara_pattern(&rules);
            let outcome = run_katara(&ctx, &pattern, &clean, &dirty);
            out.push(TimingPoint::bare(
                size,
                format!("KATARA({})", flavor.label()),
                kb_seconds + outcome.seconds,
            ));
        }

        let fd_list = fds::uis(clean.schema());
        let outcome = run_llunatic(&fd_list, &clean, &dirty);
        out.push(TimingPoint::bare(
            size,
            "Llunatic".to_owned(),
            outcome.seconds,
        ));
        let cfds = mine_constant_cfds(&clean, &fd_list);
        let outcome = run_ccfd(&cfds, &clean, &dirty);
        out.push(TimingPoint::bare(
            size,
            "constant CFDs".to_owned(),
            outcome.seconds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp2::SweepDataset;

    fn tiny_cfg() -> Exp3Config {
        Exp3Config {
            nobel_size: 200,
            uis_size: 300,
            error_rate: 0.10,
            seed: 41,
            obs: None,
        }
    }

    #[test]
    fn webtables_sweep_produces_all_series() {
        let points = webtables_rule_sweep(&[10, 50], &tiny_cfg());
        // 2 rule counts × 2 algos × 2 KBs.
        assert_eq!(points.len(), 8);
        let methods: dr_kb::FxHashSet<&str> = points.iter().map(|p| p.method.as_str()).collect();
        assert_eq!(methods.len(), 4);
    }

    /// fRepair must not be slower than bRepair by more than noise at the
    /// largest rule count (the headline Exp-3 claim, stated conservatively
    /// for a tiny test workload).
    #[test]
    fn fast_wins_with_many_rules_on_uis() {
        let points = keyed_rule_sweep(SweepDataset::Uis, &[5], &tiny_cfg());
        let basic = points
            .iter()
            .find(|p| p.method == "bRepair(Yago)")
            .unwrap()
            .seconds;
        let fast = points
            .iter()
            .find(|p| p.method == "fRepair(Yago)")
            .unwrap()
            .seconds;
        assert!(
            fast <= basic * 1.5,
            "fRepair ({fast:.4}s) should not lose badly to bRepair ({basic:.4}s)"
        );
    }

    #[test]
    fn tuple_sweep_covers_all_methods() {
        let points = uis_tuple_sweep(&[200], &tiny_cfg());
        // 4 DR series + 2 KATARA + Llunatic + CFDs = 8 methods.
        assert_eq!(points.len(), 8);
        let ccfd = points.iter().find(|p| p.method == "constant CFDs").unwrap();
        let dr = points.iter().find(|p| p.method == "bRepair(Yago)").unwrap();
        assert!(
            ccfd.seconds < dr.seconds,
            "constant CFDs are the fastest method"
        );
    }
}
