//! KB-coverage sweep (reproduction-specific experiment).
//!
//! The paper's Yago-vs-DBpedia quality gap is attributed to coverage; our
//! synthetic KBs make coverage an explicit knob. Sweeping it validates the
//! substitution argument of DESIGN.md §2: DR recall should track entity
//! coverage roughly linearly while precision stays at 1.0, and the default
//! Yago (0.95) / DBpedia (0.75) profiles should land on the same curve.

use crate::metrics::{evaluate, Quality, RepairExtras};
use dr_core::repair::fast::FastRepairer;
use dr_core::{ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, NobelWorld};
use dr_relation::noise::{inject, NoiseSpec};

/// One coverage measurement.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    /// Entity coverage of the KB (fraction of persons with a full
    /// neighbourhood).
    pub coverage: f64,
    /// Repair quality at this coverage.
    pub quality: Quality,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Nobel tuple count.
    pub size: usize,
    /// Error rate.
    pub error_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        Self {
            size: 1_000,
            error_rate: 0.10,
            seed: 53,
        }
    }
}

/// Measures DR quality on the Nobel workload across KB entity coverages.
pub fn coverage_sweep(coverages: &[f64], cfg: &CoverageConfig) -> Vec<CoveragePoint> {
    let world = NobelWorld::generate(cfg.size, cfg.seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(cfg.error_rate, cfg.seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    coverages
        .iter()
        .map(|&coverage| {
            let mut profile = KbProfile::yago();
            profile.entity_coverage = coverage;
            let kb = world.kb(&profile);
            let rules = NobelWorld::rules(&kb);
            let ctx = MatchContext::new(&kb);
            let mut working = dirty.clone();
            let report = FastRepairer::new(&rules).repair_relation(
                &ctx,
                &mut working,
                &ApplyOptions::default(),
            );
            let extras = RepairExtras::from_report(&report);
            CoveragePoint {
                coverage,
                quality: evaluate(&clean, &dirty, &working, &extras),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_tracks_coverage_and_precision_holds() {
        let cfg = CoverageConfig {
            size: 300,
            ..Default::default()
        };
        let points = coverage_sweep(&[0.4, 0.7, 1.0], &cfg);
        assert_eq!(points.len(), 3);
        // Monotone recall in coverage.
        assert!(
            points[0].quality.recall < points[1].quality.recall,
            "{points:?}"
        );
        assert!(
            points[1].quality.recall < points[2].quality.recall,
            "{points:?}"
        );
        // Precision independent of coverage.
        for p in &points {
            assert!(p.quality.precision > 0.97, "{:?}", p.quality);
        }
        // Full coverage repairs nearly everything that isn't an evidence
        // error. Noise spreads uniformly over the five non-Name columns
        // and DOB errors are structurally unrepairable (DOB is evidence
        // only — no rule has it as positive column), so expected recall
        // caps at ~0.8; multi-error tuples whose evidence is itself dirty
        // shave off a little more. Demand ~90% of the repairable share.
        assert!(points[2].quality.recall > 0.72, "{:?}", points[2].quality);
    }
}
