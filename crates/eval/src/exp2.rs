//! Exp-2 (Figures 6 and 7): comparison with IC-based repairing on Nobel and
//! UIS, varying the error rate (Fig. 6) and the typo share (Fig. 7).
//!
//! Methods: `bRepair(Yago)`, `bRepair(DBpedia)`, `Llunatic`, `constant
//! CFDs` — exactly the four series of the paper's plots.

use crate::metrics::Quality;
use crate::runner::{fds, DrAlgo};
use dr_baselines::mine_constant_cfds;
use dr_core::MatchContext;
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_relation::noise::{inject, NoiseSpec, SemanticSource};
use dr_relation::{AttrId, Relation};

/// Which keyed dataset a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepDataset {
    /// The Nobel laureates relation.
    Nobel,
    /// The UIS person/address relation.
    Uis,
}

impl SweepDataset {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            SweepDataset::Nobel => "Nobel",
            SweepDataset::Uis => "UIS",
        }
    }
}

/// Sweep sizes and seeds.
#[derive(Debug, Clone)]
pub struct Exp2Config {
    /// Tuple count for the chosen dataset.
    pub size: usize,
    /// Master seed.
    pub seed: u64,
    /// DR algorithm for the DR series (paper plots `bRepair`).
    pub dr_algo: DrAlgo,
}

impl Default for Exp2Config {
    fn default() -> Self {
        Self {
            size: 1_000,
            seed: 23,
            dr_algo: DrAlgo::Basic,
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept x value (error rate for Fig. 6, typo share for Fig. 7).
    pub x: f64,
    /// Method label (`bRepair(Yago)`, `Llunatic`, …).
    pub method: String,
    /// Quality at this point.
    pub quality: Quality,
}

/// Everything fixed about a sweep: worlds, clean relation, KBs, rules.
enum World {
    Nobel(NobelWorld),
    Uis(UisWorld),
}

impl World {
    fn semantic(&self) -> Box<dyn SemanticSource + '_> {
        match self {
            World::Nobel(w) => Box::new(w.semantic_source()),
            World::Uis(w) => Box::new(w.semantic_source()),
        }
    }
}

struct SweepEnv {
    world: World,
    clean: Relation,
    key_attr: AttrId,
    kbs: Vec<(KbFlavor, dr_kb::KnowledgeBase, Vec<dr_core::DetectiveRule>)>,
    fds: Vec<dr_baselines::Fd>,
}

fn build_env(dataset: SweepDataset, cfg: &Exp2Config) -> SweepEnv {
    let (world, clean, fd_list) = match dataset {
        SweepDataset::Nobel => {
            let w = NobelWorld::generate(cfg.size, cfg.seed);
            let clean = w.clean_relation();
            let fd_list = fds::nobel(clean.schema());
            (World::Nobel(w), clean, fd_list)
        }
        SweepDataset::Uis => {
            let w = UisWorld::generate(cfg.size, cfg.seed);
            let clean = w.clean_relation();
            let fd_list = fds::uis(clean.schema());
            (World::Uis(w), clean, fd_list)
        }
    };
    let key_attr = clean.schema().attr_expect("Name");
    let kbs = [KbFlavor::YagoLike, KbFlavor::DbpediaLike]
        .into_iter()
        .map(|flavor| {
            let profile = KbProfile::of(flavor);
            let (kb, rules) = match &world {
                World::Nobel(w) => {
                    let kb = w.kb(&profile);
                    let rules = NobelWorld::rules(&kb);
                    (kb, rules)
                }
                World::Uis(w) => {
                    let kb = w.kb(&profile);
                    let rules = UisWorld::rules(&kb);
                    (kb, rules)
                }
            };
            (flavor, kb, rules)
        })
        .collect();
    SweepEnv {
        world,
        clean,
        key_attr,
        kbs,
        fds: fd_list,
    }
}

/// Rows whose **dirty** key value has a corresponding KB entity — the
/// paper's evaluation restriction ("we mainly evaluated the tuples whose
/// value in key attribute have corresponding entities in KBs").
fn key_mask(kb: &dr_kb::KnowledgeBase, dirty: &Relation, key: AttrId) -> Vec<bool> {
    dirty
        .tuples()
        .iter()
        .map(|t| !kb.instances_labeled(t.get(key)).is_empty())
        .collect()
}

/// Measures all four methods on one `(error_rate, typo_share)` noise point.
///
/// Noise lands on every column including the key; evaluation is restricted
/// per KB to key-covered tuples (see [`key_mask`]). The IC-based baselines
/// use the first (Yago) mask so all series are judged on comparable tuples.
fn measure_point(
    env: &SweepEnv,
    cfg: &Exp2Config,
    x: f64,
    error_rate: f64,
    typo_share: f64,
    out: &mut Vec<SweepPoint>,
) {
    let spec =
        NoiseSpec::new(error_rate, cfg.seed ^ (x * 1000.0) as u64).with_typo_share(typo_share);
    let semantic = env.world.semantic();
    let (dirty, _) = inject(&env.clean, &spec, semantic.as_ref());

    let mut first_mask: Option<Vec<bool>> = None;
    for (flavor, kb, rules) in &env.kbs {
        let ctx = MatchContext::new(kb);
        let mask = key_mask(kb, &dirty, env.key_attr);
        let outcome = run_drs_masked(&ctx, rules, &env.clean, &dirty, cfg.dr_algo, &mask);
        if first_mask.is_none() {
            first_mask = Some(mask);
        }
        out.push(SweepPoint {
            x,
            method: format!("{}({})", cfg.dr_algo.label(), flavor.label()),
            quality: outcome,
        });
    }
    let mask = first_mask.expect("at least one KB");

    let mut working = dirty.clone();
    let changes = dr_baselines::llunatic_repair(
        &mut working,
        &env.fds,
        &dr_baselines::LlunaticConfig::default(),
    );
    let extras = crate::metrics::RepairExtras::from_llunatic(&changes);
    let quality =
        crate::metrics::evaluate_masked(&env.clean, &dirty, &working, &extras, Some(&mask));
    out.push(SweepPoint {
        x,
        method: "Llunatic".to_owned(),
        quality,
    });

    let cfds = mine_constant_cfds(&env.clean, &env.fds);
    let mut working = dirty.clone();
    cfds.apply(&mut working);
    let quality = crate::metrics::evaluate_masked(
        &env.clean,
        &dirty,
        &working,
        &crate::metrics::RepairExtras::default(),
        Some(&mask),
    );
    out.push(SweepPoint {
        x,
        method: "constant CFDs".to_owned(),
        quality,
    });
}

/// Runs the chosen DR algorithm and scores it under `mask`.
fn run_drs_masked(
    ctx: &MatchContext<'_>,
    rules: &[dr_core::DetectiveRule],
    clean: &Relation,
    dirty: &Relation,
    algo: DrAlgo,
    mask: &[bool],
) -> Quality {
    use dr_core::repair::basic::basic_repair;
    use dr_core::repair::fast::FastRepairer;
    let opts = dr_core::ApplyOptions::default();
    let mut working = dirty.clone();
    let report = match algo {
        DrAlgo::Basic => basic_repair(ctx, rules, &mut working, &opts),
        DrAlgo::Fast => FastRepairer::new(rules).repair_relation(ctx, &mut working, &opts),
        DrAlgo::Parallel(threads) => dr_core::parallel_repair(
            ctx,
            rules,
            &mut working,
            &dr_core::ParallelOptions {
                apply: opts.clone(),
                threads,
                ..Default::default()
            },
        ),
    };
    let extras = crate::metrics::RepairExtras::from_report(&report);
    crate::metrics::evaluate_masked(clean, dirty, &working, &extras, Some(mask))
}

/// Fig. 6: varies the error rate (paper: 4%–20%) at a fixed 50/50
/// typo/semantic split.
pub fn error_rate_sweep(dataset: SweepDataset, rates: &[f64], cfg: &Exp2Config) -> Vec<SweepPoint> {
    let env = build_env(dataset, cfg);
    let mut out = Vec::new();
    for &rate in rates {
        measure_point(&env, cfg, rate, rate, 0.5, &mut out);
    }
    out
}

/// Fig. 7: varies the typo share (paper: 0%–100%) at a fixed 10% error
/// rate.
pub fn typo_rate_sweep(
    dataset: SweepDataset,
    typo_shares: &[f64],
    cfg: &Exp2Config,
) -> Vec<SweepPoint> {
    let env = build_env(dataset, cfg);
    let mut out = Vec::new();
    for &share in typo_shares {
        measure_point(&env, cfg, share, 0.10, share, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Exp2Config {
        Exp2Config {
            size: 250,
            seed: 23,
            dr_algo: DrAlgo::Fast, // faster in tests; identical quality
        }
    }

    fn series<'a>(points: &'a [SweepPoint], method: &str) -> Vec<&'a SweepPoint> {
        points
            .iter()
            .filter(|p| p.method.contains(method))
            .collect()
    }

    #[test]
    fn fig6_shape_on_nobel() {
        let rates = [0.04, 0.12, 0.20];
        let points = error_rate_sweep(SweepDataset::Nobel, &rates, &small_cfg());
        assert_eq!(points.len(), rates.len() * 4);

        // DRs stay near-perfect precision across rates.
        for p in series(&points, "Yago") {
            assert!(
                p.quality.precision > 0.9,
                "DR precision at {}: {:?}",
                p.x,
                p.quality
            );
        }
        // DRs beat Llunatic on F-measure at every rate.
        for &rate in &rates {
            let dr = points
                .iter()
                .find(|p| p.x == rate && p.method.contains("Yago"))
                .unwrap();
            let llu = points
                .iter()
                .find(|p| p.x == rate && p.method == "Llunatic")
                .unwrap();
            assert!(
                dr.quality.f_measure > llu.quality.f_measure,
                "rate {rate}: DR {:?} vs Llunatic {:?}",
                dr.quality,
                llu.quality
            );
        }
    }

    #[test]
    fn fig7_typo_shape_on_uis() {
        let shares = [0.0, 1.0];
        let points = typo_rate_sweep(SweepDataset::Uis, &shares, &small_cfg());
        assert_eq!(points.len(), 8);
        // DR recall is at least as good with typos as with semantic errors
        // landing on evidence (the paper: "behaved better with typos").
        let dr_at = |share: f64| {
            points
                .iter()
                .find(|p| p.x == share && p.method.contains("Yago"))
                .unwrap()
                .quality
        };
        assert!(
            dr_at(1.0).recall + 0.05 >= dr_at(0.0).recall,
            "typos {:?} vs semantic {:?}",
            dr_at(1.0),
            dr_at(0.0)
        );
    }

    #[test]
    fn ccfd_quality_is_bounded_across_sweep() {
        let shares = [0.0, 0.5, 1.0];
        let points = typo_rate_sweep(SweepDataset::Nobel, &shares, &small_cfg());
        for p in series(&points, "CFD") {
            assert!((0.0..=1.0).contains(&p.quality.precision));
            assert!((0.0..=1.0).contains(&p.quality.recall));
        }
    }
}
