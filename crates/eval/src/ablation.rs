//! Quality ablations for the design choices beyond raw speed (the speed
//! ablations live in `dr-bench`):
//!
//! * **Typo normalization** (DESIGN.md extensions) — disabling
//!   `normalize_fuzzy` shows how much recall the paper's "repair to the most
//!   similar candidate" behaviour is worth on a typo-heavy workload.
//! * **Detection without repair** (§II-C case (2)) — enabling
//!   `detect_without_repair` shows the extra annotation (#-POS) available
//!   when the KB can prove a value wrong but offers no correction.
//! * **Cache persistence** — repairing a stream of same-schema relations
//!   with and without a shared [`CacheRegistry`](dr_core::CacheRegistry)
//!   shows what warm-starting the value cache is worth.

use crate::metrics::{evaluate, Quality, RepairExtras};
use dr_core::repair::fast::FastRepairer;
use dr_core::{ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, NobelWorld, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};
use std::sync::Arc;

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Quality against ground truth.
    pub quality: Quality,
    /// Cells marked positive.
    pub pos: usize,
    /// Cells flagged wrong without a repair (detection mode only).
    pub flagged: usize,
}

/// Ablation sizes and seeds.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Tuple count.
    pub size: usize,
    /// Error rate.
    pub error_rate: f64,
    /// Typo share of the injected errors.
    pub typo_share: f64,
    /// Master seed.
    pub seed: u64,
    /// Observability handle (DESIGN.md §4d); `None` keeps the
    /// zero-overhead path.
    pub obs: Option<Arc<dr_obs::Obs>>,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            size: 1_000,
            error_rate: 0.10,
            typo_share: 0.5,
            seed: 47,
            obs: None,
        }
    }
}

fn run_with_options(
    kb: &dr_kb::KnowledgeBase,
    rules: &[dr_core::DetectiveRule],
    clean: &dr_relation::Relation,
    dirty: &dr_relation::Relation,
    label: &str,
    opts: &ApplyOptions,
    obs: Option<Arc<dr_obs::Obs>>,
) -> AblationRow {
    let ctx = MatchContext::new(kb).with_obs_opt(obs);
    let mut working = dirty.clone();
    let report = FastRepairer::new(rules).repair_relation(&ctx, &mut working, opts);
    let extras = RepairExtras::from_report(&report);
    let flagged = report
        .tuples
        .iter()
        .flat_map(|t| &t.steps)
        .filter(|s| {
            matches!(
                s.application,
                dr_core::RuleApplication::DetectedWrong { .. }
            )
        })
        .count();
    AblationRow {
        config: label.to_owned(),
        quality: evaluate(clean, dirty, &working, &extras),
        pos: working.positive_count(),
        flagged,
    }
}

/// Normalization ablation on a typo-heavy Nobel workload.
pub fn normalization_ablation(cfg: &AblationConfig) -> Vec<AblationRow> {
    let world = NobelWorld::generate(cfg.size, cfg.seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(cfg.error_rate, cfg.seed)
            .with_typo_share(cfg.typo_share)
            .with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    vec![
        run_with_options(
            &kb,
            &rules,
            &clean,
            &dirty,
            "normalize_fuzzy=on (default)",
            &ApplyOptions::default(),
            cfg.obs.clone(),
        ),
        run_with_options(
            &kb,
            &rules,
            &clean,
            &dirty,
            "normalize_fuzzy=off",
            &ApplyOptions {
                normalize_fuzzy: false,
                ..Default::default()
            },
            cfg.obs.clone(),
        ),
    ]
}

/// Detection-without-repair ablation on a sparse UIS KB: positive edges
/// are frequently missing, so the negative semantics often matches with no
/// correction available — exactly the situation §II-C case (2) covers.
pub fn detection_ablation(cfg: &AblationConfig) -> Vec<AblationRow> {
    let world = UisWorld::generate(cfg.size, cfg.seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(cfg.error_rate, cfg.seed)
            .with_typo_share(cfg.typo_share)
            .with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let mut profile = KbProfile::dbpedia();
    profile.edge_dropout = 0.35; // a very incomplete KB
    let kb = world.kb(&profile);
    let rules = UisWorld::rules(&kb);
    vec![
        run_with_options(
            &kb,
            &rules,
            &clean,
            &dirty,
            "detect_without_repair=off (default)",
            &ApplyOptions::default(),
            cfg.obs.clone(),
        ),
        run_with_options(
            &kb,
            &rules,
            &clean,
            &dirty,
            "detect_without_repair=on",
            &ApplyOptions {
                detect_without_repair: true,
                ..Default::default()
            },
            cfg.obs.clone(),
        ),
    ]
}

/// One cache-persistence measurement: a whole stream of same-schema
/// relations repaired under one cache regime.
#[derive(Debug, Clone)]
pub struct CachePersistenceRow {
    /// Configuration label.
    pub config: String,
    /// Relations in the stream.
    pub relations: usize,
    /// Total repair seconds across the stream.
    pub seconds: f64,
    /// Aggregated value-cache counters across the stream.
    pub cache: dr_core::CacheStats,
    /// Aggregated phase timings across the stream.
    pub timing: dr_core::PhaseTimings,
    /// Aggregated degraded / failed / quarantined counters across the
    /// stream (all-zero for fault-free unbounded runs).
    pub resilience: dr_core::ResilienceReport,
    /// Total value rewrites (identical across regimes by construction —
    /// exposed so callers can assert it).
    pub changes: usize,
}

/// Cache-persistence ablation: repair `stream_len` dirty variants of the
/// same Nobel relation, cold (a fresh value cache per relation — the
/// registry-free default) vs warm (one [`CacheRegistry`](dr_core::CacheRegistry)
/// shared across the stream). Both regimes share the same `MatchContext`,
/// so the delta isolates value-cache persistence.
pub fn cache_persistence_ablation(
    cfg: &AblationConfig,
    stream_len: usize,
) -> Vec<CachePersistenceRow> {
    let world = NobelWorld::generate(cfg.size, cfg.seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let stream: Vec<dr_relation::Relation> = (0..stream_len as u64)
        .map(|i| {
            inject(
                &clean,
                &NoiseSpec::new(cfg.error_rate, cfg.seed ^ (i + 1)).with_excluded(vec![name]),
                &world.semantic_source(),
            )
            .0
        })
        .collect();
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let repairer = FastRepairer::new(&rules);
    let opts = ApplyOptions::default();

    let mut rows = Vec::new();
    let registry = Arc::new(dr_core::CacheRegistry::new(
        dr_core::RegistryConfig::default(),
    ));
    let regimes: [(&str, MatchContext<'_>); 2] = [
        (
            "cold (fresh cache per relation)",
            MatchContext::new(&kb).with_obs_opt(cfg.obs.clone()),
        ),
        (
            "warm (shared registry)",
            MatchContext::with_registry(&kb, registry).with_obs_opt(cfg.obs.clone()),
        ),
    ];
    for (label, ctx) in regimes {
        let mut row = CachePersistenceRow {
            config: label.to_owned(),
            relations: stream.len(),
            seconds: 0.0,
            cache: dr_core::CacheStats::default(),
            timing: dr_core::PhaseTimings::default(),
            resilience: dr_core::ResilienceReport::default(),
            changes: 0,
        };
        for dirty in &stream {
            let mut working = dirty.clone();
            let start = std::time::Instant::now();
            let report = repairer.repair_relation(&ctx, &mut working, &opts);
            row.seconds += start.elapsed().as_secs_f64();
            row.cache += report.cache;
            row.timing += report.timing;
            row.resilience += report.resilience;
            row.changes += report.total_changes();
        }
        rows.push(row);
    }
    rows
}

/// One snapshot warm-start measurement: a whole stream repaired by one
/// registry "process".
#[derive(Debug, Clone)]
pub struct SnapshotWarmStartRow {
    /// Configuration label.
    pub config: String,
    /// Relations in the stream.
    pub relations: usize,
    /// Total repair seconds across the stream.
    pub seconds: f64,
    /// Aggregated value-cache counters across the stream.
    pub cache: dr_core::CacheStats,
    /// Disk-snapshot counters for this process's registry.
    pub snapshot: dr_core::SnapshotStats,
    /// Total value rewrites (identical across processes by construction —
    /// exposed so callers can assert it).
    pub changes: usize,
}

/// Snapshot warm-start ablation (DESIGN.md §4a): repair the same stream of
/// dirty Nobel variants twice, each time through a *fresh*
/// [`CacheRegistry`](dr_core::CacheRegistry) sharing `cache_dir` — the
/// first plays the process that writes the snapshot (cold disk), the
/// second a later process that seeds its value cache from it. Repair
/// outcomes must be identical; the second row's `snapshot.warm_loads` and
/// reduced cache misses are what cross-process persistence buys.
pub fn snapshot_warm_start_ablation(
    cfg: &AblationConfig,
    stream_len: usize,
    cache_dir: &std::path::Path,
) -> Vec<SnapshotWarmStartRow> {
    let world = NobelWorld::generate(cfg.size, cfg.seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let stream: Vec<dr_relation::Relation> = (0..stream_len as u64)
        .map(|i| {
            inject(
                &clean,
                &NoiseSpec::new(cfg.error_rate, cfg.seed ^ (i + 1)).with_excluded(vec![name]),
                &world.semantic_source(),
            )
            .0
        })
        .collect();
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let repairer = FastRepairer::new(&rules);
    let opts = ApplyOptions::default();

    let mut rows = Vec::new();
    for label in ["first process (cold disk)", "second process (disk-warm)"] {
        let registry = Arc::new(dr_core::CacheRegistry::new(
            dr_core::RegistryConfig::default().with_cache_dir(cache_dir),
        ));
        let ctx =
            MatchContext::with_registry(&kb, Arc::clone(&registry)).with_obs_opt(cfg.obs.clone());
        let mut row = SnapshotWarmStartRow {
            config: label.to_owned(),
            relations: stream.len(),
            seconds: 0.0,
            cache: dr_core::CacheStats::default(),
            snapshot: dr_core::SnapshotStats::default(),
            changes: 0,
        };
        for dirty in &stream {
            let mut working = dirty.clone();
            let start = std::time::Instant::now();
            let report = repairer.repair_relation(&ctx, &mut working, &opts);
            row.seconds += start.elapsed().as_secs_f64();
            row.cache += report.cache;
            row.changes += report.total_changes();
        }
        registry.persist();
        row.snapshot = registry.stats().snapshot;
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            size: 200,
            ..Default::default()
        }
    }

    #[test]
    fn normalization_buys_recall_on_typos() {
        let cfg = AblationConfig {
            typo_share: 1.0, // all typos: normalization is the only repair path
            ..tiny()
        };
        let rows = normalization_ablation(&cfg);
        assert_eq!(rows.len(), 2);
        let on = &rows[0];
        let off = &rows[1];
        assert!(
            on.quality.recall > off.quality.recall + 0.2,
            "normalization should dominate on typos: on {:?} vs off {:?}",
            on.quality,
            off.quality
        );
        // Without normalization, typos are never *rewritten*.
        assert_eq!(off.quality.repaired, 0);
    }

    #[test]
    fn detection_flags_unrepairable_errors_without_hurting_precision() {
        let rows = detection_ablation(&tiny());
        let off = &rows[0];
        let on = &rows[1];
        assert_eq!(off.flagged, 0, "default mode never flags");
        assert!(
            on.flagged > 0,
            "a 35%-dropout KB leaves detectable-but-unrepairable errors"
        );
        assert!(on.pos >= off.pos, "detection can only add marks");
        // Repair quality is untouched (detection never rewrites values).
        assert_eq!(on.quality.repaired, off.quality.repaired);
        assert_eq!(on.quality.correct, off.quality.correct);
    }

    #[test]
    fn cache_persistence_is_transparent_and_warm_hits_accumulate() {
        let rows = cache_persistence_ablation(&tiny(), 4);
        assert_eq!(rows.len(), 2);
        let cold = &rows[0];
        let warm = &rows[1];
        // The registry must be invisible to repair outcomes.
        assert_eq!(cold.changes, warm.changes);
        assert!(cold.changes > 0, "stream actually repaired something");
        // Warm-starting converts cold misses into hits: relations 2..n of
        // the stream probe values already cached by their predecessors.
        // (Total hit counts are not comparable across regimes — a miss on an
        // edge probe performs internal node lookups a hit skips — but every
        // repeated-value miss must disappear.)
        assert!(
            warm.cache.misses() < cold.cache.misses(),
            "warm {:?} vs cold {:?}",
            warm.cache,
            cold.cache
        );
        assert!(warm.cache.hits() > 0);
    }

    #[test]
    fn snapshot_warm_start_is_transparent_and_loads_from_disk() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dr-ablation-snap-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create cache dir");

        let rows = snapshot_warm_start_ablation(&tiny(), 3, &dir);
        assert_eq!(rows.len(), 2);
        let first = &rows[0];
        let second = &rows[1];

        // The snapshot must be invisible to repair outcomes.
        assert_eq!(first.changes, second.changes);
        assert!(first.changes > 0, "stream actually repaired something");

        // Process one starts from an empty directory and writes back.
        assert_eq!(first.snapshot.warm_loads, 0, "{:?}", first.snapshot);
        assert_eq!(first.snapshot.cold_loads, 1);
        assert!(first.snapshot.saves >= 1);

        // Process two seeds from disk: a warm load, no rejection, and the
        // imported entries turn the first relation's misses into hits.
        assert_eq!(second.snapshot.warm_loads, 1, "{:?}", second.snapshot);
        assert_eq!(second.snapshot.rejected, 0);
        assert!(
            second.cache.misses() < first.cache.misses(),
            "disk-warm {:?} vs cold {:?}",
            second.cache,
            first.cache
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
