//! # dr-eval — experiment harness
//!
//! Quality metrics (§V-A) and drivers regenerating **every table and
//! figure** of the paper's evaluation:
//!
//! | paper artifact | module / binary |
//! |---|---|
//! | Table II (alignment) | [`exp1::table2`] / `exp_table2` |
//! | Table III (DRs vs KATARA) | [`exp1::table3`] / `exp_table3` |
//! | Fig. 6 (vary error rate) | [`exp2::error_rate_sweep`] / `exp_fig6` |
//! | Fig. 7 (vary typo rate) | [`exp2::typo_rate_sweep`] / `exp_fig7` |
//! | Fig. 8 (efficiency) | [`exp3`] / `exp_fig8` |

#![warn(missing_docs)]

pub mod ablation;
pub mod coverage;
pub mod dumps;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod metrics;
pub mod obsflags;
pub mod report;
pub mod runner;

pub use metrics::{
    evaluate, evaluate_masked, evaluate_per_column, fmt_quality, Quality, RepairExtras,
};
pub use runner::{katara_pattern, run_ccfd, run_drs, run_katara, run_llunatic, DrAlgo, RunOutcome};
