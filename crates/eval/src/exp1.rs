//! Exp-1 (Table III): data annotation and repair accuracy of detective
//! rules vs KATARA on all three datasets × both KBs, plus the Table II
//! alignment statistics.

use crate::metrics::{evaluate, Quality, RepairExtras};
use crate::runner::{katara_pattern, run_drs, run_katara, DrAlgo, RunOutcome};
use dr_baselines::katara::Katara;
use dr_core::graph::schema::{NodeType, SchemaGraph, SchemaNode};
use dr_core::MatchContext;
use dr_datasets::{
    alignment, AlignmentStats, KbFlavor, KbProfile, NobelWorld, UisWorld, WebTablesWorld,
};
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::Relation;
use dr_simmatch::SimFn;

/// Dataset sizes and noise knobs for Exp-1.
#[derive(Debug, Clone)]
pub struct Exp1Config {
    /// Nobel tuple count (paper: 1069).
    pub nobel_size: usize,
    /// UIS tuple count (paper: 100K for Table III's #-POS column).
    pub uis_size: usize,
    /// Injected error rate for Nobel/UIS (paper: 10%).
    pub error_rate: f64,
    /// Master seed.
    pub seed: u64,
    /// Directory for cross-process value-cache snapshots (DESIGN.md §4a).
    /// When set, every DR registry seeds from and persists to it, so a
    /// second run of the same experiment warm-starts from disk. `None`
    /// keeps the caches purely in-memory.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Observability handle (DESIGN.md §4d): when set, every DR
    /// `MatchContext` records into its metric registry and emits sampled
    /// JSONL traces through its tracer. `None` keeps the zero-overhead
    /// path.
    pub obs: Option<std::sync::Arc<dr_obs::Obs>>,
}

impl Default for Exp1Config {
    fn default() -> Self {
        Self {
            nobel_size: dr_datasets::nobel::PAPER_SIZE,
            uis_size: 20_000,
            error_rate: 0.10,
            seed: 17,
            cache_dir: None,
            obs: None,
        }
    }
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Exp1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Method ("DRs" or "KATARA").
    pub method: &'static str,
    /// KB flavor.
    pub kb: KbFlavor,
    /// Quality metrics.
    pub quality: Quality,
    /// #-POS: cells marked positive.
    pub pos: usize,
    /// Repair seconds (extra diagnostic).
    pub seconds: f64,
    /// Value-cache counters (all-zero for KATARA, which has none).
    pub cache: dr_core::CacheStats,
    /// Per-phase repair timings (all-zero for KATARA).
    pub timing: dr_core::PhaseTimings,
    /// Degraded / failed / quarantined counters (all-zero for KATARA and
    /// for fault-free unbounded runs).
    pub resilience: dr_core::ResilienceReport,
    /// Disk-snapshot counters for the row's registry (all-zero for KATARA
    /// and when [`Exp1Config::cache_dir`] is unset).
    pub snapshot: dr_core::SnapshotStats,
}

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// KB flavor.
    pub kb: KbFlavor,
    /// Aligned classes/relationships.
    pub stats: AlignmentStats,
}

/// Computes Table II: aligned classes and relationships per dataset × KB.
pub fn table2(cfg: &Exp1Config) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    let webtables = WebTablesWorld::generate(cfg.seed);
    let nobel = NobelWorld::generate(cfg.nobel_size, cfg.seed);
    let uis = UisWorld::generate(cfg.uis_size.min(5_000), cfg.seed);
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let profile = KbProfile::of(flavor);

        // Alignment is counted on the datasets as evaluated (dirty), so the
        // negative relationships behind the errors are observed too.
        let wt_kb = webtables.kb(&profile);
        let samples: Vec<&Relation> = webtables.tables.iter().map(|t| &t.dirty).collect();
        rows.push(Table2Row {
            dataset: "WebTables",
            kb: flavor,
            stats: dr_datasets::alignment::alignment_many(&wt_kb, &samples, 100),
        });

        let nobel_clean = nobel.clean_relation();
        let nobel_name = nobel_clean.schema().attr_expect("Name");
        let (nobel_dirty, _) = inject(
            &nobel_clean,
            &NoiseSpec::new(cfg.error_rate, cfg.seed ^ 1).with_excluded(vec![nobel_name]),
            &nobel.semantic_source(),
        );
        let nobel_kb = nobel.kb(&profile);
        rows.push(Table2Row {
            dataset: "Nobel",
            kb: flavor,
            stats: alignment(&nobel_kb, &nobel_dirty, 500),
        });

        let uis_clean = uis.clean_relation();
        let uis_name = uis_clean.schema().attr_expect("Name");
        let (uis_dirty, _) = inject(
            &uis_clean,
            &NoiseSpec::new(cfg.error_rate, cfg.seed ^ 2).with_excluded(vec![uis_name]),
            &uis.semantic_source(),
        );
        let uis_kb = uis.kb(&profile);
        rows.push(Table2Row {
            dataset: "UIS",
            kb: flavor,
            stats: alignment(&uis_kb, &uis_dirty, 500),
        });
    }
    rows
}

/// KATARA table patterns for the WebTables corpus: one per domain, built
/// directly from the domain's classes and positive relationship.
fn webtables_katara_patterns(
    world: &WebTablesWorld,
    kb: &dr_kb::KnowledgeBase,
) -> Vec<Option<SchemaGraph>> {
    let schema = WebTablesWorld::schema();
    let entity_col = schema.attr_expect("Entity");
    let value_col = schema.attr_expect("Value");
    world
        .domains
        .iter()
        .map(|domain| {
            let kc = kb.class_named(&domain.key_class)?;
            let vc = kb.class_named(&domain.value_class)?;
            let pos = kb.pred_named(&domain.pos_rel)?;
            let mut g = SchemaGraph::new();
            let key = g.add_node(SchemaNode::new(
                entity_col,
                NodeType::Class(kc),
                SimFn::Equal,
            ));
            let value = g.add_node(SchemaNode::new(
                value_col,
                NodeType::Class(vc),
                SimFn::Equal,
            ));
            g.add_edge(key, value, pos);
            if let Some(sc) = &domain.second {
                let value2_col = WebTablesWorld::schema3().attr_expect("Value2");
                let c2 = kb.class_named(&sc.class)?;
                let pos2 = kb.pred_named(&sc.pos_rel)?;
                let value2 = g.add_node(SchemaNode::new(
                    value2_col,
                    NodeType::Class(c2),
                    SimFn::Equal,
                ));
                g.add_edge(key, value2, pos2);
            }
            Some(g)
        })
        .collect()
}

/// Runs Exp-1 on the WebTables corpus for one KB flavor. Quality counters
/// are aggregated across the 37 tables. The DR runs share one
/// [`CacheRegistry`](dr_core::CacheRegistry), so same-schema tables
/// warm-start from their predecessors' value caches.
fn webtables_rows(cfg: &Exp1Config, flavor: KbFlavor, rows: &mut Vec<Exp1Row>) {
    let world = WebTablesWorld::generate(cfg.seed);
    let profile = KbProfile::of(flavor);
    let kb = world.kb(&profile);
    let mut registry_cfg = dr_core::RegistryConfig::default();
    if let Some(dir) = &cfg.cache_dir {
        registry_cfg = registry_cfg.with_cache_dir(dir);
    }
    let registry = std::sync::Arc::new(dr_core::CacheRegistry::new(registry_cfg));
    let ctx = MatchContext::with_registry(&kb, std::sync::Arc::clone(&registry))
        .with_obs_opt(cfg.obs.clone());
    let rules = world.rules(&kb);
    let katara_patterns = webtables_katara_patterns(&world, &kb);

    let mut dr_totals = (0usize, 0f64, 0usize, 0usize, 0f64); // repaired, correct, errors, pos, secs
    let mut ka_totals = (0usize, 0f64, 0usize, 0usize, 0f64);
    let mut dr_cache = dr_core::CacheStats::default();
    let mut dr_timing = dr_core::PhaseTimings::default();
    let mut dr_resilience = dr_core::ResilienceReport::default();
    for table in &world.tables {
        let table_rules = WebTablesWorld::applicable_rules(&rules, table.dirty.schema().arity());
        let outcome = run_drs(&ctx, &table_rules, &table.clean, &table.dirty, DrAlgo::Fast);
        dr_totals.0 += outcome.quality.repaired;
        dr_totals.1 += outcome.quality.correct;
        dr_totals.2 += outcome.quality.errors;
        dr_totals.3 += outcome.pos_marks;
        dr_totals.4 += outcome.seconds;
        dr_cache += outcome.cache;
        dr_timing += outcome.timing;
        dr_resilience += outcome.resilience;

        if let Some(pattern) = &katara_patterns[table.domain] {
            let katara = Katara::new(&ctx, pattern);
            let mut working = table.dirty.clone();
            let start = std::time::Instant::now();
            let report = katara.clean(&mut working);
            ka_totals.4 += start.elapsed().as_secs_f64();
            let q = evaluate(
                &table.clean,
                &table.dirty,
                &working,
                &RepairExtras::default(),
            );
            ka_totals.0 += q.repaired;
            ka_totals.1 += q.correct;
            ka_totals.2 += q.errors;
            ka_totals.3 += report.marked_positive;
        }
    }
    if cfg.cache_dir.is_some() {
        registry.persist();
    }
    rows.push(Exp1Row {
        dataset: "WebTables",
        method: "DRs",
        kb: flavor,
        quality: quality_from_totals(dr_totals),
        pos: dr_totals.3,
        seconds: dr_totals.4,
        cache: dr_cache,
        timing: dr_timing,
        resilience: dr_resilience,
        snapshot: registry.stats().snapshot,
    });
    rows.push(Exp1Row {
        dataset: "WebTables",
        method: "KATARA",
        kb: flavor,
        quality: quality_from_totals(ka_totals),
        pos: ka_totals.3,
        seconds: ka_totals.4,
        cache: dr_core::CacheStats::default(),
        timing: dr_core::PhaseTimings::default(),
        resilience: dr_core::ResilienceReport::default(),
        snapshot: dr_core::SnapshotStats::default(),
    });
}

fn quality_from_totals(t: (usize, f64, usize, usize, f64)) -> Quality {
    let (repaired, correct, errors, _, _) = t;
    let precision = if repaired == 0 {
        1.0
    } else {
        correct / repaired as f64
    };
    let recall = if errors == 0 {
        1.0
    } else {
        correct / errors as f64
    };
    let f_measure = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Quality {
        precision,
        recall,
        f_measure,
        repaired,
        correct,
        errors,
    }
}

/// Runs Exp-1 on a keyed dataset (Nobel or UIS). With a `cache_dir`, the
/// DR run goes through a snapshot-persisting registry: it seeds from any
/// snapshot a previous process left behind and writes its own back.
#[allow(clippy::too_many_arguments)]
fn keyed_rows(
    dataset: &'static str,
    clean: &Relation,
    dirty: &Relation,
    kb: &dr_kb::KnowledgeBase,
    rules: &[dr_core::DetectiveRule],
    flavor: KbFlavor,
    cache_dir: Option<&std::path::Path>,
    obs: Option<std::sync::Arc<dr_obs::Obs>>,
    rows: &mut Vec<Exp1Row>,
) {
    let registry = cache_dir.map(|dir| {
        std::sync::Arc::new(dr_core::CacheRegistry::new(
            dr_core::RegistryConfig::default().with_cache_dir(dir),
        ))
    });
    let ctx = match &registry {
        Some(reg) => MatchContext::with_registry(kb, std::sync::Arc::clone(reg)),
        None => MatchContext::new(kb),
    }
    .with_obs_opt(obs);
    let outcome = run_drs(&ctx, rules, clean, dirty, DrAlgo::Fast);
    let snapshot = registry
        .as_ref()
        .map(|reg| {
            reg.persist();
            reg.stats().snapshot
        })
        .unwrap_or_default();
    rows.push(Exp1Row {
        dataset,
        method: "DRs",
        kb: flavor,
        quality: outcome.quality,
        pos: outcome.pos_marks,
        seconds: outcome.seconds,
        cache: outcome.cache,
        timing: outcome.timing,
        resilience: outcome.resilience,
        snapshot,
    });
    let pattern = katara_pattern(rules);
    let outcome: RunOutcome = run_katara(&ctx, &pattern, clean, dirty);
    rows.push(Exp1Row {
        dataset,
        method: "KATARA",
        kb: flavor,
        quality: outcome.quality,
        pos: outcome.pos_marks,
        seconds: outcome.seconds,
        cache: outcome.cache,
        timing: outcome.timing,
        resilience: outcome.resilience,
        snapshot: dr_core::SnapshotStats::default(),
    });
}

/// Runs Exp-1 / Table III: all datasets × {DRs, KATARA} × {Yago, DBpedia}.
pub fn table3(cfg: &Exp1Config) -> Vec<Exp1Row> {
    let mut rows = Vec::new();

    let nobel = NobelWorld::generate(cfg.nobel_size, cfg.seed);
    let nobel_clean = nobel.clean_relation();
    let nobel_name = nobel_clean.schema().attr_expect("Name");
    let (nobel_dirty, _) = inject(
        &nobel_clean,
        &NoiseSpec::new(cfg.error_rate, cfg.seed ^ 1).with_excluded(vec![nobel_name]),
        &nobel.semantic_source(),
    );

    let uis = UisWorld::generate(cfg.uis_size, cfg.seed);
    let uis_clean = uis.clean_relation();
    let uis_name = uis_clean.schema().attr_expect("Name");
    let (uis_dirty, _) = inject(
        &uis_clean,
        &NoiseSpec::new(cfg.error_rate, cfg.seed ^ 2).with_excluded(vec![uis_name]),
        &uis.semantic_source(),
    );

    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let profile = KbProfile::of(flavor);
        webtables_rows(cfg, flavor, &mut rows);

        let nobel_kb = nobel.kb(&profile);
        let nobel_rules = NobelWorld::rules(&nobel_kb);
        keyed_rows(
            "Nobel",
            &nobel_clean,
            &nobel_dirty,
            &nobel_kb,
            &nobel_rules,
            flavor,
            cfg.cache_dir.as_deref(),
            cfg.obs.clone(),
            &mut rows,
        );

        let uis_kb = uis.kb(&profile);
        let uis_rules = UisWorld::rules(&uis_kb);
        keyed_rows(
            "UIS",
            &uis_clean,
            &uis_dirty,
            &uis_kb,
            &uis_rules,
            flavor,
            cfg.cache_dir.as_deref(),
            cfg.obs.clone(),
            &mut rows,
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Exp1Config {
        Exp1Config {
            nobel_size: 150,
            uis_size: 200,
            error_rate: 0.10,
            seed: 17,
            cache_dir: None,
            obs: None,
        }
    }

    #[test]
    fn table2_has_six_rows_with_nonzero_alignment() {
        let rows = table2(&small_cfg());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.stats.classes > 0, "{row:?}");
            assert!(row.stats.relationships > 0, "{row:?}");
        }
        // WebTables aligns far more classes than the keyed datasets.
        let wt = rows.iter().find(|r| r.dataset == "WebTables").unwrap();
        let nobel = rows.iter().find(|r| r.dataset == "Nobel").unwrap();
        assert!(wt.stats.classes > nobel.stats.classes);
    }

    /// Two "processes" (two full `table3` runs) sharing a cache directory:
    /// the first run cold-starts and persists snapshots, the second seeds
    /// its registries from disk — with identical quality either way.
    #[test]
    fn table3_second_run_warm_starts_from_shared_cache_dir() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dr-exp1-snap-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create cache dir");
        let cfg = Exp1Config {
            nobel_size: 60,
            uis_size: 80,
            cache_dir: Some(dir.clone()),
            ..small_cfg()
        };

        let first = table3(&cfg);
        let second = table3(&cfg);
        assert_eq!(first.len(), second.len());

        let dr_rows = |rows: &[Exp1Row]| -> Vec<Exp1Row> {
            rows.iter().filter(|r| r.method == "DRs").cloned().collect()
        };
        let (first_dr, second_dr) = (dr_rows(&first), dr_rows(&second));
        for row in &first_dr {
            assert_eq!(
                row.snapshot.warm_loads, 0,
                "{}: first run is cold",
                row.dataset
            );
            assert!(
                row.snapshot.saves >= 1,
                "{}: first run persisted",
                row.dataset
            );
        }
        let warm: u64 = second_dr.iter().map(|r| r.snapshot.warm_loads).sum();
        assert!(warm > 0, "second run seeded from disk: {second_dr:?}");
        let rejected: u64 = second_dr.iter().map(|r| r.snapshot.rejected).sum();
        assert_eq!(rejected, 0, "healthy snapshots are never rejected");

        // Warm-starting is invisible in the reported quality.
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.quality.repaired, b.quality.repaired, "{}", a.dataset);
            assert_eq!(a.quality.correct, b.quality.correct, "{}", a.dataset);
            assert_eq!(a.pos, b.pos, "{}", a.dataset);
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The headline Table III shape: DR precision 1.0 (or near), DR #-POS
    /// far above KATARA's, and KATARA precision below DRs'.
    #[test]
    fn table3_shape_holds_on_small_scale() {
        let rows = table3(&small_cfg());
        assert_eq!(rows.len(), 12);
        for dataset in ["Nobel", "UIS"] {
            for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
                let dr = rows
                    .iter()
                    .find(|r| r.dataset == dataset && r.method == "DRs" && r.kb == flavor)
                    .unwrap();
                let ka = rows
                    .iter()
                    .find(|r| r.dataset == dataset && r.method == "KATARA" && r.kb == flavor)
                    .unwrap();
                assert!(
                    dr.quality.precision > 0.95,
                    "{dataset}/{flavor:?} DR precision {:?}",
                    dr.quality
                );
                assert!(
                    dr.quality.precision >= ka.quality.precision,
                    "{dataset}/{flavor:?}: DR ({}) vs KATARA ({})",
                    dr.quality.precision,
                    ka.quality.precision
                );
                assert!(
                    dr.pos > ka.pos,
                    "{dataset}/{flavor:?}: DR #-POS {} vs KATARA {}",
                    dr.pos,
                    ka.pos
                );
            }
        }
    }
}
