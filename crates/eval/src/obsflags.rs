//! CLI plumbing for the observability layer (DESIGN.md §4d): parses the
//! shared `--metrics` / `--trace` flags, builds the
//! [`Obs`](dr_obs::Obs) handle experiment configs thread into their
//! [`MatchContext`](dr_core::MatchContext)s, and on
//! [`finish`](ObsCli::finish) writes the Prometheus-style `metrics.prom`
//! dump and prints the human summary table.
//!
//! Flags (accepted by `exp_table3`, `exp_fig8`, and `exp_ablation`):
//!
//! * `--metrics` — record metrics; on exit write `metrics.prom` (override
//!   the path with `--metrics-out <path>`) and print a summary table.
//! * `--trace <path>` — emit sampled JSONL repair traces to `<path>`.
//! * `--trace-sample <rate>` — tuple sampling rate in `[0, 1]`
//!   (default `1.0`; relation-level events are always emitted).
//! * `--trace-seed <seed>` — sampler seed (default `42`); the same seed
//!   and rate reproduce the same sampled row set.

use dr_obs::{MetricsSnapshot, Obs, Sampler, Tracer};
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed observability flags plus the live [`Obs`] handle (when any flag
/// enabled it).
pub struct ObsCli {
    /// Handle to clone into experiment configs; `None` when neither
    /// `--metrics` nor `--trace` was given (zero-overhead path).
    pub obs: Option<Arc<Obs>>,
    metrics: bool,
    metrics_out: PathBuf,
    trace_path: Option<PathBuf>,
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

impl ObsCli {
    /// Parses the observability flags out of `args` (the full argv).
    ///
    /// Panics with a usage message on malformed values — these are
    /// operator-facing binaries, not a library API.
    pub fn from_args(args: &[String]) -> Self {
        let metrics = args.iter().any(|a| a == "--metrics");
        let metrics_out = flag_value(args, "--metrics-out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("metrics.prom"));
        let trace_path = flag_value(args, "--trace").map(PathBuf::from);
        let sample: f64 = flag_value(args, "--trace-sample")
            .map(|v| v.parse().expect("--trace-sample takes a rate in [0, 1]"))
            .unwrap_or(1.0);
        let seed: u64 = flag_value(args, "--trace-seed")
            .map(|v| v.parse().expect("--trace-seed takes an integer"))
            .unwrap_or(42);

        let obs = if metrics || trace_path.is_some() {
            let obs = match &trace_path {
                Some(path) => {
                    let file = std::fs::File::create(path)
                        .unwrap_or_else(|e| panic!("cannot create trace file {path:?}: {e}"));
                    Obs::with_tracer(Tracer::new(
                        Box::new(std::io::BufWriter::new(file)),
                        Sampler::new(seed, sample),
                    ))
                }
                None => Obs::new(),
            };
            Some(Arc::new(obs))
        } else {
            None
        };
        Self {
            obs,
            metrics,
            metrics_out,
            trace_path,
        }
    }

    /// Finalizes the run: flushes the trace sink, writes `metrics.prom`,
    /// and prints the human-readable metrics summary. Call once, after the
    /// experiment finished.
    pub fn finish(&self) {
        let Some(obs) = &self.obs else { return };
        if let Some(tracer) = obs.tracer() {
            tracer.flush();
        }
        if let Some(path) = &self.trace_path {
            eprintln!("trace written to {}", path.display());
        }
        if self.metrics {
            let snap = obs.metrics().snapshot();
            std::fs::write(&self.metrics_out, snap.render_prom())
                .unwrap_or_else(|e| panic!("cannot write {:?}: {e}", self.metrics_out));
            println!("{}", crate::report::metrics_summary(&snap));
            println!("metrics written to {}", self.metrics_out.display());
        }
    }

    /// The snapshot of the attached registry, if metrics are on (tests).
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.obs.as_ref().map(|o| o.metrics().snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn no_flags_means_no_obs() {
        let cli = ObsCli::from_args(&argv(&["exp", "--quick"]));
        assert!(cli.obs.is_none());
        cli.finish(); // no-op
    }

    #[test]
    fn metrics_flag_builds_registry_without_tracer() {
        let cli = ObsCli::from_args(&argv(&["exp", "--metrics"]));
        let obs = cli.obs.as_ref().expect("obs enabled");
        assert!(obs.tracer().is_none());
        assert!(cli.snapshot().is_some());
    }

    #[test]
    fn trace_flag_builds_tracer_and_writes_file() {
        let dir = std::env::temp_dir().join(format!("dr-obsflags-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let cli = ObsCli::from_args(&argv(&[
            "exp",
            "--trace",
            path.to_str().unwrap(),
            "--trace-sample",
            "0.5",
            "--trace-seed",
            "7",
        ]));
        let obs = cli.obs.as_ref().expect("obs enabled");
        obs.tracer()
            .expect("tracer attached")
            .emit("{\"ev\":\"x\"}".to_owned());
        cli.finish();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ev\":\"x\"}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
