//! Acceptance test for the observability layer (DESIGN.md §4d): a
//! `table3` run with `--metrics` semantics produces counter totals that
//! reconcile EXACTLY with the report columns the table prints — the
//! `res d/f/q/r` resilience cells and the `snap w/c/r/s` snapshot cells.
//! There is no second bookkeeping path to drift: the report counters and
//! the metric cells are the same storage.

use dr_eval::exp1::{table3, Exp1Config};
use dr_obs::{MetricsSnapshot, Obs};
use std::sync::Arc;

fn outcome_total(snap: &MetricsSnapshot, outcome: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|c| {
            c.name == "repair_tuples_total" && c.labels.contains(&format!("outcome=\"{outcome}\""))
        })
        .map(|c| c.value)
        .sum()
}

#[test]
fn table3_metrics_reconcile_with_report_columns() {
    let dir = std::env::temp_dir().join(format!("dr-obs-reconcile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let obs = Arc::new(Obs::new());
    let cfg = Exp1Config {
        nobel_size: 120,
        uis_size: 150,
        error_rate: 0.10,
        seed: 17,
        cache_dir: Some(dir.clone()),
        obs: Some(Arc::clone(&obs)),
    };
    let rows = table3(&cfg);
    std::fs::remove_dir_all(&dir).ok();
    let snap = obs.metrics().snapshot();

    // Resilience columns (`res d/f/q/r`): summed over every row — KATARA
    // rows are all-zero by construction, DR rows carry the real counters.
    let degraded: u64 = rows.iter().map(|r| r.resilience.degraded as u64).sum();
    let failed: u64 = rows.iter().map(|r| r.resilience.failed as u64).sum();
    let quarantined: u64 = rows.iter().map(|r| r.resilience.quarantined as u64).sum();
    let retried: u64 = rows.iter().map(|r| r.resilience.retried as u64).sum();
    assert_eq!(outcome_total(&snap, "degraded"), degraded);
    assert_eq!(outcome_total(&snap, "failed"), failed);
    assert_eq!(snap.counter_total("repair_quarantined_total"), quarantined);
    assert_eq!(snap.counter_total("repair_retries_total"), retried);

    // Snapshot columns (`snap w/c/r/s`): every registry the run built is
    // registered into the same metric store, so the lifetime totals match
    // the per-row sums exactly.
    let warm: u64 = rows.iter().map(|r| r.snapshot.warm_loads).sum();
    let cold: u64 = rows.iter().map(|r| r.snapshot.cold_loads).sum();
    let rejected: u64 = rows.iter().map(|r| r.snapshot.rejected).sum();
    let saves: u64 = rows.iter().map(|r| r.snapshot.saves).sum();
    assert_eq!(snap.counter_total("snapshot_warm_loads_total"), warm);
    assert_eq!(snap.counter_total("snapshot_cold_loads_total"), cold);
    assert_eq!(snap.counter_total("snapshot_rejected_total"), rejected);
    assert_eq!(snap.counter_total("snapshot_saves_total"), saves);
    assert!(saves >= 1, "a cache-dir run persists snapshots");

    // The run repaired real tuples and timed its phases.
    assert!(snap.counter_total("repair_tuples_total") > 0);
    let repair_nanos = snap
        .counter("repair_phase_seconds", "phase=\"repair\"")
        .unwrap_or(0);
    assert!(repair_nanos > 0, "repair phase time recorded");

    // And the Prometheus rendering carries the same families the CI leg
    // greps for.
    let prom = snap.render_prom();
    assert!(prom.contains("repair_phase_seconds"));
    assert!(prom.contains("repair_tuples_total"));
    assert!(prom.contains("snapshot_saves_total"));
}
