//! Acceptance test for the observability layer (DESIGN.md §4d): a
//! `table3` run with `--metrics` semantics produces counter totals that
//! reconcile EXACTLY with the report columns the table prints — the
//! `res d/f/q/r` resilience cells and the `snap w/c/r/s` snapshot cells.
//! There is no second bookkeeping path to drift: the report counters and
//! the metric cells are the same storage.

use dr_eval::exp1::{table3, Exp1Config};
use dr_obs::{MetricsSnapshot, Obs};
use std::sync::Arc;

fn outcome_total(snap: &MetricsSnapshot, outcome: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|c| {
            c.name == "repair_tuples_total" && c.labels.contains(&format!("outcome=\"{outcome}\""))
        })
        .map(|c| c.value)
        .sum()
}

#[test]
fn table3_metrics_reconcile_with_report_columns() {
    let dir = std::env::temp_dir().join(format!("dr-obs-reconcile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let obs = Arc::new(Obs::new());
    let cfg = Exp1Config {
        nobel_size: 120,
        uis_size: 150,
        error_rate: 0.10,
        seed: 17,
        cache_dir: Some(dir.clone()),
        obs: Some(Arc::clone(&obs)),
    };
    let rows = table3(&cfg);
    std::fs::remove_dir_all(&dir).ok();
    let snap = obs.metrics().snapshot();

    // Resilience columns (`res d/f/q/r`): summed over every row — KATARA
    // rows are all-zero by construction, DR rows carry the real counters.
    let degraded: u64 = rows.iter().map(|r| r.resilience.degraded as u64).sum();
    let failed: u64 = rows.iter().map(|r| r.resilience.failed as u64).sum();
    let quarantined: u64 = rows.iter().map(|r| r.resilience.quarantined as u64).sum();
    let retried: u64 = rows.iter().map(|r| r.resilience.retried as u64).sum();
    assert_eq!(outcome_total(&snap, "degraded"), degraded);
    assert_eq!(outcome_total(&snap, "failed"), failed);
    assert_eq!(snap.counter_total("repair_quarantined_total"), quarantined);
    assert_eq!(snap.counter_total("repair_retries_total"), retried);

    // Snapshot columns (`snap w/c/r/s`): every registry the run built is
    // registered into the same metric store, so the lifetime totals match
    // the per-row sums exactly.
    let warm: u64 = rows.iter().map(|r| r.snapshot.warm_loads).sum();
    let cold: u64 = rows.iter().map(|r| r.snapshot.cold_loads).sum();
    let rejected: u64 = rows.iter().map(|r| r.snapshot.rejected).sum();
    let saves: u64 = rows.iter().map(|r| r.snapshot.saves).sum();
    assert_eq!(snap.counter_total("snapshot_warm_loads_total"), warm);
    assert_eq!(snap.counter_total("snapshot_cold_loads_total"), cold);
    assert_eq!(snap.counter_total("snapshot_rejected_total"), rejected);
    assert_eq!(snap.counter_total("snapshot_saves_total"), saves);
    assert!(saves >= 1, "a cache-dir run persists snapshots");

    // The run repaired real tuples and timed its phases.
    assert!(snap.counter_total("repair_tuples_total") > 0);
    let repair_nanos = snap
        .counter("repair_phase_seconds", "phase=\"repair\"")
        .unwrap_or(0);
    assert!(repair_nanos > 0, "repair phase time recorded");

    // And the Prometheus rendering carries the same families the CI leg
    // greps for.
    let prom = snap.render_prom();
    assert!(prom.contains("repair_phase_seconds"));
    assert!(prom.contains("repair_tuples_total"));
    assert!(prom.contains("snapshot_saves_total"));
}

/// The same reconciliation discipline on a run that actually *faults*:
/// injected panics force the retry pass and per-row failure isolation,
/// and the metric totals must still mirror the stitched report exactly —
/// no double-recording on the retry path (`--features fault-injection`).
#[cfg(feature = "fault-injection")]
mod faulted {
    use super::outcome_total;
    use dr_core::fixtures::{figure4_rules, nobel_schema, table1_dirty};
    use dr_core::repair::fault::silence_injected_panics;
    use dr_core::{
        parallel_repair, Fault, FaultPlan, FaultSpec, MatchContext, ParallelOptions, TupleOutcome,
    };
    use dr_obs::Obs;
    use dr_relation::Relation;
    use std::sync::Arc;

    #[test]
    fn faulted_retry_run_reconciles_metrics_with_report() {
        silence_injected_panics();
        let kb = dr_kb::fixtures::nobel_mini_kb();
        let rules = figure4_rules(&kb);

        // Table I stacked to 80 rows.
        let base = table1_dirty();
        let mut relation = Relation::new(nobel_schema());
        for _ in 0..20 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }
        let rows = relation.len();

        // ~20% of rows panic once and heal on retry; rows 1 and 5 have a
        // deterministic bug that panics on the retry too.
        let plan = FaultPlan::seeded(0xC0FFEE, rows, FaultSpec::panics_once(0.20))
            .with_fault(1, Fault::Panic)
            .with_fault(5, Fault::Panic);
        let healing = plan.healing_rows().len() as u64;
        assert!(healing > 0, "seeded plan must exercise the retry pass");

        let obs = Arc::new(Obs::new());
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));
        let opts = ParallelOptions {
            threads: 4,
            fault_plan: Some(Arc::new(plan)),
            ..Default::default()
        };
        let report = parallel_repair(&ctx, &rules, &mut relation, &opts);
        let snap = obs.metrics().snapshot();

        // Outcome counters mirror the report, and every row is accounted
        // for exactly once despite the retry pass re-running rows.
        let completed = report
            .tuples
            .iter()
            .filter(|t| t.outcome.is_completed())
            .count() as u64;
        assert_eq!(outcome_total(&snap, "completed"), completed);
        assert_eq!(
            outcome_total(&snap, "degraded"),
            report.resilience.degraded as u64
        );
        assert_eq!(
            outcome_total(&snap, "failed"),
            report.resilience.failed as u64
        );
        assert_eq!(
            snap.counter_total("repair_tuples_total"),
            rows as u64,
            "every row counted exactly once"
        );

        // The retry path really ran (healed rows) and really failed rows
        // 1 and 5, and the counters carry exactly the report's numbers.
        assert!(report.resilience.retried as u64 >= healing.min(1));
        assert!(
            matches!(report.tuples[1].outcome, TupleOutcome::Failed { .. })
                && matches!(report.tuples[5].outcome, TupleOutcome::Failed { .. })
        );
        assert_eq!(
            snap.counter_total("repair_retries_total"),
            report.resilience.retried as u64
        );

        // Rule applications: the per-rule counters sum to the steps the
        // report carries (retried rows contribute their final attempt
        // only).
        let steps: u64 = report.tuples.iter().map(|t| t.steps.len() as u64).sum();
        assert_eq!(snap.counter_total("repair_rules_applied_total"), steps);

        // Per-tuple latency histogram: failed rows never record (a
        // panicked attempt unwinds before the sample, and a failed retry
        // is excluded), so count == completed + degraded.
        let tuple_hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "repair_tuple_seconds")
            .expect("repair_tuple_seconds recorded");
        assert_eq!(
            tuple_hist.count,
            completed + report.resilience.degraded as u64,
            "histogram count == completed + degraded (no Failed samples, no retry double-records)"
        );

        // Scheduler accounting: the retry pass claims its rows through
        // the same counters, so claims == rows + retried.
        assert_eq!(
            snap.counter_total("scheduler_rows_claimed_total"),
            rows as u64 + report.resilience.retried as u64
        );
    }
}
