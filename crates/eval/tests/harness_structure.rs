//! Structural tests for the experiment harness: every driver emits the
//! series its figure requires, with sane values.

use dr_eval::exp1::{table2, table3, Exp1Config};
use dr_eval::exp2::{error_rate_sweep, typo_rate_sweep, Exp2Config, SweepDataset};
use dr_eval::exp3::{keyed_rule_sweep, webtables_rule_sweep, Exp3Config};
use dr_eval::DrAlgo;

fn tiny1() -> Exp1Config {
    Exp1Config {
        nobel_size: 120,
        uis_size: 150,
        error_rate: 0.10,
        seed: 17,
        cache_dir: None,
        obs: None,
    }
}

#[test]
fn table_drivers_emit_complete_grids() {
    let rows = table2(&tiny1());
    // 3 datasets × 2 KBs.
    assert_eq!(rows.len(), 6);

    let rows = table3(&tiny1());
    // 3 datasets × 2 methods × 2 KBs.
    assert_eq!(rows.len(), 12);
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.quality.precision), "{row:?}");
        assert!((0.0..=1.0).contains(&row.quality.recall), "{row:?}");
        assert!(row.seconds >= 0.0);
    }
}

#[test]
fn sweep_drivers_emit_every_series_at_every_point() {
    let cfg = Exp2Config {
        size: 150,
        seed: 23,
        dr_algo: DrAlgo::Fast,
    };
    let xs = [0.05, 0.15];
    for points in [
        error_rate_sweep(SweepDataset::Nobel, &xs, &cfg),
        typo_rate_sweep(SweepDataset::Nobel, &xs, &cfg),
    ] {
        assert_eq!(points.len(), xs.len() * 4);
        for &x in &xs {
            let methods: Vec<&str> = points
                .iter()
                .filter(|p| p.x == x)
                .map(|p| p.method.as_str())
                .collect();
            assert_eq!(methods.len(), 4, "at x={x}: {methods:?}");
            assert!(methods.iter().any(|m| m.contains("Yago")));
            assert!(methods.iter().any(|m| m.contains("DBpedia")));
            assert!(methods.contains(&"Llunatic"));
            assert!(methods.contains(&"constant CFDs"));
        }
    }
}

#[test]
fn timing_drivers_cover_both_algorithms() {
    let cfg = Exp3Config {
        nobel_size: 100,
        uis_size: 120,
        error_rate: 0.10,
        seed: 41,
        obs: None,
    };
    let points = webtables_rule_sweep(&[10], &cfg);
    assert_eq!(points.len(), 4); // 2 algos × 2 KBs
    let points = keyed_rule_sweep(SweepDataset::Nobel, &[2, 5], &cfg);
    assert_eq!(points.len(), 8); // 2 counts × 2 algos × 2 KBs
    for p in &points {
        assert!(p.seconds >= 0.0);
        assert!(p.method.starts_with("bRepair") || p.method.starts_with("fRepair"));
    }
}
