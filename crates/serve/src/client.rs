//! A minimal blocking HTTP/1.1 client for the load generator, the chaos
//! harness, the CI smoke leg, and the integration tests — enough to talk
//! to `dr-serve` (fixed-length and chunked responses, one-shot
//! `connection: close` requests and persistent keep-alive
//! [`Connection`]s), nothing more.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::http::IO_TIMEOUT;

/// A decoded response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The fully decoded body (chunked framing already stripped).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response. `body` may be empty for
/// GETs; `content_type` is only sent alongside a non-empty body.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    target: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    write_request(&mut stream, method, target, content_type, body, false)?;
    read_response(&mut BufReader::new(stream))
}

/// Convenience GET.
pub fn get(addr: impl ToSocketAddrs, target: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", target, "", &[])
}

/// A persistent keep-alive connection: many requests over one socket.
///
/// Each [`request`](Self::request) sends `connection: keep-alive` and
/// decodes exactly one framed response, leaving the socket ready for the
/// next request — the client-side half of the server's keep-alive loop,
/// used by the chaos harness to prove sockets are actually reused.
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Opens a connection with the default I/O timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Sends one request on the open socket and reads its response. An
    /// `Err` means the connection is no longer usable (the server closed
    /// it, timed it out, or the response was malformed).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        write_request(&mut self.stream, method, target, content_type, body, true)?;
        read_response(&mut self.reader)
    }

    /// Convenience GET on the open socket.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", target, "", &[])
    }
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(stream, "{method} {target} HTTP/1.1\r\nhost: dr-serve\r\n")?;
    if !body.is_empty() {
        write!(
            stream,
            "content-type: {content_type}\r\ncontent-length: {}\r\n",
            body.len()
        )?;
    }
    write!(
        stream,
        "connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    stream.write_all(body)?;
    stream.flush()
}

fn invalid(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// Reads one framed response off `reader`, leaving any bytes after it (the
/// next keep-alive response) unread.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<ClientResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line {status_line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked(reader)?
    } else if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let len: usize = v
            .parse()
            .map_err(|_| invalid(format!("bad content-length {v:?}")))?;
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        body
    } else {
        // `connection: close` with no framing: read to EOF.
        let mut body = Vec::new();
        reader.read_to_end(&mut body)?;
        body
    };

    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

fn read_chunked(reader: &mut BufReader<TcpStream>) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(invalid("connection closed mid-chunk-size"));
        }
        // Chunk extensions (`;...`) are allowed by the grammar; ignore them.
        let size_field = size_line
            .trim_end()
            .split(';')
            .next()
            .unwrap_or_default()
            .trim();
        let size = usize::from_str_radix(size_field, 16)
            .map_err(|_| invalid(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            // Trailer section (we send none) ends with an empty line.
            let mut trailer = String::new();
            while reader.read_line(&mut trailer)? > 0 && !trailer.trim_end().is_empty() {
                trailer.clear();
            }
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(invalid("chunk not terminated by CRLF"));
        }
    }
}
