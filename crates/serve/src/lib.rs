//! # dr-serve — repair-as-a-service
//!
//! A long-lived HTTP server over the repair pipeline (DESIGN.md §5): named
//! knowledge bases are loaded once at startup — match indexes prewarmed,
//! value caches created through the shared [`CacheRegistry`] so `.drsnap`
//! snapshots warm-load at boot — and every request then repairs an
//! uploaded relation against them, streaming repaired tuples with per-cell
//! provenance back as NDJSON.
//!
//! The build environment is fully offline (no tokio/hyper), so the wire
//! layer is a hand-rolled HTTP/1.1 subset over `std::net` with a
//! thread-per-connection accept pool. That is a deliberate fit, not a
//! compromise: each repair request fans out over the work-stealing
//! parallel repairer, so the connection thread is a coordinator that
//! spends its life blocked on compute, and a handful of them saturate the
//! machine.
//!
//! On top of the pipeline sits the survival layer (DESIGN.md §9):
//! admission control sheds excess repair load with `429 Retry-After`
//! instead of queueing it unboundedly ([`admission`]), connections are
//! keep-alive with idle timeouts and per-connection request caps, each
//! KB carries a health breaker that fails fast when repairs keep failing,
//! and [`Server::drain`] turns SIGTERM into a graceful exit: `/readyz`
//! goes 503, accepting stops, in-flight streams finish under a deadline,
//! and `.drsnap` snapshots are flushed.
//!
//! Endpoints:
//!
//! | route                  | method | body                                |
//! |------------------------|--------|-------------------------------------|
//! | `/healthz`             | GET    | liveness + uptime                   |
//! | `/readyz`              | GET    | readiness (503 while draining)      |
//! | `/kbs`                 | GET    | served KBs, schemas, generations, health |
//! | `/metrics`             | GET    | live Prometheus text                |
//! | `/v1/repair/{kb}`      | POST   | CSV or JSON relation → NDJSON repair stream |
//! | `/v1/kbs/{kb}/delta`   | POST   | TSV KB delta → next generation (incremental cache invalidation) |
//! | `/v1/kbs/{kb}`         | DELETE | unload the KB (404 afterwards, memory released) |
//! | `/v1/traces`           | GET    | tail-sampled trace index (id, route, duration, why kept) |
//! | `/v1/traces/{id}`      | GET    | one retained trace's full span tree (feed to `dr_traceview`) |
//!
//! Repair requests are armed with a live span capture (DESIGN.md §11):
//! the root `request` span forks through [`MatchContext::fork`] into the
//! scheduler's per-row spans and down to per-rule checks, and tail
//! sampling keeps the capture only when it was forced (`?trace=1`), the
//! request errored or degraded, or it crossed the slow threshold. A
//! `traceparent` request header adopts the caller's trace id.
//!
//! [`CacheRegistry`]: dr_core::CacheRegistry
//! [`MatchContext::fork`]: dr_core::MatchContext::fork

#![warn(missing_docs)]
// Resilience hygiene (DESIGN.md §4c): library code must surface failures
// as typed errors, not panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod admission;
pub mod client;
pub mod handlers;
pub mod http;
pub mod state;

use std::io::BufReader;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::AcceptBackoff;

pub use admission::{Admission, AdmissionConfig, AdmissionGate, Permit, ShedReason};
pub use handlers::{handle, Body, Response};
pub use state::{
    build_state, Breaker, DeltaApplyError, DeltaOutcome, ImageFamily, KbCore, KbEntry, KbSpec,
    Lifecycle, OwnedKb, RequestTrace, ServeConfig, ServerState,
};

/// A bound, running server: a shared listener drained by a fixed pool of
/// acceptor threads, each serving one connection at a time end to end.
pub struct Server {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port) and starts `http_threads`
    /// acceptors (minimum 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        state: ServerState,
        http_threads: usize,
    ) -> std::io::Result<Server> {
        let listener = Arc::new(TcpListener::bind(addr)?);
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::new();
        for i in 0..http_threads.max(1) {
            let listener = Arc::clone(&listener);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dr-serve-http-{i}"))
                    .spawn(move || {
                        let mut backoff = AcceptBackoff::new();
                        while !shutdown.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((stream, _peer)) => {
                                    backoff.on_success();
                                    serve_connection(&state, &shutdown, stream);
                                }
                                Err(_) if shutdown.load(Ordering::Acquire) => break,
                                Err(e) => {
                                    // Transient accept failures (EMFILE,
                                    // ECONNABORTED, ...) must not busy-spin
                                    // the acceptor: back off, and log once
                                    // per error streak.
                                    let (delay, log) = backoff.on_error();
                                    if log {
                                        eprintln!("dr-serve: accept error (backing off): {e}");
                                    }
                                    std::thread::sleep(delay);
                                }
                            }
                        }
                    })?,
            );
        }

        drop(listener); // each worker holds its own Arc
        Ok(Server {
            state,
            addr,
            shutdown,
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (for in-process inspection in tests and the load
    /// generator).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Blocks until every acceptor exits (i.e. until [`shutdown`]
    /// (Self::shutdown) is called from another thread, or never).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Asks the acceptors to stop and unblocks them with a self-connect.
    /// Idempotent; in-flight requests finish first.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // `accept` has no timeout; poke each blocked acceptor awake.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Graceful drain (DESIGN.md §9): flips `/readyz` to 503 and refuses
    /// new repairs, stops accepting, waits up to `deadline` for in-flight
    /// requests to finish, then flushes `.drsnap` snapshots. Returns
    /// whether every in-flight request completed within the deadline.
    ///
    /// Keep-alive connections close after their current response (the
    /// connection loop checks the drain flag), so an idle connection never
    /// holds the drain hostage; a *streaming* response runs to completion
    /// because the client paid for those bytes.
    pub fn drain(&self, deadline: Duration) -> bool {
        self.state.lifecycle.begin_drain();
        self.shutdown();
        let started = Instant::now();
        while self.state.lifecycle.active() > 0 && started.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let drained = self.state.lifecycle.active() == 0;
        // Flush snapshots even on a missed deadline: whatever finished is
        // worth keeping, and persist() publishes atomically.
        self.state.registry.persist();
        drained
    }
}

/// Serves one connection: a keep-alive loop of parse → handle → serialize,
/// until the client closes, asks to close, idles out, hits the
/// per-connection request cap, or the server starts draining.
fn serve_connection(state: &ServerState, shutdown: &AtomicBool, mut stream: TcpStream) {
    let metrics = state.obs.metrics();
    metrics.counter("serve_connections_total", &[]).inc();
    stream.set_write_timeout(Some(http::IO_TIMEOUT)).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut served = 0usize;

    loop {
        // First request: the client connected to talk, give it the full
        // header window. Later requests: an idle keep-alive connection
        // only ties up this acceptor, so time out sooner.
        let read_timeout = if served == 0 {
            state.config.header_timeout
        } else {
            state.config.idle_timeout
        };
        stream.set_read_timeout(Some(read_timeout)).ok();

        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // probe, clean close, or idle timeout
            Err(e) => {
                let _ = http::write_response(
                    &mut stream,
                    e.status,
                    "application/json",
                    format!("{{\"error\":{:?}}}", e.message).as_bytes(),
                    false,
                    &[],
                );
                return;
            }
        };
        served += 1;
        if served > 1 {
            metrics.counter("serve_keepalive_reuse_total", &[]).inc();
        }

        let _active = state.lifecycle.track();
        let response = handlers::handle(state, &request);
        let cap = state.config.max_requests_per_conn;
        let keep_alive = request.wants_keep_alive()
            && (cap == 0 || served < cap)
            && !state.lifecycle.is_draining()
            && !shutdown.load(Ordering::Acquire);
        let result = match &response.body {
            Body::Full(bytes) => http::write_response(
                &mut stream,
                response.status,
                response.content_type,
                bytes,
                keep_alive,
                &response.headers,
            ),
            Body::Lines(lines) => (|| {
                let mut chunked = http::ChunkedResponse::begin(
                    &mut stream,
                    response.status,
                    response.content_type,
                    keep_alive,
                    &response.headers,
                )?;
                for line in lines {
                    let mut framed = Vec::with_capacity(line.len() + 1);
                    framed.extend_from_slice(line.as_bytes());
                    framed.push(b'\n');
                    chunked.chunk(&framed)?;
                }
                chunked.finish()
            })(),
        };
        if let Err(_e) = result {
            // A client hanging up mid-stream is its business; count it,
            // close, and this worker moves on to the next connection.
            metrics.counter("serve_client_disconnect_total", &[]).inc();
            return;
        }
        if !keep_alive {
            return;
        }
    }
}
