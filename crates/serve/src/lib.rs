//! # dr-serve — repair-as-a-service
//!
//! A long-lived HTTP server over the repair pipeline (DESIGN.md §5): named
//! knowledge bases are loaded once at startup — match indexes prewarmed,
//! value caches created through the shared [`CacheRegistry`] so `.drsnap`
//! snapshots warm-load at boot — and every request then repairs an
//! uploaded relation against them, streaming repaired tuples with per-cell
//! provenance back as NDJSON.
//!
//! The build environment is fully offline (no tokio/hyper), so the wire
//! layer is a hand-rolled HTTP/1.1 subset over `std::net` with a
//! thread-per-connection accept pool. That is a deliberate fit, not a
//! compromise: each repair request fans out over the work-stealing
//! parallel repairer, so the connection thread is a coordinator that
//! spends its life blocked on compute, and a handful of them saturate the
//! machine.
//!
//! Endpoints:
//!
//! | route                  | method | body                                |
//! |------------------------|--------|-------------------------------------|
//! | `/healthz`             | GET    | liveness + uptime                   |
//! | `/kbs`                 | GET    | served KBs, schemas, rule counts    |
//! | `/metrics`             | GET    | live Prometheus text                |
//! | `/v1/repair/{kb}`      | POST   | CSV or JSON relation → NDJSON repair stream |
//!
//! [`CacheRegistry`]: dr_core::CacheRegistry

#![warn(missing_docs)]
// Resilience hygiene (DESIGN.md §4c): library code must surface failures
// as typed errors, not panics.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod handlers;
pub mod http;
pub mod state;

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub use handlers::{handle, Body, Response};
pub use state::{build_state, ImageFamily, KbEntry, KbSpec, ServeConfig, ServerState};

/// A bound, running server: a shared listener drained by a fixed pool of
/// acceptor threads, each serving one connection at a time end to end.
pub struct Server {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port) and starts `http_threads`
    /// acceptors (minimum 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        state: ServerState,
        http_threads: usize,
    ) -> std::io::Result<Server> {
        let listener = Arc::new(TcpListener::bind(addr)?);
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::new();
        for i in 0..http_threads.max(1) {
            let listener = Arc::clone(&listener);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dr-serve-http-{i}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match listener.accept() {
                                Ok((stream, _peer)) => serve_connection(&state, stream),
                                Err(_) if shutdown.load(Ordering::Acquire) => break,
                                Err(_) => continue,
                            }
                        }
                    })?,
            );
        }

        drop(listener); // each worker holds its own Arc
        Ok(Server {
            state,
            addr,
            shutdown,
            workers,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (for in-process inspection in tests and the load
    /// generator).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Blocks until every acceptor exits (i.e. until [`shutdown`]
    /// (Self::shutdown) is called from another thread, or never).
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Asks the acceptors to stop and unblocks them with a self-connect.
    /// Idempotent; in-flight requests finish first.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // `accept` has no timeout; poke each blocked acceptor awake.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Serves one connection: parse, handle, serialize, close.
fn serve_connection(state: &ServerState, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return, // health probes connect and close
        Err(e) => {
            let _ = http::write_response(
                &mut stream,
                e.status,
                "application/json",
                format!("{{\"error\":{:?}}}", e.message).as_bytes(),
            );
            return;
        }
    };
    let response = handlers::handle(state, &request);
    let result = match &response.body {
        Body::Full(bytes) => {
            http::write_response(&mut stream, response.status, response.content_type, bytes)
        }
        Body::Lines(lines) => (|| {
            let mut chunked =
                http::ChunkedResponse::begin(&mut stream, response.status, response.content_type)?;
            for line in lines {
                let mut framed = Vec::with_capacity(line.len() + 1);
                framed.extend_from_slice(line.as_bytes());
                framed.push(b'\n');
                chunked.chunk(&framed)?;
            }
            chunked.finish()
        })(),
    };
    // A client hanging up mid-stream is its business, not ours.
    let _ = result;
}
