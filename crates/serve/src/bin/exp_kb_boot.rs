//! `exp_kb_boot` — KB boot-time comparison: in-memory build vs mmap image.
//!
//! Builds each requested KB twice through `build_state` — once from the
//! in-memory spec (`--kb` path: generate/parse + index construction) and
//! once from a freshly packed `.drkb` image (`--kb-image` path: mmap open,
//! no parsing) — and prints the server's own `kb_load_seconds{backend=...}`
//! histogram lines, so the numbers reported are exactly what `/metrics`
//! would export. Repeats each boot `--iters` times to smooth noise.
//!
//! ```text
//! exp_kb_boot --kb-size 400 --seed 7 --iters 5
//! ```
//!
//! Output is greppable: one `kb_load_seconds` line per backend plus a
//! human summary per KB.

use std::sync::Arc;
use std::time::Instant;

use dr_core::RegistryConfig;
use dr_obs::Obs;
use dr_serve::{build_state, ImageFamily, KbSpec, ServeConfig};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("exp_kb_boot: bad value {v:?} for {name}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

/// Boots one spec through `build_state` and returns wall-clock seconds.
/// The obs registry is shared so every iteration lands in the same
/// `kb_load_seconds{backend=...}` histogram.
fn boot(spec: &KbSpec, obs: &Arc<Obs>) -> f64 {
    let started = Instant::now();
    let state = build_state(
        std::slice::from_ref(spec),
        RegistryConfig::default(),
        Arc::clone(obs),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("exp_kb_boot: {e}");
        std::process::exit(2);
    });
    let secs = started.elapsed().as_secs_f64();
    assert!(!state.entries.is_empty());
    secs
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kb_size: usize = flag(&args, "--kb-size", 400);
    let seed: u64 = flag(&args, "--seed", 7);
    let iters: usize = flag(&args, "--iters", 5);

    let image_dir = std::env::temp_dir().join(format!("dr-kb-boot-{}", std::process::id()));
    std::fs::create_dir_all(&image_dir).expect("create image dir");

    let cases: Vec<(&str, KbSpec, ImageFamily)> = vec![
        ("nobel-mini", KbSpec::NobelMini, ImageFamily::NobelMini),
        (
            "nobel",
            KbSpec::Nobel {
                size: kb_size,
                seed,
            },
            ImageFamily::Nobel,
        ),
        (
            "uis",
            KbSpec::Uis {
                size: kb_size,
                seed,
            },
            ImageFamily::Uis,
        ),
    ];

    let obs = Arc::new(Obs::new());
    println!("# exp_kb_boot: kb-size={kb_size} seed={seed} iters={iters}");
    println!("# boot = full build_state (KB load + rule build + index prewarm + cache warm)");
    for (name, mem_spec, family) in &cases {
        // Pack an image from the same KB the mem path builds, so both
        // backends answer for identical content.
        let kb = match *mem_spec {
            KbSpec::NobelMini => dr_kb::fixtures::nobel_mini_kb(),
            KbSpec::Nobel { size, seed } => {
                dr_datasets::NobelWorld::generate(size, seed).kb(&dr_datasets::KbProfile::yago())
            }
            KbSpec::Uis { size, seed } => {
                dr_datasets::UisWorld::generate(size, seed).kb(&dr_datasets::KbProfile::yago())
            }
            KbSpec::Image { .. } => unreachable!("cases are mem specs"),
        };
        let image_path = image_dir.join(format!("{name}.drkb"));
        dr_kb::write_image(&image_path, &kb).expect("pack image");
        let image_spec = KbSpec::Image {
            family: *family,
            path: image_path.clone(),
        };

        let mut mem_total = 0.0;
        let mut mmap_total = 0.0;
        for _ in 0..iters {
            mem_total += boot(mem_spec, &obs);
            mmap_total += boot(&image_spec, &obs);
        }
        let bytes = std::fs::metadata(&image_path).map(|m| m.len()).unwrap_or(0);
        println!(
            "{name}: instances={} edges={} image_bytes={bytes} mem_boot_s={:.4} mmap_boot_s={:.4} speedup={:.2}x",
            kb.num_instances(),
            kb.num_edges(),
            mem_total / iters as f64,
            mmap_total / iters as f64,
            mem_total / mmap_total.max(1e-9),
        );
    }

    // The histogram lines themselves — what /metrics exports for the
    // load phase, labelled by backend.
    let prom = obs.metrics().snapshot().render_prom();
    for line in prom.lines() {
        if line.contains("kb_load_seconds") {
            println!("{line}");
        }
    }

    std::fs::remove_dir_all(&image_dir).ok();
}
