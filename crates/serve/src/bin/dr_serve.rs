//! `dr-serve` — the repair service binary.
//!
//! ```text
//! dr-serve --kb nobel:500:42 --kb uis --addr 127.0.0.1:0 \
//!          --cache-dir /var/cache/dr --port-file /tmp/dr.port
//! ```
//!
//! Flags:
//!
//! * `--kb <spec>` (repeatable) — a KB built in memory at boot:
//!   `nobel[:size[:seed]]`, `uis[:size[:seed]]`, or `nobel-mini`.
//! * `--kb-image <family>=<path>` (repeatable) — a packed `.drkb` image
//!   (see `dr_kbpack`) served via mmap without parsing any N-Triples;
//!   `family` (`nobel`, `uis`, `nobel-mini`) picks schema and rules.
//!   At least one `--kb` or `--kb-image` is required.
//! * `--addr <host:port>` — bind address (default `127.0.0.1:7171`;
//!   port `0` picks a free port).
//! * `--port-file <path>` — write the bound `host:port` to `<path>` once
//!   listening (for scripts that bind port 0).
//! * `--cache-dir <dir>` — persist value-cache snapshots under `<dir>`;
//!   a restart with the same dir warm-starts every served KB.
//! * `--threads <n>` — repair worker threads per request (default: all
//!   cores).
//! * `--http-threads <n>` — concurrent connections served (default 4).
//! * `--deadline-ms <n>` — default per-tuple deadline for requests that
//!   do not pass their own (default: unbounded).
//! * `--max-steps <n>` — default per-tuple step cap (default: unbounded).
//! * observability: `--trace <path>`, `--trace-sample`, `--trace-seed`,
//!   `--metrics-out` (the metric registry is always on — `/metrics` needs
//!   it — so `--metrics` only controls the exit dump).

use std::sync::Arc;
use std::time::Duration;

use dr_core::RegistryConfig;
use dr_eval::obsflags::ObsCli;
use dr_obs::Obs;
use dr_serve::{build_state, KbSpec, ServeConfig, Server};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("bad value {v:?} for {flag}")))
    })
}

fn die(message: &str) -> ! {
    eprintln!("dr-serve: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--kb" {
            let value = args.get(i + 1).unwrap_or_else(|| die("--kb needs a value"));
            match KbSpec::parse(value) {
                Ok(spec) => specs.push(spec),
                Err(e) => die(&e),
            }
            i += 2;
        } else if args[i] == "--kb-image" {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| die("--kb-image needs a value"));
            match KbSpec::parse_image(value) {
                Ok(spec) => specs.push(spec),
                Err(e) => die(&e),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if specs.is_empty() {
        die("pass at least one --kb (nobel[:size[:seed]], uis[:size[:seed]], nobel-mini) or --kb-image <family>=<path>");
    }

    let addr = flag_value(&args, "--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let http_threads: usize = parsed_flag(&args, "--http-threads").unwrap_or(4);

    let mut registry_config = RegistryConfig::default();
    if let Some(dir) = flag_value(&args, "--cache-dir") {
        registry_config = registry_config.with_cache_dir(dir);
    }
    let config = ServeConfig {
        repair_threads: parsed_flag(&args, "--threads").unwrap_or(0),
        default_deadline: parsed_flag::<u64>(&args, "--deadline-ms").map(Duration::from_millis),
        default_max_steps: parsed_flag(&args, "--max-steps").unwrap_or(0),
    };

    // `/metrics` needs a registry regardless of --metrics; the flag only
    // decides whether a metrics.prom dump is written on exit.
    let obs_cli = ObsCli::from_args(&args);
    let obs = obs_cli.obs.clone().unwrap_or_else(|| Arc::new(Obs::new()));

    eprintln!(
        "dr-serve: loading {} KB(s): {}",
        specs.len(),
        specs
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let state = match build_state(&specs, registry_config, obs, config) {
        Ok(state) => state,
        Err(e) => die(&e),
    };
    for entry in &state.entries {
        eprintln!(
            "dr-serve:   {}: {} instances, {} edges, {} rules",
            entry.name,
            entry.kb.num_instances(),
            entry.kb.num_edges(),
            entry.rules.len()
        );
    }

    let server = match Server::bind(addr.as_str(), state, http_threads) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    eprintln!("dr-serve: listening on {}", server.addr());
    if let Some(path) = flag_value(&args, "--port-file") {
        if let Err(e) = std::fs::write(path, server.addr().to_string()) {
            die(&format!("cannot write --port-file {path}: {e}"));
        }
    }

    // Serve until killed. The registry is persisted after every repair,
    // so an external SIGKILL loses no cache state worth keeping; the
    // final obs dump only happens on clean exits, which a long-lived
    // server does not have.
    server.join();
    obs_cli.finish();
}
