//! `dr-serve` — the repair service binary.
//!
//! ```text
//! dr-serve --kb nobel:500:42 --kb uis --addr 127.0.0.1:0 \
//!          --cache-dir /var/cache/dr --port-file /tmp/dr.port
//! ```
//!
//! Flags:
//!
//! * `--kb <spec>` (repeatable) — a KB built in memory at boot:
//!   `nobel[:size[:seed]]`, `uis[:size[:seed]]`, or `nobel-mini`.
//! * `--kb-image <family>=<path>` (repeatable) — a packed `.drkb` image
//!   (see `dr_kbpack`) served via mmap without parsing any N-Triples;
//!   `family` (`nobel`, `uis`, `nobel-mini`) picks schema and rules.
//!   At least one `--kb` or `--kb-image` is required.
//! * `--addr <host:port>` — bind address (default `127.0.0.1:7171`;
//!   port `0` picks a free port).
//! * `--port-file <path>` — write the bound `host:port` to `<path>` once
//!   listening (for scripts that bind port 0).
//! * `--cache-dir <dir>` — persist value-cache snapshots under `<dir>`;
//!   a restart with the same dir warm-starts every served KB.
//! * `--threads <n>` — repair worker threads per request (default: all
//!   cores).
//! * `--http-threads <n>` — concurrent connections served (default 4).
//! * `--deadline-ms <n>` — default per-tuple deadline for requests that
//!   do not pass their own (default: unbounded).
//! * `--max-steps <n>` — default per-tuple step cap (default: unbounded).
//! * survival layer (DESIGN.md §9):
//!   `--max-inflight <n>` — concurrent repair requests admitted (0 =
//!   auto from core count); `--max-queue <n>` — waiters beyond that
//!   before instant shedding (0 = auto); `--queue-wait-ms <n>` — longest
//!   a queued request waits before `429`; `--retry-attempts <n>` /
//!   `--retry-backoff-ms <n>` — default retry policy for failed rows;
//!   `--idle-ms <n>` — keep-alive idle timeout;
//!   `--max-requests-per-conn <n>` — keep-alive request cap (0 =
//!   unlimited); `--breaker-threshold <n>` — consecutive failed repairs
//!   that mark a KB degraded (0 = off); `--breaker-cooldown-ms <n>` —
//!   fail-fast window before a probe; `--drain-ms <n>` — SIGTERM drain
//!   deadline (default 30000).
//! * observability: `--trace <path>`, `--trace-sample`, `--trace-seed`,
//!   `--metrics-out` (the metric registry is always on — `/metrics` needs
//!   it — so `--metrics` only controls the exit dump).
//! * live traces (DESIGN.md §11): `--trace-slow-ms <n>` — tail-sampling
//!   latency threshold (0 disables the latency rule; default 500);
//!   `--trace-store <n>` — retained traces kept for `/v1/traces`
//!   (default 64); `--trace-max-spans <n>` — per-trace recorded-span cap
//!   (default 512); `--no-live-trace` — disable span capture entirely.
//!
//! On SIGTERM/SIGINT the server drains: `/readyz` flips to 503, new
//! repairs are refused, in-flight streams finish (up to `--drain-ms`),
//! cache snapshots and the final obs dump are flushed, and the process
//! exits 0.

use std::sync::Arc;
use std::time::Duration;

use dr_core::{RegistryConfig, RetryPolicy};
use dr_eval::obsflags::ObsCli;
use dr_obs::Obs;
use dr_serve::{build_state, AdmissionConfig, KbSpec, ServeConfig, Server};

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| die(&format!("bad value {v:?} for {flag}")))
    })
}

fn die(message: &str) -> ! {
    eprintln!("dr-serve: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--kb" {
            let value = args.get(i + 1).unwrap_or_else(|| die("--kb needs a value"));
            match KbSpec::parse(value) {
                Ok(spec) => specs.push(spec),
                Err(e) => die(&e),
            }
            i += 2;
        } else if args[i] == "--kb-image" {
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| die("--kb-image needs a value"));
            match KbSpec::parse_image(value) {
                Ok(spec) => specs.push(spec),
                Err(e) => die(&e),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if specs.is_empty() {
        die("pass at least one --kb (nobel[:size[:seed]], uis[:size[:seed]], nobel-mini) or --kb-image <family>=<path>");
    }

    let addr = flag_value(&args, "--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_owned());
    let http_threads: usize = parsed_flag(&args, "--http-threads").unwrap_or(4);

    let mut registry_config = RegistryConfig::default();
    if let Some(dir) = flag_value(&args, "--cache-dir") {
        registry_config = registry_config.with_cache_dir(dir);
    }
    let defaults = ServeConfig::default();
    let mut retry = RetryPolicy::default();
    if let Some(attempts) = parsed_flag(&args, "--retry-attempts") {
        retry.max_attempts = attempts;
    }
    if let Some(ms) = parsed_flag::<u64>(&args, "--retry-backoff-ms") {
        retry.base_backoff = Duration::from_millis(ms);
    }
    let config = ServeConfig {
        repair_threads: parsed_flag(&args, "--threads").unwrap_or(0),
        default_deadline: parsed_flag::<u64>(&args, "--deadline-ms").map(Duration::from_millis),
        default_max_steps: parsed_flag(&args, "--max-steps").unwrap_or(0),
        admission: AdmissionConfig {
            max_inflight_repairs: parsed_flag(&args, "--max-inflight").unwrap_or(0),
            max_queue: parsed_flag(&args, "--max-queue").unwrap_or(0),
            queue_wait: parsed_flag::<u64>(&args, "--queue-wait-ms")
                .map(Duration::from_millis)
                .unwrap_or(defaults.admission.queue_wait),
            ..AdmissionConfig::default()
        },
        retry,
        max_requests_per_conn: parsed_flag(&args, "--max-requests-per-conn")
            .unwrap_or(defaults.max_requests_per_conn),
        idle_timeout: parsed_flag::<u64>(&args, "--idle-ms")
            .map(Duration::from_millis)
            .unwrap_or(defaults.idle_timeout),
        breaker_threshold: parsed_flag(&args, "--breaker-threshold")
            .unwrap_or(defaults.breaker_threshold),
        breaker_cooldown: parsed_flag::<u64>(&args, "--breaker-cooldown-ms")
            .map(Duration::from_millis)
            .unwrap_or(defaults.breaker_cooldown),
        trace_capture: !args.iter().any(|a| a == "--no-live-trace"),
        trace_slow: match parsed_flag::<u64>(&args, "--trace-slow-ms") {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => defaults.trace_slow,
        },
        trace_max_spans: parsed_flag(&args, "--trace-max-spans")
            .unwrap_or(defaults.trace_max_spans),
        trace_store_capacity: parsed_flag(&args, "--trace-store")
            .unwrap_or(defaults.trace_store_capacity),
        ..defaults
    };
    let drain_deadline = parsed_flag::<u64>(&args, "--drain-ms")
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30));

    // `/metrics` needs a registry regardless of --metrics; the flag only
    // decides whether a metrics.prom dump is written on exit.
    let obs_cli = ObsCli::from_args(&args);
    let obs = obs_cli.obs.clone().unwrap_or_else(|| Arc::new(Obs::new()));

    eprintln!(
        "dr-serve: loading {} KB(s): {}",
        specs.len(),
        specs
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let state = match build_state(&specs, registry_config, obs, config) {
        Ok(state) => state,
        Err(e) => die(&e),
    };
    for entry in &state.entries {
        let Some(core) = entry.core() else { continue };
        let kb = core.kb.as_ref();
        eprintln!(
            "dr-serve:   {}: {} instances, {} edges, {} rules (generation {})",
            entry.name,
            kb.num_instances(),
            kb.num_edges(),
            core.rules.len(),
            kb.generation(),
        );
    }

    let server = match Server::bind(addr.as_str(), state, http_threads) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {addr}: {e}")),
    };
    eprintln!("dr-serve: listening on {}", server.addr());
    if let Some(path) = flag_value(&args, "--port-file") {
        if let Err(e) = std::fs::write(path, server.addr().to_string()) {
            die(&format!("cannot write --port-file {path}: {e}"));
        }
    }

    // Serve until signalled. SIGTERM/SIGINT drains gracefully: readiness
    // flips, in-flight streams finish under --drain-ms, snapshots and the
    // obs dump are flushed, and the process exits 0. A SIGKILL still
    // loses nothing vital — the registry persists after every repair.
    #[cfg(unix)]
    {
        sig::install();
        loop {
            if sig::pending() {
                eprintln!(
                    "dr-serve: termination signal; draining (deadline {} ms)",
                    drain_deadline.as_millis()
                );
                let drained = server.drain(drain_deadline);
                eprintln!(
                    "dr-serve: drain {}",
                    if drained {
                        "complete"
                    } else {
                        "deadline exceeded; exiting with requests in flight"
                    }
                );
                obs_cli.finish();
                // Skip joining acceptors: an idle keep-alive peer could
                // hold one until its idle timeout, and everything durable
                // is already flushed.
                std::process::exit(0);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    #[cfg(not(unix))]
    {
        let _ = drain_deadline;
        server.join();
        obs_cli.finish();
    }
}

/// Minimal signal hookup without a libc dependency: `signal(2)` is
/// declared directly (the same idiom as `dr-kb`'s mmap bindings) and the
/// handler only stores an atomic flag — the drain itself runs on the main
/// thread, where blocking and allocation are safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::Release);
    }

    /// Routes SIGTERM and SIGINT to the flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
            signal(SIGINT, on_term as *const () as usize);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn pending() -> bool {
        TERM.load(Ordering::Acquire)
    }
}
