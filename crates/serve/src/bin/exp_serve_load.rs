//! `exp_serve_load` — load generator for the repair service.
//!
//! Boots a `dr-serve` instance in-process on a free port, fires the same
//! stream of dirty-relation POSTs at it twice — once against cold value
//! caches, once warm — from `--clients` concurrent client threads, and
//! reports throughput and latency quantiles per phase straight from the
//! server's own `serve_repair_seconds{phase=...}` histograms (so the
//! numbers printed are the numbers `/metrics` exports).
//!
//! ```text
//! exp_serve_load --clients 8 --requests 64 --rows 60 --kb-size 400
//! ```
//!
//! Flags: `--clients` (default 4), `--requests` per phase (default 32),
//! `--rows` per request (default 60), `--kb-size` (default 300),
//! `--error-rate` (default 0.10), `--seed` (default 7), `--cache-dir`
//! (default: none — warm-up comes from the in-memory shared caches).
//!
//! Exits nonzero if the per-response summaries and the server's metric
//! totals disagree — the load test doubles as an end-to-end check that
//! concurrent serving keeps the observability invariants.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dr_core::RegistryConfig;
use dr_datasets::NobelWorld;
use dr_obs::Obs;
use dr_relation::{inject, NoiseSpec};
use dr_serve::client;
use dr_serve::{build_state, KbSpec, ServeConfig, Server};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("exp_serve_load: bad value {v:?} for {name}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

/// Pulls `"key":<int>` out of a summary NDJSON line.
fn summary_field(line: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    let Some(at) = line.find(&pattern) else {
        return 0;
    };
    line[at + pattern.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

struct PhaseResult {
    wall_seconds: f64,
    tuples: u64,
}

/// Fires `bodies` at the server from `clients` threads; returns wall time
/// and the tuple total summed from the per-response summary lines.
fn run_phase(
    addr: std::net::SocketAddr,
    label: &str,
    bodies: &[String],
    clients: usize,
) -> PhaseResult {
    let next = AtomicUsize::new(0);
    let tuples = std::sync::atomic::AtomicU64::new(0);
    let target = format!("/v1/repair/nobel?label={label}");
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(body) = bodies.get(i) else { break };
                let resp = client::request(addr, "POST", &target, "text/csv", body.as_bytes())
                    .unwrap_or_else(|e| {
                        eprintln!("exp_serve_load: request {i} failed: {e}");
                        std::process::exit(1);
                    });
                if resp.status != 200 {
                    eprintln!(
                        "exp_serve_load: request {i} got {}: {}",
                        resp.status,
                        resp.text()
                    );
                    std::process::exit(1);
                }
                let text = resp.text();
                let summary = text
                    .lines()
                    .rev()
                    .find(|l| l.contains("\"kind\":\"summary\""))
                    .unwrap_or_else(|| {
                        eprintln!("exp_serve_load: request {i} response has no summary line");
                        std::process::exit(1);
                    })
                    .to_owned();
                tuples.fetch_add(
                    summary_field(&summary, "completed")
                        + summary_field(&summary, "degraded")
                        + summary_field(&summary, "failed"),
                    Ordering::Relaxed,
                );
            });
        }
    });
    PhaseResult {
        wall_seconds: started.elapsed().as_secs_f64(),
        tuples: tuples.load(Ordering::Relaxed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients: usize = flag(&args, "--clients", 4);
    let requests: usize = flag(&args, "--requests", 32);
    let rows: usize = flag(&args, "--rows", 60);
    let kb_size: usize = flag(&args, "--kb-size", 300);
    let error_rate: f64 = flag(&args, "--error-rate", 0.10);
    let seed: u64 = flag(&args, "--seed", 7);
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // The server's world and the request bodies come from the same seed,
    // so the uploaded tuples actually resolve against the served KB.
    eprintln!("exp_serve_load: generating {requests} request bodies ({rows} rows each)");
    let world = NobelWorld::generate(kb_size, seed);
    let clean = world.clean_relation();
    let name_attr = clean.schema().attr_expect("Name");
    let semantic = world.semantic_source();
    let bodies: Vec<String> = (0..requests)
        .map(|r| {
            let mut slice = dr_relation::Relation::new(Arc::clone(clean.schema()));
            for i in 0..rows {
                let src = clean.tuple((r * rows + i) % clean.len());
                slice.push(dr_relation::Tuple::new(src.cells().to_vec()));
            }
            let spec =
                NoiseSpec::new(error_rate, seed ^ (r as u64 + 1)).with_excluded(vec![name_attr]);
            let (dirty, _) = inject(&slice, &spec, &semantic);
            dr_relation::csv::serialize(&dirty)
        })
        .collect();

    let mut registry_config = RegistryConfig::default();
    if let Some(dir) = &cache_dir {
        registry_config = registry_config.with_cache_dir(dir);
    }
    let obs = Arc::new(Obs::new());
    let state = build_state(
        &[KbSpec::Nobel {
            size: kb_size,
            seed,
        }],
        registry_config,
        Arc::clone(&obs),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("exp_serve_load: {e}");
        std::process::exit(2);
    });
    let server = Server::bind("127.0.0.1:0", state, clients.max(2)).unwrap_or_else(|e| {
        eprintln!("exp_serve_load: bind failed: {e}");
        std::process::exit(2);
    });
    let addr = server.addr();
    eprintln!("exp_serve_load: server on {addr}, {clients} clients x {requests} requests/phase");

    let cold = run_phase(addr, "cold", &bodies, clients);
    let warm = run_phase(addr, "warm", &bodies, clients);

    // Latency quantiles straight from the server's own histograms.
    let snapshot = obs.metrics().snapshot();
    let phase_stats = |phase: &str| {
        snapshot
            .histograms
            .iter()
            .find(|h| h.name == "serve_repair_seconds" && h.labels.contains(phase))
            .map(|h| (h.count, h.p50, h.p95, h.p99, h.sum_nanos))
            .unwrap_or((0, None, None, None, 0))
    };
    let secs = |nanos: Option<u64>| nanos.map(|n| n as f64 / 1e9).unwrap_or(f64::NAN);

    println!("phase  requests  req/s    p50(s)   p95(s)   p99(s)   mean(s)");
    let mut means = Vec::new();
    for (label, result) in [("cold", &cold), ("warm", &warm)] {
        let (count, p50, p95, p99, sum_nanos) = phase_stats(label);
        let mean = if count > 0 {
            sum_nanos as f64 / 1e9 / count as f64
        } else {
            f64::NAN
        };
        means.push(mean);
        println!(
            "{label:<6} {count:>8}  {:>6.1}  {:>7.4}  {:>7.4}  {:>7.4}  {:>7.4}",
            count as f64 / result.wall_seconds,
            secs(p50),
            secs(p95),
            secs(p99),
            mean,
        );
    }
    println!(
        "warm-speedup: {:.2}x (mean repair latency)",
        means[0] / means[1]
    );

    // Reconcile: what every response claimed must equal what the server
    // counted. A mismatch means concurrent requests corrupted the shared
    // observability path.
    let client_tuples = cold.tuples + warm.tuples;
    let metric_tuples = snapshot.counter_total("repair_tuples_total");
    let http_requests = snapshot.counter("serve_requests_total", "route=\"repair\",status=\"2xx\"");
    println!(
        "reconcile: client-summed tuples {client_tuples}, repair_tuples_total {metric_tuples}, \
         2xx repairs {http_requests:?}"
    );
    server.shutdown();
    if client_tuples != metric_tuples || http_requests != Some(2 * requests as u64) {
        eprintln!("exp_serve_load: FAIL: responses and /metrics disagree");
        std::process::exit(1);
    }
    println!("reconcile: ok");
}
