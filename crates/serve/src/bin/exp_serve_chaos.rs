//! `exp_serve_chaos` — chaos/overload harness for the service survival
//! layer (DESIGN.md §9).
//!
//! Boots `dr-serve` instances in-process and drives them through the
//! failure modes the survival layer exists for, gating on invariants
//! rather than eyeballs:
//!
//! 1. **overload** — a client stampede against a tiny admission gate must
//!    shed with `429 Retry-After` instead of queueing unboundedly, the
//!    in-flight gauge must never exceed the cap, and client-observed
//!    429/200 counts must reconcile exactly with `serve_shed_total` and
//!    `serve_requests_total`.
//! 2. **keep-alive** — many requests over one [`client::Connection`] must
//!    reuse the socket (`serve_connections_total` grows by exactly 1).
//! 3. **retry** — seeded `PanicOnce` faults must heal under the retry
//!    policy, with client-summed `retried` equal to both
//!    `repair_retries_total` and `retry_attempts_total`, and the same
//!    seeds must reproduce the same outcome counts.
//! 4. **disconnect** — a client that hangs up mid-stream must cost the
//!    server nothing but a `serve_client_disconnect_total` tick.
//! 5. **breaker** — persistent failures must trip the KB health breaker:
//!    fail-fast `503`, `"health":"degraded"` in `/kbs`.
//! 6. **drain** — SIGTERM semantics driven in-process: `/readyz` flips to
//!    503, new repairs are refused, the in-flight NDJSON stream completes
//!    intact, and `.drsnap` snapshots are flushed.
//!
//! Writes a per-leg report to `results/serve_chaos.txt` and exits
//! nonzero if any gate fails. `--quick` shrinks the counts for CI.
//!
//! Requires the `fault-injection` feature (the chaos is seeded, not
//! random): `cargo run -p dr-serve --features fault-injection --bin
//! exp_serve_chaos`.

#[cfg(not(feature = "fault-injection"))]
fn main() {
    eprintln!(
        "exp_serve_chaos needs seeded faults; rebuild with: \
         cargo run -p dr-serve --features fault-injection --bin exp_serve_chaos"
    );
    std::process::exit(2);
}

#[cfg(feature = "fault-injection")]
fn main() {
    chaos::main()
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use dr_core::{RegistryConfig, RetryPolicy};
    use dr_obs::{MetricsSnapshot, Obs};
    use dr_serve::client::{self, Connection};
    use dr_serve::{build_state, AdmissionConfig, KbSpec, ServeConfig, Server};

    /// One CSV body over the nobel-mini schema with `rows` data rows.
    fn csv_body(rows: usize) -> String {
        let mut out = String::from("Name,DOB,Country,Prize,Institution,City\n");
        for _ in 0..rows {
            out.push_str(
                "Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,\
                 Israel Institute of Technology,Karcag\n",
            );
        }
        out
    }

    /// Pulls `"key":<int>` out of a summary NDJSON line.
    fn summary_field(line: &str, key: &str) -> u64 {
        let pattern = format!("\"{key}\":");
        let Some(at) = line.find(&pattern) else {
            return 0;
        };
        line[at + pattern.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap_or(0)
    }

    fn summary_line(text: &str) -> Option<&str> {
        text.lines()
            .rev()
            .find(|l| l.contains("\"kind\":\"summary\""))
    }

    fn boot(config: ServeConfig, cache_dir: Option<&std::path::Path>) -> (Server, Arc<Obs>) {
        let mut registry_config = RegistryConfig::default();
        if let Some(dir) = cache_dir {
            registry_config = registry_config.with_cache_dir(dir);
        }
        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::NobelMini],
            registry_config,
            Arc::clone(&obs),
            config,
        )
        .unwrap_or_else(|e| {
            eprintln!("exp_serve_chaos: {e}");
            std::process::exit(2);
        });
        let server = Server::bind("127.0.0.1:0", state, 8).unwrap_or_else(|e| {
            eprintln!("exp_serve_chaos: bind failed: {e}");
            std::process::exit(2);
        });
        (server, obs)
    }

    fn delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
        after.counter_total(name) - before.counter_total(name)
    }

    /// Leg 1: stampede a tiny gate; sheds must be typed, bounded, and
    /// exactly accounted.
    fn leg_overload(server: &Server, obs: &Obs, quick: bool) -> Result<String, String> {
        let clients = if quick { 6 } else { 10 };
        let per_client = if quick { 2 } else { 4 };
        let before = obs.metrics().snapshot();
        let body = csv_body(6);
        let target =
            "/v1/repair/nobel-mini?label=overload&threads=1&fault_slow_rate=1&fault_slow_ms=40&fault_seed=1";

        let ok = AtomicU64::new(0);
        let shed = AtomicU64::new(0);
        let max_inflight = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let state = Arc::clone(server.state());
        let addr = server.addr();
        let mut bad = Vec::new();
        std::thread::scope(|s| {
            // Sampler: the "no unbounded queueing" gate. The in-flight
            // gauge must never exceed the configured cap.
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    max_inflight.fetch_max(state.gate.inflight() as u64, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let results: Vec<_> = (0..clients)
                .map(|_| {
                    s.spawn(|| {
                        let mut statuses = Vec::new();
                        for _ in 0..per_client {
                            match client::request(addr, "POST", target, "text/csv", body.as_bytes())
                            {
                                Ok(resp) => {
                                    if resp.status == 429 && resp.header("retry-after").is_none() {
                                        statuses.push(Err("429 without retry-after".to_owned()));
                                        continue;
                                    }
                                    match resp.status {
                                        200 => ok.fetch_add(1, Ordering::Relaxed),
                                        429 => shed.fetch_add(1, Ordering::Relaxed),
                                        other => {
                                            statuses
                                                .push(Err(format!("unexpected status {other}")));
                                            continue;
                                        }
                                    };
                                    statuses.push(Ok(()));
                                }
                                Err(e) => statuses.push(Err(format!("request error: {e}"))),
                            }
                        }
                        statuses
                    })
                })
                .collect();
            for handle in results {
                for r in handle.join().expect("client thread") {
                    if let Err(e) = r {
                        bad.push(e);
                    }
                }
            }
            done.store(true, Ordering::Release);
        });
        if let Some(e) = bad.first() {
            return Err(format!("overload: {e} ({} total)", bad.len()));
        }

        let after = obs.metrics().snapshot();
        let ok = ok.load(Ordering::Relaxed);
        let shed = shed.load(Ordering::Relaxed);
        let total = (clients * per_client) as u64;
        if ok + shed != total {
            return Err(format!("overload: {ok} ok + {shed} shed != {total} sent"));
        }
        if shed == 0 {
            return Err("overload: nothing shed — the gate did not engage".into());
        }
        let shed_metric = delta(&before, &after, "serve_shed_total");
        if shed_metric != shed {
            return Err(format!(
                "overload: clients saw {shed} x 429 but serve_shed_total moved {shed_metric}"
            ));
        }
        let ok_metric = after
            .counter("serve_requests_total", "route=\"repair\",status=\"2xx\"")
            .unwrap_or(0)
            - before
                .counter("serve_requests_total", "route=\"repair\",status=\"2xx\"")
                .unwrap_or(0);
        if ok_metric != ok {
            return Err(format!(
                "overload: clients saw {ok} x 200 but 2xx counter moved {ok_metric}"
            ));
        }
        let cap = state_limit(server);
        let peak = max_inflight.load(Ordering::Relaxed);
        if peak > cap {
            return Err(format!("overload: inflight peaked at {peak} > cap {cap}"));
        }
        Ok(format!(
            "overload: {total} requests -> {ok} served, {shed} shed (429+retry-after); \
             inflight peak {peak}/{cap}; metrics reconcile"
        ))
    }

    fn state_limit(server: &Server) -> u64 {
        server.state().gate.limit() as u64
    }

    /// Leg 2: one socket, many requests.
    fn leg_keepalive(server: &Server, obs: &Obs, quick: bool) -> Result<String, String> {
        let requests = if quick { 5 } else { 12 };
        let before = obs.metrics().snapshot();
        let mut conn =
            Connection::connect(server.addr()).map_err(|e| format!("keepalive: connect: {e}"))?;
        let body = csv_body(2);
        for i in 0..requests {
            let resp = if i % 2 == 0 {
                conn.get("/healthz")
            } else {
                conn.request(
                    "POST",
                    "/v1/repair/nobel-mini?label=keepalive",
                    "text/csv",
                    body.as_bytes(),
                )
            }
            .map_err(|e| format!("keepalive: request {i}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("keepalive: request {i} got {}", resp.status));
            }
            if resp.header("connection") != Some("keep-alive") {
                return Err(format!(
                    "keepalive: request {i} answered connection: {:?}",
                    resp.header("connection")
                ));
            }
        }
        drop(conn);
        let after = obs.metrics().snapshot();
        let conns = delta(&before, &after, "serve_connections_total");
        let reuse = delta(&before, &after, "serve_keepalive_reuse_total");
        if conns != 1 {
            return Err(format!(
                "keepalive: {requests} requests opened {conns} connections, expected 1"
            ));
        }
        if reuse != requests as u64 - 1 {
            return Err(format!(
                "keepalive: reuse counter moved {reuse}, expected {}",
                requests - 1
            ));
        }
        Ok(format!(
            "keepalive: {requests} requests over 1 socket ({reuse} reuses)"
        ))
    }

    /// Leg 3: seeded healing faults; `retried` must reconcile across the
    /// response summaries and both retry metrics, and reproduce by seed.
    fn leg_retry(server: &Server, obs: &Obs, quick: bool) -> Result<String, String> {
        let requests = if quick { 3 } else { 6 };
        let rows = 12;
        let before = obs.metrics().snapshot();
        let mut client_retried = 0u64;
        let mut first_summary = Vec::new();
        for round in 0..2 {
            for i in 0..requests {
                // Same seeds both rounds: outcomes must reproduce.
                let target = format!(
                    "/v1/repair/nobel-mini?label=retry&threads=2&retry_attempts=3&retry_seed=9\
                     &fault_panic_once_rate=0.5&fault_seed={}",
                    i + 1
                );
                let resp = client::request(
                    server.addr(),
                    "POST",
                    &target,
                    "text/csv",
                    csv_body(rows).as_bytes(),
                )
                .map_err(|e| format!("retry: request {i}: {e}"))?;
                if resp.status != 200 {
                    return Err(format!("retry: request {i} got {}", resp.status));
                }
                let text = resp.text();
                let summary = summary_line(&text)
                    .ok_or_else(|| format!("retry: request {i} has no summary"))?;
                let counts = (
                    summary_field(summary, "completed"),
                    summary_field(summary, "degraded"),
                    summary_field(summary, "failed"),
                    summary_field(summary, "retried"),
                );
                if counts.2 != 0 {
                    return Err(format!(
                        "retry: healing faults left {} failed rows: {summary}",
                        counts.2
                    ));
                }
                if round == 0 {
                    first_summary.push(counts);
                    client_retried += counts.3;
                } else if first_summary[i] != counts {
                    return Err(format!(
                        "retry: seed {} not reproducible: {:?} then {:?}",
                        i + 1,
                        first_summary[i],
                        counts
                    ));
                } else {
                    client_retried += counts.3;
                }
            }
        }
        if client_retried == 0 {
            return Err("retry: no row ever retried — faults did not engage".into());
        }
        let after = obs.metrics().snapshot();
        let retries_metric = delta(&before, &after, "repair_retries_total");
        let attempts_metric = delta(&before, &after, "retry_attempts_total");
        if retries_metric != client_retried || attempts_metric != client_retried {
            return Err(format!(
                "retry: summaries say {client_retried}, repair_retries_total moved \
                 {retries_metric}, retry_attempts_total moved {attempts_metric}"
            ));
        }
        Ok(format!(
            "retry: {} requests, {client_retried} healed retries; summaries == \
             repair_retries_total == retry_attempts_total; seeds reproduce",
            requests * 2
        ))
    }

    /// Leg 4: hang up mid-stream; the server counts it and keeps serving.
    fn leg_disconnect(server: &Server, obs: &Obs, quick: bool) -> Result<String, String> {
        let rows = if quick { 300 } else { 800 };
        let before = obs.metrics().snapshot();
        {
            use std::io::Write;
            let mut stream = std::net::TcpStream::connect(server.addr())
                .map_err(|e| format!("disconnect: connect: {e}"))?;
            let body = csv_body(rows);
            write!(
                stream,
                "POST /v1/repair/nobel-mini?label=disconnect&threads=1\
                 &fault_slow_rate=0.2&fault_slow_ms=20&fault_seed=3 HTTP/1.1\r\n\
                 host: dr-serve\r\ncontent-type: text/csv\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .and_then(|_| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("disconnect: send: {e}"))?;
            // Give the repair a head start, then vanish without reading a
            // byte: the queued response data turns the close into a hard
            // RST, and the server's stream writes start failing.
            std::thread::sleep(Duration::from_millis(50));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let d = delta(
                &before,
                &obs.metrics().snapshot(),
                "serve_client_disconnect_total",
            );
            if d >= 1 {
                break;
            }
            if Instant::now() > deadline {
                return Err("disconnect: serve_client_disconnect_total never moved".into());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // The worker that took the hit must still serve.
        let resp = client::get(server.addr(), "/healthz")
            .map_err(|e| format!("disconnect: server wedged after disconnect: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "disconnect: healthz got {} afterwards",
                resp.status
            ));
        }
        Ok("disconnect: mid-stream hangup counted, worker kept serving".into())
    }

    /// Leg 5: persistent failures trip the per-KB breaker.
    fn leg_breaker(quick: bool) -> Result<String, String> {
        let _ = quick;
        let config = ServeConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(600),
            retry: RetryPolicy::with_attempts(2),
            ..ServeConfig::default()
        };
        let (server, obs) = boot(config, None);
        let body = csv_body(4);
        let target =
            "/v1/repair/nobel-mini?label=breaker&threads=1&fault_panic_rate=1&fault_seed=5";
        for i in 0..2 {
            let resp = client::request(server.addr(), "POST", target, "text/csv", body.as_bytes())
                .map_err(|e| format!("breaker: request {i}: {e}"))?;
            if resp.status != 200 {
                return Err(format!(
                    "breaker: failing request {i} got {} before threshold",
                    resp.status
                ));
            }
            let text = resp.text();
            let summary = summary_line(&text).unwrap_or("");
            if summary_field(summary, "failed") == 0 {
                return Err(format!("breaker: faults did not fail rows: {summary}"));
            }
        }
        let resp = client::request(server.addr(), "POST", target, "text/csv", body.as_bytes())
            .map_err(|e| format!("breaker: tripped request: {e}"))?;
        if resp.status != 503 || resp.header("retry-after").is_none() {
            return Err(format!(
                "breaker: expected fail-fast 503+retry-after after trip, got {}",
                resp.status
            ));
        }
        let kbs = client::get(server.addr(), "/kbs").map_err(|e| format!("breaker: /kbs: {e}"))?;
        if !kbs.text().contains("\"health\":\"degraded\"") {
            return Err(format!(
                "breaker: /kbs does not show degraded: {}",
                kbs.text()
            ));
        }
        let trips = obs
            .metrics()
            .snapshot()
            .counter_total("serve_breaker_trips_total");
        if trips != 1 {
            return Err(format!(
                "breaker: serve_breaker_trips_total = {trips}, expected 1"
            ));
        }
        server.shutdown();
        Ok("breaker: tripped after 2 failures, fail-fast 503, /kbs degraded".into())
    }

    /// Leg 6: drain with a stream in flight — the stream completes intact,
    /// new work is refused, snapshots land on disk.
    fn leg_drain(quick: bool) -> Result<String, String> {
        let rows = if quick { 8 } else { 16 };
        let cache_dir =
            std::env::temp_dir().join(format!("dr-serve-chaos-drain-{}", std::process::id()));
        std::fs::create_dir_all(&cache_dir).map_err(|e| format!("drain: tempdir: {e}"))?;
        let (server, _obs) = boot(ServeConfig::default(), Some(&cache_dir));
        let addr = server.addr();

        let result = std::thread::scope(|s| -> Result<String, String> {
            // The stream that must survive the drain: slow rows keep it in
            // flight while the drain begins.
            let streamer = s.spawn(move || {
                let target = "/v1/repair/nobel-mini?label=drain&threads=1\
                     &fault_slow_rate=1&fault_slow_ms=60&fault_seed=7";
                client::request(addr, "POST", target, "text/csv", csv_body(rows).as_bytes())
            });
            std::thread::sleep(Duration::from_millis(150));

            // Flip readiness first (acceptors still up): the balancer view.
            server.state().lifecycle.begin_drain();
            let ready = client::get(addr, "/readyz").map_err(|e| format!("drain: readyz: {e}"))?;
            if ready.status != 503 {
                return Err(format!(
                    "drain: /readyz said {} while draining",
                    ready.status
                ));
            }
            let refused = client::request(
                addr,
                "POST",
                "/v1/repair/nobel-mini",
                "text/csv",
                b"Name\nx\n",
            )
            .map_err(|e| format!("drain: refused-probe: {e}"))?;
            if refused.status != 503 {
                return Err(format!(
                    "drain: new repair got {} while draining, expected 503",
                    refused.status
                ));
            }

            let drained = server.drain(Duration::from_secs(30));
            if !drained {
                return Err("drain: deadline expired with requests in flight".into());
            }
            let resp = streamer
                .join()
                .expect("streamer thread")
                .map_err(|e| format!("drain: in-flight stream broke: {e}"))?;
            if resp.status != 200 {
                return Err(format!("drain: in-flight stream got {}", resp.status));
            }
            let text = resp.text();
            let lines: Vec<&str> = text.lines().collect();
            if lines.len() != rows + 2
                || !lines[0].contains("\"kind\":\"header\"")
                || !lines[rows + 1].contains("\"kind\":\"summary\"")
            {
                return Err(format!(
                    "drain: stream not intact: {} lines for {rows} rows",
                    lines.len()
                ));
            }
            let summary = lines[rows + 1];
            if summary_field(summary, "completed") != rows as u64 {
                return Err(format!("drain: rows lost across drain: {summary}"));
            }
            Ok(format!(
                "drain: in-flight {rows}-row stream completed intact; readyz 503; \
                 new repairs refused"
            ))
        })?;

        let snaps = std::fs::read_dir(&cache_dir)
            .map_err(|e| format!("drain: read cache dir: {e}"))?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "drsnap"))
            .count();
        std::fs::remove_dir_all(&cache_dir).ok();
        if snaps == 0 {
            return Err("drain: no .drsnap snapshot flushed".into());
        }
        Ok(format!("{result}; {snaps} .drsnap flushed"))
    }

    pub fn main() {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        dr_core::repair::fault::silence_injected_panics();

        // Server A carries the traffic legs. Tiny gate so overload can
        // actually shed; breaker off so injected failures in other legs
        // never poison the route.
        let config = ServeConfig {
            admission: AdmissionConfig {
                max_inflight_repairs: 2,
                max_queue: 2,
                queue_wait: Duration::from_millis(150),
                retry_after_secs: 1,
            },
            breaker_threshold: 0,
            idle_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        let (server, obs) = boot(config, None);

        let mut report = vec![format!(
            "exp_serve_chaos ({} mode)",
            if quick { "quick" } else { "full" }
        )];
        let mut failed = false;
        let legs: Vec<(&str, Result<String, String>)> = vec![
            ("overload", leg_overload(&server, &obs, quick)),
            ("keepalive", leg_keepalive(&server, &obs, quick)),
            ("retry", leg_retry(&server, &obs, quick)),
            ("disconnect", leg_disconnect(&server, &obs, quick)),
            ("breaker", leg_breaker(quick)),
            ("drain", leg_drain(quick)),
        ];
        server.shutdown();
        for (name, outcome) in legs {
            match outcome {
                Ok(detail) => {
                    println!("PASS {name}: {detail}");
                    report.push(format!("PASS {detail}"));
                }
                Err(detail) => {
                    eprintln!("FAIL {name}: {detail}");
                    report.push(format!("FAIL {detail}"));
                    failed = true;
                }
            }
        }
        report.push(if failed {
            "verdict: FAIL".into()
        } else {
            "verdict: PASS".into()
        });

        std::fs::create_dir_all("results").ok();
        let path = "results/serve_chaos.txt";
        if let Err(e) = std::fs::write(path, report.join("\n") + "\n") {
            eprintln!("exp_serve_chaos: cannot write {path}: {e}");
        } else {
            eprintln!("exp_serve_chaos: wrote {path}");
        }
        if failed {
            std::process::exit(1);
        }
    }
}
