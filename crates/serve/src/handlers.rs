//! Route dispatch and endpoint logic, socket-free.
//!
//! Handlers consume a parsed [`Request`] and a shared [`ServerState`] and
//! produce a [`Response`] value; the socket layer in `lib.rs` only decides
//! *how* to put that on the wire (fixed-length vs chunked). Keeping the
//! service entry point free of I/O is what lets the concurrency tests
//! drive it from plain threads and compare byte-identical outputs.

use std::sync::Arc;
use std::time::Instant;

use dr_core::{parallel_repair, ParallelOptions, RelationReport, TupleOutcome};
use dr_kb::quarantine::{LenientOptions, Quarantine};
use dr_kb::KbDelta;
use dr_obs::json::escape_into;
use dr_relation::Relation;

use crate::admission::Admission;
use crate::http::Request;
use crate::state::{DeltaApplyError, KbCore, KbEntry, ServerState};

/// A computed response, not yet serialized to a socket.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond content-type/framing (e.g. `retry-after`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Body,
}

/// How the body should go on the wire.
pub enum Body {
    /// One buffer, sent with `content-length`.
    Full(Vec<u8>),
    /// NDJSON lines, streamed with chunked encoding (one chunk per line).
    Lines(Vec<String>),
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: Body::Full(body.into_bytes()),
        }
    }

    fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":\"");
        escape_into(&mut body, message);
        body.push_str("\"}");
        Response::json(status, body)
    }

    fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// The body as one buffer (lines joined with `\n`, trailing newline) —
    /// what a client that concatenated every chunk would hold. Used by the
    /// determinism tests to compare responses byte for byte.
    pub fn body_bytes(&self) -> Vec<u8> {
        match &self.body {
            Body::Full(bytes) => bytes.clone(),
            Body::Lines(lines) => {
                let mut out = Vec::new();
                for line in lines {
                    out.extend_from_slice(line.as_bytes());
                    out.push(b'\n');
                }
                out
            }
        }
    }
}

/// Routes one request. Never panics; unknown routes get 404, wrong
/// methods 405.
pub fn handle(state: &ServerState, req: &Request) -> Response {
    let started = Instant::now();
    let (route, response) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz(state)),
        ("GET", "/readyz") => ("readyz", readyz(state)),
        ("GET", "/metrics") => ("metrics", metrics(state)),
        ("GET", "/kbs") => ("kbs", kbs(state)),
        ("GET", "/v1/traces") => ("traces", traces_index(state)),
        (method, path) => {
            if let Some(id) = path.strip_prefix("/v1/traces/") {
                if method == "GET" {
                    ("traces", trace_get(state, id))
                } else {
                    ("traces", Response::error(405, "traces are GET-only"))
                }
            } else if let Some(kb) = path.strip_prefix("/v1/repair/") {
                if method == "POST" {
                    ("repair", repair(state, kb, req))
                } else {
                    ("repair", Response::error(405, "repair requires POST"))
                }
            } else if let Some(rest) = path.strip_prefix("/v1/kbs/") {
                if let Some(kb) = rest.strip_suffix("/delta") {
                    if method == "POST" {
                        ("kb_delta", kb_delta(state, kb, req))
                    } else {
                        ("kb_delta", Response::error(405, "delta requires POST"))
                    }
                } else if method == "DELETE" {
                    ("kb_unload", kb_unload(state, rest))
                } else {
                    (
                        "kb_unload",
                        Response::error(405, "KB management requires DELETE or POST .../delta"),
                    )
                }
            } else {
                ("other", Response::error(404, &format!("no route {path}")))
            }
        }
    };
    let metrics = state.obs.metrics();
    metrics
        .counter(
            "serve_requests_total",
            &[("route", route), ("status", status_class(response.status))],
        )
        .inc();
    let elapsed = started.elapsed();
    metrics
        .histogram("serve_request_seconds", &[("route", route)])
        .record(elapsed);
    // The same latency again into the sliding ~60s window, so /metrics
    // shows current-tail quantiles next to the since-boot histogram.
    metrics
        .window_histogram("serve_request_seconds_window", &[("route", route)])
        .record(elapsed);
    response
}

/// Status label kept low-cardinality: the exact code is in the response,
/// the metric only needs the class.
fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

fn healthz(state: &ServerState) -> Response {
    let loaded = state.entries.iter().filter(|e| e.core().is_some()).count();
    let body = format!(
        "{{\"status\":\"ok\",\"version\":\"{}\",\"uptime_seconds\":{},\"kbs\":{loaded}}}",
        env!("CARGO_PKG_VERSION"),
        state.started.elapsed().as_secs(),
    );
    Response::json(200, body)
}

/// `GET /v1/traces` — index of tail-sampled retained traces, newest
/// first: id, route, kb, duration, why it was kept, span count.
fn traces_index(state: &ServerState) -> Response {
    let mut body = String::from("{\"traces\":[");
    for (i, t) in state.traces.recent().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&t.summary_json());
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /v1/traces/{id}` — one retained trace as a full span-tree JSON
/// document (what `dr_traceview` renders as a waterfall).
fn trace_get(state: &ServerState, id: &str) -> Response {
    match state.traces.get(id) {
        Some(trace) => Response::json(200, trace.to_json()),
        None => Response::error(
            404,
            &format!("no retained trace {id:?}; see /v1/traces for the index"),
        ),
    }
}

/// Readiness, split from liveness: a draining server is still *alive*
/// (`/healthz` 200 — don't restart it, it is finishing work) but no longer
/// *ready* (`/readyz` 503 — take it out of the balancer rotation).
fn readyz(state: &ServerState) -> Response {
    if state.lifecycle.is_draining() {
        Response::error(503, "draining")
    } else {
        Response::json(200, "{\"status\":\"ready\"}".to_owned())
    }
}

fn metrics(state: &ServerState) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        headers: Vec::new(),
        body: Body::Full(state.obs.metrics().snapshot().render_prom().into_bytes()),
    }
}

fn kbs(state: &ServerState) -> Response {
    let mut body = String::from("{\"kbs\":[");
    let mut first = true;
    for entry in &state.entries {
        // Unloaded KBs no longer exist as far as clients are concerned.
        let Some(core) = entry.core() else { continue };
        if !first {
            body.push(',');
        }
        first = false;
        body.push_str("{\"name\":\"");
        escape_into(&mut body, &entry.name);
        body.push_str("\",\"schema\":\"");
        escape_into(&mut body, entry.schema.name());
        body.push_str("\",\"attrs\":[");
        for (j, (_, attr)) in entry.schema.attrs().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push('"');
            escape_into(&mut body, attr);
            body.push('"');
        }
        body.push_str("],");
        let kb = core.kb.as_ref();
        body.push_str(&format!(
            concat!(
                "\"rules\":{},\"instances\":{},\"edges\":{},\"literals\":{},",
                "\"generation\":{},\"backend\":\"{}\",\"health\":\"{}\"}}"
            ),
            core.rules.len(),
            kb.num_instances(),
            kb.num_edges(),
            kb.num_literals(),
            kb.generation(),
            kb.backend(),
            if entry.health.is_degraded() {
                "degraded"
            } else {
                "ok"
            },
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `POST /v1/kbs/{kb}/delta` — applies a TSV-encoded [`KbDelta`] to an
/// in-memory KB: the entry swaps to a successor core at the next KB
/// generation, value-cache entries whose recorded footprint intersects the
/// delta's are swept (the rest re-key to the new generation and stay
/// warm), and the response reports the new generation.
fn kb_delta(state: &ServerState, kb_name: &str, req: &Request) -> Response {
    let Some(entry) = state.entry(kb_name) else {
        return Response::error(404, &format!("no KB named {kb_name:?}; see /kbs"));
    };
    if state.lifecycle.is_draining() {
        return Response::error(503, "server is draining").with_header("retry-after", "1".into());
    }
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "delta body must be UTF-8 TSV");
    };
    let delta = match KbDelta::parse_tsv(text) {
        Ok(d) => d,
        Err(e) => {
            return Response::error(400, &format!("delta line {}: {}", e.line, e.message));
        }
    };
    if delta.ops().is_empty() {
        return Response::error(400, "empty delta (no ops)");
    }
    match entry.apply_delta(&delta, &state.registry) {
        Ok(outcome) => {
            state
                .obs
                .metrics()
                .counter("kb_delta_applied_total", &[("kb", &entry.name)])
                .inc();
            // Re-keyed snapshots carry the new content hash; flush them so
            // a restart against the post-delta KB warm-loads.
            state.registry.persist();
            let mut body = String::from("{\"kb\":\"");
            escape_into(&mut body, &entry.name);
            body.push_str(&format!(
                "\",\"generation\":{},\"ops\":{},\"invalidated\":{}}}",
                outcome.generation,
                delta.ops().len(),
                outcome.invalidated,
            ));
            Response::json(200, body)
        }
        Err(DeltaApplyError::Unloaded) => {
            Response::error(404, &format!("KB {kb_name:?} was unloaded"))
        }
        Err(DeltaApplyError::Immutable) => Response::error(
            409,
            &format!("KB {kb_name:?} is an immutable mmap image; deltas need an in-memory KB"),
        ),
        Err(DeltaApplyError::Rejected(msg)) => {
            Response::error(400, &format!("delta rejected: {msg}"))
        }
    }
}

/// `DELETE /v1/kbs/{kb}` — unloads a served KB: subsequent requests 404,
/// its value caches are evicted (written back to disk first when a cache
/// dir is configured), and the KB's memory is released once the last
/// in-flight request drops its core handle.
fn kb_unload(state: &ServerState, kb_name: &str) -> Response {
    let Some(entry) = state.entry(kb_name) else {
        return Response::error(404, &format!("no KB named {kb_name:?}; see /kbs"));
    };
    let Some(core) = entry.unload() else {
        return Response::error(404, &format!("KB {kb_name:?} was already unloaded"));
    };
    let caches_dropped = state
        .registry
        .evict_generation(core.kb.as_ref().generation());
    let mut body = String::from("{\"kb\":\"");
    escape_into(&mut body, &entry.name);
    body.push_str(&format!(
        "\",\"unloaded\":true,\"caches_dropped\":{caches_dropped}}}"
    ));
    Response::json(200, body)
}

/// Per-request knobs parsed out of the query string.
struct RepairParams {
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    threads: Option<usize>,
    retry_attempts: Option<u32>,
    retry_backoff_ms: Option<u64>,
    retry_seed: Option<u64>,
    label: String,
    /// Seeded per-row faults (chaos harness only): `(seed, spec)`, built
    /// into a [`FaultPlan`](dr_core::FaultPlan) once the row count is
    /// known.
    #[cfg(feature = "fault-injection")]
    fault: Option<(u64, dr_core::FaultSpec)>,
}

fn parse_params(req: &Request) -> Result<RepairParams, String> {
    fn num<T: std::str::FromStr>(req: &Request, key: &str) -> Result<Option<T>, String> {
        req.query_param(key)
            .map(|v| v.parse::<T>().map_err(|_| format!("bad {key}={v:?}")))
            .transpose()
    }
    let label = match req.query_param("label") {
        None => "serve".to_owned(),
        Some(l) => {
            if l.is_empty()
                || l.len() > 32
                || !l
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
            {
                return Err(format!("label {l:?} must be 1-32 chars of [A-Za-z0-9_-]"));
            }
            l.to_owned()
        }
    };
    let has_fault_params = req.query.split('&').any(|pair| {
        pair.split('=')
            .next()
            .is_some_and(|k| k.starts_with("fault_"))
    });
    #[cfg(not(feature = "fault-injection"))]
    if has_fault_params {
        return Err(
            "fault_* parameters need a server built with --features fault-injection".into(),
        );
    }
    #[cfg(feature = "fault-injection")]
    let fault = if has_fault_params {
        let spec = dr_core::FaultSpec {
            panic_rate: num::<f64>(req, "fault_panic_rate")?.unwrap_or(0.0),
            panic_once_rate: num::<f64>(req, "fault_panic_once_rate")?.unwrap_or(0.0),
            slow_rate: num::<f64>(req, "fault_slow_rate")?.unwrap_or(0.0),
            slow_duration: std::time::Duration::from_millis(
                num::<u64>(req, "fault_slow_ms")?.unwrap_or(10),
            ),
            exhaust_rate: num::<f64>(req, "fault_exhaust_rate")?.unwrap_or(0.0),
        };
        Some((num::<u64>(req, "fault_seed")?.unwrap_or(0), spec))
    } else {
        None
    };
    Ok(RepairParams {
        deadline_ms: num(req, "deadline_ms")?,
        max_steps: num(req, "max_steps")?,
        threads: num(req, "threads")?,
        retry_attempts: num(req, "retry_attempts")?,
        retry_backoff_ms: num(req, "retry_backoff_ms")?,
        retry_seed: num(req, "retry_seed")?,
        label,
        #[cfg(feature = "fault-injection")]
        fault,
    })
}

fn repair(state: &ServerState, kb_name: &str, req: &Request) -> Response {
    let Some(entry) = state.entry(kb_name) else {
        return Response::error(404, &format!("no KB named {kb_name:?}; see /kbs"));
    };
    // Clone the core's Arc up front: a delta swapping a new generation in
    // mid-request leaves this repair on the generation it started with.
    let Some(core) = entry.core() else {
        return Response::error(404, &format!("KB {kb_name:?} was unloaded"));
    };
    if state.lifecycle.is_draining() {
        // In-flight repairs finish across a drain; *new* ones are refused
        // so the drain deadline is spent finishing, not starting.
        return Response::error(503, "server is draining").with_header("retry-after", "1".into());
    }
    let params = match parse_params(req) {
        Ok(p) => p,
        Err(msg) => return Response::error(400, &msg),
    };
    if !entry.health.allow() {
        return Response::error(
            503,
            &format!("KB {kb_name:?} is degraded (breaker open); see /kbs"),
        )
        .with_header(
            "retry-after",
            state.config.breaker_cooldown.as_secs().max(1).to_string(),
        );
    }

    // Admission: everything beyond this point (body parse + repair) holds
    // a permit, so the in-flight cap bounds memory and scheduler load, not
    // just repair concurrency.
    let _permit = match state.gate.acquire() {
        Admission::Granted(permit) => permit,
        Admission::Shed {
            retry_after_secs, ..
        } => {
            return Response::error(429, "server at capacity; retry later")
                .with_header("retry-after", retry_after_secs.to_string());
        }
    };

    // Arm the live span capture now — the root `request` span covers body
    // parse and repair (breaker and admission rejections are not worth a
    // trace). Whether the capture is *kept* is decided at the end by the
    // tail policy; `?trace=1` forces it.
    let mut capture = state.start_trace(req, "repair", kb_name);

    // Parse the body with the entry's canonical schema *name* so the
    // parsed schema fingerprint matches the cache built at boot — that
    // match is what turns a cold first request into a warm one.
    let lenient = LenientOptions::default();
    let content_type = req.header("content-type").unwrap_or("text/csv");
    let parsed = if content_type.starts_with("application/json") {
        dr_relation::json::parse_lenient_bytes(entry.schema.name(), &req.body, &lenient)
            .map_err(|e| format!("JSON parse error at byte {}: {}", e.offset, e.message))
    } else {
        dr_relation::csv::parse_lenient_bytes(entry.schema.name(), &req.body, &lenient)
            .map_err(|e| format!("CSV parse error at record {}: {}", e.record, e.message))
    };
    let (mut relation, quarantine) = match parsed {
        Ok(pair) => pair,
        Err(msg) => return Response::error(400, &msg),
    };
    if relation.schema().fingerprint() != entry.schema.fingerprint() {
        let expected: Vec<&str> = entry.schema.attrs().map(|(_, n)| n).collect();
        return Response::error(
            400,
            &format!("schema mismatch: {kb_name} expects columns {expected:?}"),
        );
    }
    if relation.is_empty() {
        return Response::error(400, "no data rows in body");
    }

    let repair_started = Instant::now();
    let ctx = core
        .context(Arc::clone(&state.registry), Arc::clone(&state.obs))
        .with_budget(state.budget(params.deadline_ms, params.max_steps))
        .with_span_opt(capture.as_ref().map(|c| c.root.ctx()));
    let mut retry = state.config.retry;
    if let Some(attempts) = params.retry_attempts {
        retry.max_attempts = attempts;
    }
    if let Some(ms) = params.retry_backoff_ms {
        retry.base_backoff = std::time::Duration::from_millis(ms);
    }
    if let Some(seed) = params.retry_seed {
        retry.seed = seed;
    }
    let opts = ParallelOptions {
        threads: params.threads.unwrap_or(state.config.repair_threads),
        retry,
        #[cfg(feature = "fault-injection")]
        fault_plan: params.fault.map(|(seed, spec)| {
            std::sync::Arc::new(dr_core::FaultPlan::seeded(seed, relation.len(), spec))
        }),
        ..ParallelOptions::default()
    };
    let mut report = parallel_repair(&ctx, &core.rules, &mut relation, &opts);
    report.resilience.add_quarantined(quarantine.quarantined());
    entry.health.record(report.resilience.failed == 0);

    // Persist after every repair: the snapshot directory stays current
    // even if the process is killed, and concurrent requests exercising
    // the same key exercise the atomic-publish path on purpose.
    state.registry.persist();

    state
        .obs
        .metrics()
        .histogram("serve_repair_seconds", &[("phase", &params.label)])
        .record(repair_started.elapsed());

    // Finish the root span and make the tail-sampling call. A retained
    // trace's id is echoed in the NDJSON summary so the client can fetch
    // `/v1/traces/{id}` for the waterfall.
    let trace_id = capture.take().and_then(|mut c| {
        let error = report.resilience.failed > 0 || report.resilience.degraded > 0;
        c.root.attr_num("rows", relation.len() as u64);
        c.root.finish();
        state.finish_trace(&c.trace, "repair", &entry.name, error)
    });

    Response {
        status: 200,
        content_type: "application/x-ndjson",
        headers: Vec::new(),
        body: Body::Lines(render_ndjson(
            entry,
            &core,
            &relation,
            &report,
            &quarantine,
            trace_id.as_deref(),
        )),
    }
}

/// Renders the streamed response: a header line, one line per quarantined
/// input record, one line per repaired tuple (cells + provenance), and a
/// summary line.
fn render_ndjson(
    entry: &KbEntry,
    core: &KbCore,
    relation: &Relation,
    report: &RelationReport,
    quarantine: &Quarantine,
    trace_id: Option<&str>,
) -> Vec<String> {
    let mut lines = Vec::with_capacity(relation.len() + 2);

    let mut header = String::from("{\"kind\":\"header\",\"kb\":\"");
    escape_into(&mut header, &entry.name);
    // No KB generation here: repair responses are byte-deterministic for
    // identical inputs (the concurrency suite compares them), and the
    // generation is a process-unique counter. Clients read it from /kbs.
    header.push_str(&format!(
        "\",\"rows\":{},\"rules\":{},\"quarantined\":{}}}",
        relation.len(),
        core.rules.len(),
        quarantine.quarantined()
    ));
    lines.push(header);

    for diag in quarantine.diagnostics() {
        let mut line = format!(
            "{{\"kind\":\"quarantined\",\"line\":{},\"message\":\"",
            diag.line
        );
        escape_into(&mut line, &diag.message);
        line.push_str("\"}");
        lines.push(line);
    }

    let schema = relation.schema();
    for (row, (tuple, tr)) in relation.tuples().iter().zip(&report.tuples).enumerate() {
        let mut line = format!("{{\"kind\":\"tuple\",\"row\":{row},\"outcome\":");
        match &tr.outcome {
            TupleOutcome::Completed => line.push_str("\"completed\""),
            TupleOutcome::Degraded { reason } => {
                line.push_str(&format!(
                    "\"degraded\",\"cause\":\"{}\",\"steps_spent\":{}",
                    reason.cause, reason.steps
                ));
            }
            TupleOutcome::Failed { message } => {
                line.push_str("\"failed\",\"message\":\"");
                escape_into(&mut line, message);
                line.push('"');
            }
        }
        line.push_str(",\"cells\":[");
        for (i, cell) in tuple.cells().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            escape_into(&mut line, cell);
            line.push('"');
        }
        line.push_str("],\"positive\":[");
        for (i, attr) in tuple.positive_attrs().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            escape_into(&mut line, schema.attr_name(attr));
            line.push('"');
        }
        line.push_str("],\"steps\":[");
        for (i, step) in tr.steps.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{{\"rule\":{},\"name\":\"", step.rule_index));
            escape_into(&mut line, &step.rule_name);
            line.push_str("\",\"kind\":\"");
            use dr_core::RuleApplication::*;
            match &step.application {
                NotApplicable => line.push_str("not_applicable\""),
                ProofPositive { .. } => line.push_str("proof_positive\""),
                DetectedWrong { col, .. } => {
                    line.push_str("detected_wrong\",\"col\":\"");
                    escape_into(&mut line, schema.attr_name(*col));
                    line.push('"');
                }
                Repaired { col, old, new, .. } => {
                    line.push_str("repaired\",\"col\":\"");
                    escape_into(&mut line, schema.attr_name(*col));
                    line.push_str("\",\"old\":\"");
                    escape_into(&mut line, old);
                    line.push_str("\",\"new\":\"");
                    escape_into(&mut line, new);
                    line.push('"');
                }
            }
            line.push('}');
        }
        line.push_str("]}");
        lines.push(line);
    }

    let r = &report.resilience;
    let completed = report
        .tuples
        .iter()
        .filter(|t| t.outcome.is_completed())
        .count();
    let mut summary = format!(
        concat!(
            "{{\"kind\":\"summary\",\"completed\":{},\"degraded\":{},",
            "\"failed\":{},\"retried\":{},\"quarantined\":{},",
            "\"cache\":{{\"node_hits\":{},\"node_misses\":{},",
            "\"edge_hits\":{},\"edge_misses\":{},\"snapshot_warm\":{}}},",
            "\"prewarm_seconds\":{:.6},\"repair_seconds\":{:.6}}}"
        ),
        completed,
        r.degraded,
        r.failed,
        r.retried,
        r.quarantined,
        report.cache.node_hits,
        report.cache.node_misses,
        report.cache.edge_hits,
        report.cache.edge_misses,
        report.cache.snapshot_warm,
        report.timing.prewarm.as_secs_f64(),
        report.timing.repair.as_secs_f64(),
    );
    // Only retained traces get their id echoed: a discarded capture's id
    // would 404 on /v1/traces/{id}. Determinism note: the concurrency
    // suite byte-compares data lines, not the summary, so this field is
    // free to vary per request.
    if let Some(id) = trace_id {
        summary.pop();
        summary.push_str(",\"trace_id\":\"");
        summary.push_str(id);
        summary.push_str("\"}");
    }
    lines.push(summary);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{build_state, KbSpec, ServeConfig};
    use dr_core::RegistryConfig;
    use dr_obs::Obs;
    use std::sync::Arc;

    fn test_state() -> ServerState {
        build_state(
            &[KbSpec::NobelMini],
            RegistryConfig::default(),
            Arc::new(Obs::new()),
            ServeConfig::default(),
        )
        .expect("state builds")
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
            http11: true,
        }
    }

    fn post_csv(path: &str, query: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: query.into(),
            headers: vec![("content-type".into(), "text/csv".into())],
            body: body.as_bytes().to_vec(),
            http11: true,
        }
    }

    #[test]
    fn health_metrics_and_kbs_respond() {
        let state = test_state();
        let health = handle(&state, &get("/healthz"));
        assert_eq!(health.status, 200);
        let text = String::from_utf8(health.body_bytes()).unwrap();
        assert!(text.contains("\"status\":\"ok\""), "{text}");

        let kbs = handle(&state, &get("/kbs"));
        let text = String::from_utf8(kbs.body_bytes()).unwrap();
        assert!(text.contains("\"name\":\"nobel-mini\""), "{text}");
        assert!(text.contains("\"attrs\":[\"Name\""), "{text}");

        let metrics = handle(&state, &get("/metrics"));
        let text = String::from_utf8(metrics.body_bytes()).unwrap();
        // The handler's own counter from the /healthz call above.
        assert!(text.contains("serve_requests_total"), "{text}");
    }

    #[test]
    fn unknown_routes_and_methods_are_typed_errors() {
        let state = test_state();
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(handle(&state, &get("/v1/repair/nobel-mini")).status, 405);
        assert_eq!(
            handle(&state, &post_csv("/v1/repair/unknown", "", "Name\nx")).status,
            404
        );
    }

    #[test]
    fn repair_streams_header_tuples_and_summary() {
        let state = test_state();
        // Table 1 row 1: Hershko with the published errors (wrong prize
        // and a city that is not in his country).
        let body = "Name,DOB,Country,Prize,Institution,City\n\
                    Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag\n";
        let resp = handle(
            &state,
            &post_csv("/v1/repair/nobel-mini", "label=test", body),
        );
        assert_eq!(resp.status, 200);
        let Body::Lines(lines) = &resp.body else {
            panic!("repair must stream NDJSON")
        };
        assert!(lines[0].contains("\"kind\":\"header\""), "{}", lines[0]);
        assert!(lines[0].contains("\"rows\":1"), "{}", lines[0]);
        let tuple = &lines[1];
        assert!(tuple.contains("\"kind\":\"tuple\""), "{tuple}");
        assert!(tuple.contains("\"outcome\":\"completed\""), "{tuple}");
        let last = lines.last().unwrap();
        assert!(last.contains("\"kind\":\"summary\""), "{last}");
        assert!(last.contains("\"completed\":1"), "{last}");

        // Metrics recorded under the request label.
        let snap = state.obs.metrics().snapshot();
        assert_eq!(snap.counter_total("serve_requests_total"), 1);
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "serve_repair_seconds" && h.labels.contains("test")));
    }

    #[test]
    fn repair_rejects_bad_inputs() {
        let state = test_state();
        let wrong_schema = post_csv("/v1/repair/nobel-mini", "", "A,B\n1,2\n");
        let resp = handle(&state, &wrong_schema);
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(text.contains("schema mismatch"), "{text}");

        let empty = post_csv(
            "/v1/repair/nobel-mini",
            "",
            "Name,DOB,Country,Prize,Institution,City\n",
        );
        assert_eq!(handle(&state, &empty).status, 400);

        let bad_label = post_csv(
            "/v1/repair/nobel-mini",
            "label=no%20way",
            "Name,DOB,Country,Prize,Institution,City\nx,1,2,3,4,5\n",
        );
        assert_eq!(handle(&state, &bad_label).status, 400);

        let bad_param = post_csv(
            "/v1/repair/nobel-mini",
            "deadline_ms=abc",
            "Name,DOB,Country,Prize,Institution,City\nx,1,2,3,4,5\n",
        );
        assert_eq!(handle(&state, &bad_param).status, 400);
    }

    fn post_tsv(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            headers: vec![("content-type".into(), "text/tab-separated-values".into())],
            body: body.as_bytes().to_vec(),
            http11: true,
        }
    }

    fn delete(path: &str) -> Request {
        Request {
            method: "DELETE".into(),
            path: path.into(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
            http11: true,
        }
    }

    #[test]
    fn delta_endpoint_bumps_generation_and_repair_reflects_it() {
        let state = test_state();
        let kbs_before = String::from_utf8(handle(&state, &get("/kbs")).body_bytes()).unwrap();
        assert!(kbs_before.contains("\"generation\":"), "{kbs_before}");

        // Pre-delta: φ2 repairs Hershko's City from Karcag to Haifa via
        // `Technion locatedIn Haifa`.
        let body = "Name,DOB,Country,Prize,Institution,City\n\
                    Avram Hershko,1937-12-31,Israel,Nobel Prize in Chemistry,Israel Institute of Technology,Karcag\n";
        let resp = handle(&state, &post_csv("/v1/repair/nobel-mini", "", body));
        assert_eq!(resp.status, 200);
        let before = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(
            before.contains("\"new\":\"Haifa\""),
            "pre-delta repair lands on Haifa: {before}"
        );

        // Retarget the institution's locatedIn edge: Haifa is no longer
        // derivable for this row.
        let delta = "retract\tIsrael Institute of Technology\tlocatedIn\ti:Haifa\n\
                     insert\tIsrael Institute of Technology\tlocatedIn\ti:Karcag\n";
        let resp = handle(&state, &post_tsv("/v1/kbs/nobel-mini/delta", delta));
        assert_eq!(
            resp.status,
            200,
            "{}",
            String::from_utf8(resp.body_bytes()).unwrap()
        );
        let text = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(text.contains("\"kb\":\"nobel-mini\""), "{text}");
        assert!(text.contains("\"ops\":2"), "{text}");
        assert!(text.contains("\"generation\":"), "{text}");

        let kbs_after = String::from_utf8(handle(&state, &get("/kbs")).body_bytes()).unwrap();
        assert_ne!(
            kbs_before, kbs_after,
            "generation bump must be visible in /kbs"
        );

        // Post-delta: the same request no longer repairs to Haifa — the
        // swept value-cache entries were recomputed against the new edge,
        // and City=Karcag is now the consistent value.
        let resp = handle(&state, &post_csv("/v1/repair/nobel-mini", "", body));
        assert_eq!(resp.status, 200);
        let after = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(
            !after.contains("\"new\":\"Haifa\""),
            "post-delta repair must not resurrect the retracted edge: {after}"
        );

        let snap = state.obs.metrics().snapshot();
        assert_eq!(snap.counter_total("kb_delta_applied_total"), 1);
        // The exported sweep counter reconciles with the registry's own
        // stats, and the pre-delta repair made at least one entry sweepable
        // (its footprint covered the retargeted locatedIn edge).
        let invalidated = state.registry.stats().invalidated_entries;
        assert!(invalidated > 0, "delta swept intersecting entries");
        assert_eq!(
            snap.counter_total("cache_invalidated_entries_total"),
            invalidated
        );
    }

    #[test]
    fn delta_endpoint_rejects_bad_bodies() {
        let state = test_state();
        assert_eq!(
            handle(&state, &post_tsv("/v1/kbs/nobel-mini/delta", "")).status,
            400,
            "empty delta"
        );
        assert_eq!(
            handle(&state, &post_tsv("/v1/kbs/nobel-mini/delta", "bogus\tx\n")).status,
            400,
            "unknown op"
        );
        assert_eq!(
            handle(&state, &post_tsv("/v1/kbs/missing/delta", "sub+\tA\tB\n")).status,
            404
        );
        assert_eq!(
            handle(&state, &get("/v1/kbs/nobel-mini/delta")).status,
            405,
            "delta requires POST"
        );
        // A self-cycle is validated and rejected with the KB untouched.
        let resp = handle(
            &state,
            &post_tsv("/v1/kbs/nobel-mini/delta", "sub+\tA\tB\nsub+\tB\tA\n"),
        );
        assert_eq!(resp.status, 400);
        let text = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(text.contains("rejected"), "{text}");
    }

    #[test]
    fn unload_releases_the_kb_and_later_requests_404() {
        let state = test_state();
        let resp = handle(&state, &delete("/v1/kbs/nobel-mini"));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(text.contains("\"unloaded\":true"), "{text}");

        assert_eq!(handle(&state, &delete("/v1/kbs/nobel-mini")).status, 404);
        assert_eq!(
            handle(
                &state,
                &post_csv(
                    "/v1/repair/nobel-mini",
                    "",
                    "Name,DOB,Country,Prize,Institution,City\nx,1,2,3,4,5\n"
                )
            )
            .status,
            404
        );
        assert_eq!(
            handle(
                &state,
                &post_tsv("/v1/kbs/nobel-mini/delta", "sub+\tA\tB\n")
            )
            .status,
            404
        );
        let kbs = String::from_utf8(handle(&state, &get("/kbs")).body_bytes()).unwrap();
        assert!(!kbs.contains("nobel-mini"), "{kbs}");
        assert_eq!(state.registry.stats().live_caches, 0, "caches evicted");
    }

    #[test]
    fn repair_accepts_json_bodies() {
        let state = test_state();
        let body = r#"[["Name","DOB","Country","Prize","Institution","City"],
                       ["Marie Curie","1867-11-07","France","Nobel Prize in Chemistry","Paster Institute","Paris"]]"#;
        let req = Request {
            method: "POST".into(),
            path: "/v1/repair/nobel-mini".into(),
            query: String::new(),
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.as_bytes().to_vec(),
            http11: true,
        };
        let resp = handle(&state, &req);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body_bytes()).unwrap();
        assert!(text.contains("\"kind\":\"summary\""), "{text}");
    }
}
