//! Admission control and acceptor backoff — the overload half of the
//! service survival layer (DESIGN.md §9).
//!
//! A service carrying heavy traffic must shed excess load at the door, not
//! queue it unboundedly: every request admitted past the machine's
//! capacity makes *every* in-flight request slower, and an unbounded queue
//! converts a traffic spike into minutes of stale work after the spike has
//! passed. The [`AdmissionGate`] enforces a hard in-flight cap per route
//! class with a *bounded* wait: a request that cannot get a permit within
//! the configured queue window — or that arrives when the queue itself is
//! full — is shed immediately with `429 Retry-After`, which is cheap for
//! the server and actionable for the client (its own
//! [`RetryPolicy`](dr_core::RetryPolicy)-shaped backoff can kick in).
//!
//! Three metrics make the gate observable and are reconciled by
//! `exp_serve_chaos` against client-side observations:
//! `serve_inflight{route}` (gauge), `serve_shed_total{route,reason}`
//! (counter), and `serve_queue_wait_seconds` (histogram over *admitted*
//! requests' queue time).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use dr_obs::{Counter, Gauge, Histogram, MetricRegistry};

/// Admission tunables, fixed at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Max repair requests in flight (being repaired) at once.
    /// `0` = auto: `max(8, 2 × available cores)`.
    pub max_inflight_repairs: usize,
    /// Max repair requests allowed to *wait* for a permit beyond the
    /// in-flight cap. Arrivals past this queue are shed instantly.
    /// `0` = auto: `2 × max_inflight_repairs`.
    pub max_queue: usize,
    /// Longest a queued request waits for a permit before being shed.
    pub queue_wait: Duration,
    /// `Retry-After` value (seconds) sent with sheds.
    pub retry_after_secs: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_inflight_repairs: 0,
            max_queue: 0,
            queue_wait: Duration::from_secs(2),
            retry_after_secs: 1,
        }
    }
}

impl AdmissionConfig {
    fn resolved_limit(&self) -> usize {
        if self.max_inflight_repairs > 0 {
            return self.max_inflight_repairs;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        (2 * cores).max(8)
    }

    fn resolved_queue(&self) -> usize {
        if self.max_queue > 0 {
            self.max_queue
        } else {
            2 * self.resolved_limit()
        }
    }
}

/// Why a request was shed (the `reason` label on `serve_shed_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue was already full on arrival.
    QueueFull,
    /// A permit did not free up within the queue-wait window.
    Timeout,
}

impl ShedReason {
    fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Timeout => "timeout",
        }
    }
}

/// The outcome of [`AdmissionGate::acquire`].
pub enum Admission<'a> {
    /// Admitted; drop the permit when the request's work is done.
    Granted(Permit<'a>),
    /// Shed; answer `429` with the given `Retry-After` seconds.
    Shed {
        /// Why the request was shed.
        reason: ShedReason,
        /// Seconds the client should wait before retrying.
        retry_after_secs: u32,
    },
}

struct GateState {
    inflight: usize,
    queued: usize,
}

/// A bounded in-flight permit gate for the repair route.
///
/// Light routes (`/healthz`, `/readyz`, `/metrics`, `/kbs`) bypass the
/// gate entirely — an overloaded server that cannot answer its own health
/// and metrics probes is indistinguishable from a dead one, which defeats
/// the point of shedding.
pub struct AdmissionGate {
    limit: usize,
    max_queue: usize,
    queue_wait: Duration,
    retry_after_secs: u32,
    state: Mutex<GateState>,
    freed: Condvar,
    inflight_gauge: Gauge,
    shed_queue_full: Counter,
    shed_timeout: Counter,
    queue_wait_hist: Histogram,
}

impl AdmissionGate {
    /// Builds the gate and registers its metric cells.
    pub fn new(config: AdmissionConfig, metrics: &MetricRegistry) -> Self {
        let limit = config.resolved_limit();
        Self {
            limit,
            max_queue: config.resolved_queue(),
            queue_wait: config.queue_wait,
            retry_after_secs: config.retry_after_secs,
            state: Mutex::new(GateState {
                inflight: 0,
                queued: 0,
            }),
            freed: Condvar::new(),
            inflight_gauge: metrics.gauge("serve_inflight", &[("route", "repair")]),
            shed_queue_full: metrics.counter(
                "serve_shed_total",
                &[
                    ("route", "repair"),
                    ("reason", ShedReason::QueueFull.label()),
                ],
            ),
            shed_timeout: metrics.counter(
                "serve_shed_total",
                &[("route", "repair"), ("reason", ShedReason::Timeout.label())],
            ),
            queue_wait_hist: metrics.histogram("serve_queue_wait_seconds", &[]),
        }
    }

    /// The resolved in-flight cap.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Current in-flight count (for tests and `exp_serve_chaos` gates).
    pub fn inflight(&self) -> usize {
        self.lock_state().inflight
    }

    // The vendored `parking_lot` shim has no Condvar, so the gate sits on
    // `std::sync` directly; the gate never relies on poisoning (a panic
    // while holding the lock leaves plain counters, not broken invariants).
    fn lock_state(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to admit one repair request, waiting at most the configured
    /// queue window for a permit.
    pub fn acquire(&self) -> Admission<'_> {
        let arrived = Instant::now();
        let deadline = arrived + self.queue_wait;
        let mut state = self.lock_state();
        if state.inflight < self.limit {
            state.inflight += 1;
            let inflight = state.inflight;
            drop(state);
            return self.granted(inflight, arrived);
        }
        if state.queued >= self.max_queue {
            drop(state);
            return self.shed(ShedReason::QueueFull);
        }
        state.queued += 1;
        loop {
            if state.inflight < self.limit {
                state.inflight += 1;
                state.queued -= 1;
                let inflight = state.inflight;
                drop(state);
                return self.granted(inflight, arrived);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                state.queued -= 1;
                drop(state);
                return self.shed(ShedReason::Timeout);
            }
            let (guard, timeout) = self
                .freed
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timeout.timed_out() {
                // Re-check once: the permit may have freed exactly at the
                // deadline and the notification raced the timeout.
                if state.inflight < self.limit {
                    state.inflight += 1;
                    state.queued -= 1;
                    let inflight = state.inflight;
                    drop(state);
                    return self.granted(inflight, arrived);
                }
                state.queued -= 1;
                drop(state);
                return self.shed(ShedReason::Timeout);
            }
        }
    }

    fn granted(&self, inflight: usize, arrived: Instant) -> Admission<'_> {
        self.inflight_gauge.set(inflight as u64);
        self.queue_wait_hist.record(arrived.elapsed());
        Admission::Granted(Permit { gate: self })
    }

    fn shed(&self, reason: ShedReason) -> Admission<'_> {
        match reason {
            ShedReason::QueueFull => self.shed_queue_full.inc(),
            ShedReason::Timeout => self.shed_timeout.inc(),
        }
        Admission::Shed {
            reason,
            retry_after_secs: self.retry_after_secs,
        }
    }

    fn release(&self) {
        let mut state = self.lock_state();
        state.inflight -= 1;
        self.inflight_gauge.set(state.inflight as u64);
        drop(state);
        self.freed.notify_one();
    }
}

/// An admitted request's permit; releasing it (on drop) wakes one queued
/// waiter.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Escalating backoff for transient `accept()` failures (EMFILE, ENFILE,
/// ECONNABORTED under SYN floods, ...).
///
/// Before this existed, any persistent accept error — most plausibly file
/// descriptor exhaustion, which does *not* clear by retrying — spun the
/// acceptor thread at 100% CPU, stealing exactly the resource the server
/// needed to drain existing connections and free descriptors. The backoff
/// sleeps 1 ms after a first failure and doubles per consecutive failure
/// up to 100 ms, logging once per error streak (first failure and then
/// whenever the cap is reached for the first time would still be one line;
/// we keep it to exactly one line per streak to stay quiet under floods).
#[derive(Debug)]
pub struct AcceptBackoff {
    delay: Duration,
    logged: bool,
}

/// First sleep after an accept error.
const ACCEPT_BACKOFF_INITIAL: Duration = Duration::from_millis(1);
/// Ceiling for the accept-error sleep.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

impl Default for AcceptBackoff {
    fn default() -> Self {
        Self::new()
    }
}

impl AcceptBackoff {
    /// A fresh (reset) backoff.
    pub fn new() -> Self {
        Self {
            delay: ACCEPT_BACKOFF_INITIAL,
            logged: false,
        }
    }

    /// Called on an `accept()` error: returns how long the acceptor should
    /// sleep before retrying, and whether this error should be logged
    /// (true exactly once per error streak).
    pub fn on_error(&mut self) -> (Duration, bool) {
        let delay = self.delay;
        self.delay = (self.delay * 2).min(ACCEPT_BACKOFF_MAX);
        let log = !self.logged;
        self.logged = true;
        (delay, log)
    }

    /// Called on a successful accept: resets the streak.
    pub fn on_success(&mut self) {
        self.delay = ACCEPT_BACKOFF_INITIAL;
        self.logged = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_obs::Obs;
    use std::sync::Arc;

    fn gate(limit: usize, queue: usize, wait_ms: u64) -> (Arc<Obs>, AdmissionGate) {
        let obs = Arc::new(Obs::new());
        let gate = AdmissionGate::new(
            AdmissionConfig {
                max_inflight_repairs: limit,
                max_queue: queue,
                queue_wait: Duration::from_millis(wait_ms),
                retry_after_secs: 3,
            },
            obs.metrics(),
        );
        (obs, gate)
    }

    #[test]
    fn grants_up_to_limit_then_sheds() {
        let (obs, gate) = gate(2, 0, 10);
        // max_queue auto-resolves to 2 * limit = 4; fill in-flight first.
        let p1 = match gate.acquire() {
            Admission::Granted(p) => p,
            _ => panic!("first acquire grants"),
        };
        let _p2 = match gate.acquire() {
            Admission::Granted(p) => p,
            _ => panic!("second acquire grants"),
        };
        assert_eq!(gate.inflight(), 2);
        // Third queues and times out (nobody releases within 10 ms).
        match gate.acquire() {
            Admission::Shed {
                reason,
                retry_after_secs,
            } => {
                assert_eq!(reason, ShedReason::Timeout);
                assert_eq!(retry_after_secs, 3);
            }
            _ => panic!("over-limit acquire must shed"),
        }
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter_total("serve_shed_total"), 1);
        // Release one; the next acquire is instant.
        drop(p1);
        let p3 = match gate.acquire() {
            Admission::Granted(p) => p,
            _ => panic!("freed permit admits the next acquire"),
        };
        assert_eq!(gate.inflight(), 2);
        drop(p3);
    }

    #[test]
    fn queue_full_sheds_immediately() {
        let (obs, gate) = gate(1, 1, 200);
        let _p = match gate.acquire() {
            Admission::Granted(p) => p,
            _ => panic!("grants"),
        };
        // One waiter occupies the queue slot in a thread...
        std::thread::scope(|s| {
            s.spawn(|| {
                // This one waits the full 200 ms window and sheds on
                // timeout (the permit is held for the whole test).
                assert!(matches!(
                    gate.acquire(),
                    Admission::Shed {
                        reason: ShedReason::Timeout,
                        ..
                    }
                ));
            });
            // ...so an arrival while the queue is occupied sheds at once,
            // well before the 200 ms wait window.
            std::thread::sleep(Duration::from_millis(50));
            let started = Instant::now();
            assert!(matches!(
                gate.acquire(),
                Admission::Shed {
                    reason: ShedReason::QueueFull,
                    ..
                }
            ));
            assert!(started.elapsed() < Duration::from_millis(100));
        });
        let snap = obs.metrics().snapshot();
        assert_eq!(
            snap.counter("serve_shed_total", "route=\"repair\",reason=\"queue_full\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("serve_shed_total", "route=\"repair\",reason=\"timeout\""),
            Some(1)
        );
    }

    #[test]
    fn queued_request_is_admitted_when_a_permit_frees() {
        let (_obs, gate) = gate(1, 2, 5_000);
        let p1 = match gate.acquire() {
            Admission::Granted(p) => p,
            _ => panic!("grants"),
        };
        std::thread::scope(|s| {
            let h = s.spawn(|| match gate.acquire() {
                Admission::Granted(_) => true,
                Admission::Shed { .. } => false,
            });
            std::thread::sleep(Duration::from_millis(30));
            drop(p1);
            assert!(h.join().unwrap(), "freed permit admits the waiter");
        });
        assert_eq!(gate.inflight(), 0, "all permits released");
    }

    #[test]
    fn auto_limits_resolve_sanely() {
        let config = AdmissionConfig::default();
        assert!(config.resolved_limit() >= 8);
        assert_eq!(config.resolved_queue(), 2 * config.resolved_limit());
        let fixed = AdmissionConfig {
            max_inflight_repairs: 3,
            max_queue: 7,
            ..AdmissionConfig::default()
        };
        assert_eq!(fixed.resolved_limit(), 3);
        assert_eq!(fixed.resolved_queue(), 7);
    }

    #[test]
    fn accept_backoff_doubles_caps_and_logs_once_per_streak() {
        let mut b = AcceptBackoff::new();
        let (d1, log1) = b.on_error();
        assert_eq!(d1, Duration::from_millis(1));
        assert!(log1, "first error of a streak logs");
        let (d2, log2) = b.on_error();
        assert_eq!(d2, Duration::from_millis(2));
        assert!(!log2, "rest of the streak is quiet");
        let mut last = d2;
        for _ in 0..10 {
            let (d, log) = b.on_error();
            assert!(!log);
            assert!(d >= last);
            last = d;
        }
        assert_eq!(last, Duration::from_millis(100), "capped at 100 ms");
        b.on_success();
        let (d, log) = b.on_error();
        assert_eq!(d, Duration::from_millis(1), "success resets the streak");
        assert!(log, "new streak logs again");
    }
}
