//! A minimal HTTP/1.1 layer over `std::net` — request parsing, response
//! writing, chunked streaming, keep-alive.
//!
//! The build environment is fully offline, so there is no tokio/hyper to
//! lean on; the server is thread-per-connection over blocking sockets,
//! which is exactly right for a repair service whose requests each fan out
//! over the work-stealing scheduler anyway (DESIGN.md §5). The subset
//! implemented is what the service needs and nothing more: request line +
//! headers + `Content-Length` bodies in, fixed or chunked responses out,
//! HTTP/1.1 persistent connections with explicit `Connection` semantics
//! (the connection loop in `lib.rs` owns the idle-timeout and
//! requests-per-connection policy; this layer only parses the client's
//! preference and stamps the decision onto responses).
//!
//! Failure mapping (DESIGN.md §9): a read that times out mid-request is
//! `408 Request Timeout`; a body above the cap is `413`; an oversized
//! header block is `431`; everything else malformed is `400`. A peer that
//! connects and never sends a byte is closed silently — that is a probe or
//! an idle keep-alive connection, not an error.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (64 MiB) — a relation upload, not a bulk
/// load; bigger inputs belong in files and the eval binaries.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted header block (64 KiB).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// Socket read/write timeout: a stalled client must not pin a worker
/// thread forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Path without the query string (`/v1/repair/nobel`).
    pub path: String,
    /// Raw query string (`deadline_ms=50&label=warm`), empty if none.
    pub query: String,
    /// Headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty for bodiless requests).
    pub body: Vec<u8>,
    /// Whether the request line said `HTTP/1.1` (persistent by default)
    /// rather than `HTTP/1.0` (close by default).
    pub http11: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `key`, if present (no percent-decoding —
    /// the service's parameters are numbers and short labels).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// Whether the client asked (or defaulted) to keep the connection
    /// open: HTTP/1.1 unless `connection: close`, HTTP/1.0 only with an
    /// explicit `connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// A request-parse failure: the status code and message the connection
/// should answer with before closing.
#[derive(Debug)]
pub struct HttpError {
    /// Status to answer with (400, 408, 413, ...).
    pub status: u16,
    /// Human-readable reason, sent as the body.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn timeout(during: &str) -> Self {
        Self {
            status: 408,
            message: format!("timed out reading {during}"),
        }
    }
}

/// Whether an I/O error is a blocking-socket read timeout (both kinds,
/// because platforms disagree on which one `SO_RCVTIMEO` surfaces as).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from an open connection's reader. `Ok(None)` means
/// the peer closed — or went idle past the socket's read timeout — before
/// sending the first byte of a request (not an error: health probes
/// connect-and-close, and keep-alive clients idle out). A timeout *after*
/// bytes of a request have arrived is a half-sent request and maps to
/// `408`.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, HttpError> {
    let mut request_line = String::new();
    match read_limited_line(reader, &mut request_line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && request_line.is_empty() => return Ok(None),
        Err(e) if is_timeout(&e) => return Err(HttpError::timeout("request line")),
        Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
    }
    let mut parts = request_line.trim_end().splitn(3, ' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad_request("missing method"))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported version {version:?}"
        )));
    }
    let http11 = version.trim_end() != "HTTP/1.0";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        let n = read_limited_line(reader, &mut line).map_err(|e| {
            if is_timeout(&e) {
                HttpError::timeout("headers")
            } else {
                HttpError::bad_request(format!("read error: {e}"))
            }
        })?;
        if n == 0 {
            return Err(HttpError::bad_request("connection closed mid-headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                message: "header block too large".into(),
            });
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| HttpError::bad_request(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("body of {content_length} bytes exceeds {MAX_BODY_BYTES}"),
        });
    }
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError {
            status: 501,
            message: "chunked request bodies not supported; send content-length".into(),
        });
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if is_timeout(&e) {
            HttpError::timeout("body")
        } else {
            HttpError::bad_request(format!("short body: {e}"))
        }
    })?;

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        http11,
    }))
}

/// `read_line` with a hard per-line cap, so a malicious peer cannot grow an
/// unbounded buffer.
fn read_limited_line(
    reader: &mut BufReader<TcpStream>,
    out: &mut String,
) -> std::io::Result<usize> {
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = taken.read_line(out)?;
    if n > MAX_HEAD_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "line too long",
        ));
    }
    Ok(n)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "",
    }
}

fn write_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&'static str, String)],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
        status,
        status_text(status),
        content_type,
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(
        stream,
        "connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )
}

/// Writes a complete, fixed-length response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&'static str, String)],
) -> std::io::Result<()> {
    write_head(stream, status, content_type, keep_alive, extra_headers)?;
    write!(stream, "content-length: {}\r\n\r\n", body.len())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response in progress: the header block is already on
/// the wire, so each [`chunk`](Self::chunk) streams straight to the client
/// — repaired tuples go out as they are serialized, not buffered whole.
pub struct ChunkedResponse<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedResponse<'a> {
    /// Sends the status line + headers and switches to chunked encoding.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        keep_alive: bool,
        extra_headers: &[(&'static str, String)],
    ) -> std::io::Result<Self> {
        write_head(stream, status, content_type, keep_alive, extra_headers)?;
        write!(stream, "transfer-encoding: chunked\r\n\r\n")?;
        Ok(Self { stream })
    }

    /// Streams one chunk (empty input is skipped — an empty chunk would
    /// terminate the encoding).
    pub fn chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")
    }

    /// Terminates the chunked body and flushes.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
