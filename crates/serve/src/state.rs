//! Server state: named KBs pre-loaded at startup, the shared cache
//! registry, and the observability handle every request records into.
//!
//! Each `--kb` flag becomes a [`KbEntry`]: the knowledge base is built (or
//! generated) into an [`Arc`]-owned [`KbCore`] — the KB itself, its rule
//! set, and the shared match-index memo — behind a swap lock. Requests
//! clone the `Arc` and build a short-lived [`MatchContext`] over it, so a
//! `POST /v1/kbs/{kb}/delta` can install a *new* core (next KB generation,
//! fresh indexes) without touching in-flight repairs, and
//! `DELETE /v1/kbs/{kb}` releases the KB's memory once the last in-flight
//! handle drops. The entry's value cache is created through the shared
//! [`CacheRegistry`] so a `--cache-dir` snapshot warm-loads at boot rather
//! than on the first request.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dr_core::{CacheRegistry, IndexMemo, MatchContext, RegistryConfig, RepairBudget, RetryPolicy};
use dr_datasets::{KbProfile, NobelWorld, UisWorld};
use dr_kb::graph::KnowledgeBase;
use dr_kb::{KbDelta, KbRef, MappedKb};
use dr_obs::json::JsonObj;
use dr_obs::{
    parse_traceparent, ActiveTrace, MetricRegistry, Obs, Span, SpanCtx, TailPolicy, TraceId,
    TraceStore,
};
use dr_relation::Schema;
use parking_lot::{Mutex, RwLock};

use crate::admission::{AdmissionConfig, AdmissionGate};
use crate::http::Request;

/// A served KB, owned by `Arc` so a delta can swap in a successor
/// generation and an unload can release memory once the last in-flight
/// request drops its handle.
pub enum OwnedKb {
    /// An in-memory, builder-finalized KB (`--kb`). Deltas apply here.
    Mem(Arc<KnowledgeBase>),
    /// A memory-mapped `.drkb` image (`--kb-image`). Immutable: a delta
    /// against it is refused with `409`.
    Mapped(Arc<MappedKb>),
}

impl OwnedKb {
    /// A borrowed view for query/context construction.
    pub fn as_ref(&self) -> KbRef<'_> {
        match self {
            OwnedKb::Mem(kb) => KbRef::Mem(kb),
            OwnedKb::Mapped(kb) => KbRef::Mapped(kb),
        }
    }
}

/// One generation of a served KB: the graph, the rules compiled against
/// its id space, and the `(type, sim)` match-index memo shared by every
/// request context built over this generation.
pub struct KbCore {
    /// The knowledge base.
    pub kb: OwnedKb,
    /// Detective rules. Shared (not regenerated) across deltas: id
    /// interning is append-only, so `ClassId`/`PredId` stay valid in the
    /// successor generation.
    pub rules: Arc<Vec<dr_core::DetectiveRule>>,
    /// Match indexes built over this generation; a delta installs a fresh
    /// memo so no stale index survives the swap.
    pub memo: IndexMemo,
}

impl KbCore {
    /// Builds a request context over this core: shared indexes via the
    /// memo, value caches via the registry.
    pub fn context(&self, registry: Arc<CacheRegistry>, obs: Arc<Obs>) -> MatchContext<'_> {
        MatchContext::with_memo(self.kb.as_ref(), &self.memo, Some(registry)).with_obs(obs)
    }
}

/// The result of a successfully applied KB delta.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOutcome {
    /// The KB generation after the delta.
    pub generation: u64,
    /// Cache entries swept because their footprint intersected the delta.
    pub invalidated: u64,
}

/// Why a delta could not be applied.
#[derive(Debug)]
pub enum DeltaApplyError {
    /// The KB was unloaded (`DELETE /v1/kbs/{name}`).
    Unloaded,
    /// The KB is an immutable mmap image.
    Immutable,
    /// The delta itself was rejected (e.g. it would create a taxonomy
    /// cycle); the KB is untouched.
    Rejected(String),
}

/// One served knowledge base with everything a request needs.
pub struct KbEntry {
    /// Route name (`/v1/repair/{name}`).
    pub name: String,
    /// The canonical schema requests must match (attribute names, in
    /// order). The schema name also keys the cache fingerprint, so posted
    /// relations are re-homed onto this schema before repair.
    pub schema: Arc<Schema>,
    /// Health breaker: repeated repair failures mark this KB degraded in
    /// `/kbs` and fail requests fast instead of burning workers.
    pub health: Breaker,
    /// The current core, `None` once unloaded. Swapped whole on delta.
    core: RwLock<Option<Arc<KbCore>>>,
}

impl KbEntry {
    /// The current core, or `None` if the KB was unloaded.
    pub fn core(&self) -> Option<Arc<KbCore>> {
        self.core.read().clone()
    }

    /// Unloads the KB: takes the core out so new requests 404. Memory is
    /// released when the last in-flight `Arc<KbCore>` drops. Returns the
    /// removed core, or `None` if already unloaded.
    pub fn unload(&self) -> Option<Arc<KbCore>> {
        self.core.write().take()
    }

    /// Applies `delta` by cloning the current KB, mutating the clone, and
    /// swapping in a successor core (new generation, fresh index memo).
    ///
    /// The registry is told about the generation step so surviving value
    /// cache entries are re-keyed to the new generation and entries whose
    /// recorded footprint intersects the delta's are swept. In-flight
    /// requests keep repairing against the old core's `Arc`; they and the
    /// old core retire together.
    pub fn apply_delta(
        &self,
        delta: &KbDelta,
        registry: &CacheRegistry,
    ) -> Result<DeltaOutcome, DeltaApplyError> {
        let mut guard = self.core.write();
        let Some(core) = guard.as_ref() else {
            return Err(DeltaApplyError::Unloaded);
        };
        let OwnedKb::Mem(old_kb) = &core.kb else {
            return Err(DeltaApplyError::Immutable);
        };
        let old_generation = old_kb.generation();
        let mut new_kb = (**old_kb).clone();
        let fp = new_kb
            .apply_delta(delta)
            .map_err(|e| DeltaApplyError::Rejected(e.to_string()))?;
        let generation = new_kb.generation();
        let invalidated =
            registry.apply_delta(old_generation, generation, new_kb.content_hash(), &fp);
        let new_core = Arc::new(KbCore {
            kb: OwnedKb::Mem(Arc::new(new_kb)),
            rules: Arc::clone(&core.rules),
            memo: IndexMemo::new(),
        });
        // Prewarm the successor's indexes before publishing it, so the
        // first post-delta request pays no index-build stall (and no
        // stale index from the old generation can ever be consulted).
        MatchContext::with_memo(new_core.kb.as_ref(), &new_core.memo, None)
            .prewarm(&new_core.rules);
        *guard = Some(Arc::clone(&new_core));
        Ok(DeltaOutcome {
            generation,
            invalidated,
        })
    }
}

/// Server-wide tunables, fixed at startup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per repair request (0 = scheduler default).
    pub repair_threads: usize,
    /// Default per-tuple deadline when a request does not pass
    /// `deadline_ms` (None = unbounded).
    pub default_deadline: Option<Duration>,
    /// Default per-tuple step cap (0 = unbounded).
    pub default_max_steps: u64,
    /// Admission-control limits for the repair route.
    pub admission: AdmissionConfig,
    /// Default retry policy for `Failed` rows (overridable per request
    /// via `retry_attempts` / `retry_backoff_ms` / `retry_seed`).
    pub retry: RetryPolicy,
    /// Requests served on one keep-alive connection before the server
    /// forces a close (0 = unlimited).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may idle between requests.
    pub idle_timeout: Duration,
    /// How long the first request on a connection may take to arrive in
    /// full (request line + headers + body); a half-sent request past
    /// this gets `408`.
    pub header_timeout: Duration,
    /// Consecutive failed repairs (post-retry `failed > 0`) that trip a
    /// KB's breaker (0 = breaker disabled).
    pub breaker_threshold: u32,
    /// How long a tripped breaker fails fast before letting a probe
    /// request through.
    pub breaker_cooldown: Duration,
    /// Whether repair requests capture live span trees at all. Off means
    /// `?trace=1` is ignored and `/v1/traces` stays empty.
    pub trace_capture: bool,
    /// Tail-sampling latency threshold: captured traces at least this
    /// slow are retained (`None` disables the latency rule).
    pub trace_slow: Option<Duration>,
    /// Whether traces of requests with failed or degraded rows are
    /// retained.
    pub trace_errors: bool,
    /// Per-trace recorded-span cap (DESIGN.md §11 bounding satellite).
    pub trace_max_spans: usize,
    /// Retained traces kept in the `/v1/traces` ring.
    pub trace_store_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            repair_threads: 0,
            default_deadline: None,
            default_max_steps: 0,
            admission: AdmissionConfig::default(),
            retry: RetryPolicy::default(),
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(5),
            header_timeout: crate::http::IO_TIMEOUT,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(10),
            trace_capture: true,
            trace_slow: Some(Duration::from_millis(500)),
            trace_errors: true,
            trace_max_spans: dr_obs::DEFAULT_MAX_SPANS,
            trace_store_capacity: 64,
        }
    }
}

/// Where the server is in its life: serving, or draining toward exit.
///
/// `/readyz` reads [`is_draining`](Self::is_draining); the connection
/// loop counts every in-flight request through [`track`](Self::track) so
/// a drain can wait for the count to hit zero before flushing snapshots
/// and exiting (DESIGN.md §9).
#[derive(Debug, Default)]
pub struct Lifecycle {
    draining: AtomicBool,
    active: AtomicUsize,
}

impl Lifecycle {
    /// Flips the server to draining: `/readyz` goes 503, keep-alive
    /// connections close after their current response. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Registers an in-flight request; the guard deregisters on drop
    /// (including on panic, so a wedged handler cannot pin the count).
    pub fn track(&self) -> ActiveGuard<'_> {
        self.active.fetch_add(1, Ordering::AcqRel);
        ActiveGuard { lifecycle: self }
    }

    /// Requests currently in flight.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }
}

/// RAII handle for one in-flight request (see [`Lifecycle::track`]).
pub struct ActiveGuard<'a> {
    lifecycle: &'a Lifecycle,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.lifecycle.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Per-KB health breaker (DESIGN.md §9).
///
/// A KB whose repairs keep failing — a corrupted `.drkb` image, a rule
/// set that panics on this schema — should not have every request burn a
/// full scheduler fan-out (plus retries) just to report the same failure.
/// After `threshold` *consecutive* requests with failed rows the breaker
/// trips: requests fail fast with `503` and `/kbs` reports the KB
/// `degraded`. After `cooldown` one probe request is let through
/// (half-open); a clean probe resets the breaker, a failed one re-trips
/// it immediately.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
    trips: dr_obs::Counter,
    degraded: dr_obs::Gauge,
}

#[derive(Debug, Default)]
struct BreakerInner {
    consecutive_failures: u32,
    tripped_at: Option<Instant>,
}

impl Breaker {
    /// Builds a breaker and registers its `serve_breaker_trips_total` /
    /// `serve_kb_degraded` cells under the KB's name.
    pub fn new(
        threshold: u32,
        cooldown: Duration,
        metrics: &MetricRegistry,
        kb_name: &str,
    ) -> Self {
        Self {
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner::default()),
            trips: metrics.counter("serve_breaker_trips_total", &[("kb", kb_name)]),
            degraded: metrics.gauge("serve_kb_degraded", &[("kb", kb_name)]),
        }
    }

    /// Whether a request may proceed. A tripped breaker fails fast until
    /// its cooldown elapses, then admits probes (half-open: one more
    /// failure re-trips instantly, a success resets).
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut inner = self.inner.lock();
        match inner.tripped_at {
            None => true,
            Some(tripped) if tripped.elapsed() >= self.cooldown => {
                inner.tripped_at = None;
                inner.consecutive_failures = self.threshold.saturating_sub(1);
                self.degraded.set(0);
                true
            }
            Some(_) => false,
        }
    }

    /// Records one finished repair: `ok` when no rows failed post-retry.
    pub fn record(&self, ok: bool) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if ok {
            inner.consecutive_failures = 0;
            inner.tripped_at = None;
            self.degraded.set(0);
            return;
        }
        inner.consecutive_failures += 1;
        if inner.consecutive_failures >= self.threshold && inner.tripped_at.is_none() {
            inner.tripped_at = Some(Instant::now());
            self.trips.inc();
            self.degraded.set(1);
        }
    }

    /// Whether the breaker is currently tripped (the `/kbs` `health`
    /// field).
    pub fn is_degraded(&self) -> bool {
        self.inner.lock().tripped_at.is_some()
    }
}

/// Everything shared across connections, behind one `Arc`.
pub struct ServerState {
    /// Served KBs, in `--kb` flag order.
    pub entries: Vec<KbEntry>,
    /// Value-cache registry shared by every entry and request.
    pub registry: Arc<CacheRegistry>,
    /// Metrics + optional tracer; `/metrics` renders its live snapshot.
    pub obs: Arc<Obs>,
    /// Server start time, for `/healthz` uptime.
    pub started: Instant,
    /// Startup tunables.
    pub config: ServeConfig,
    /// Admission gate for the repair route (DESIGN.md §9).
    pub gate: AdmissionGate,
    /// Drain state + in-flight request count.
    pub lifecycle: Lifecycle,
    /// Tail-sampled retained traces (`/v1/traces`, DESIGN.md §11).
    pub traces: TraceStore,
}

/// A live capture armed for one request: the shared trace plus the root
/// `request` span guard. Finish the root, then [`ServerState::finish_trace`]
/// makes the tail-sampling call.
pub struct RequestTrace {
    /// The trace every span of this request records into.
    pub trace: Arc<ActiveTrace>,
    /// The root span covering the whole request.
    pub root: Span,
}

impl ServerState {
    /// Looks up a served KB by route name.
    pub fn entry(&self, name: &str) -> Option<&KbEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The per-request budget for the given overrides, falling back to
    /// the server defaults.
    pub fn budget(&self, deadline_ms: Option<u64>, max_steps: Option<u64>) -> RepairBudget {
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline);
        let max_steps = max_steps.unwrap_or(self.config.default_max_steps);
        let mut budget = RepairBudget::with_max_steps(max_steps);
        budget.deadline = deadline;
        budget
    }

    /// Arms a live span capture for one request, if capture is enabled.
    ///
    /// A `traceparent` request header adopts the caller's trace id (the
    /// remote parent span is kept as a root-span attribute — the stored
    /// root keeps a `null` parent so the tree is self-contained);
    /// `?trace=1` forces retention at tail-sampling time. The W3C sampled
    /// flag is *not* honored: retention here is the tail policy's call.
    pub fn start_trace(&self, req: &Request, route: &str, kb: &str) -> Option<RequestTrace> {
        if !self.config.trace_capture {
            return None;
        }
        let forced = matches!(req.query_param("trace"), Some("1") | Some("true"));
        let remote = req.header("traceparent").and_then(parse_traceparent);
        let id = remote
            .map(|(id, _, _)| id)
            .unwrap_or_else(TraceId::generate);
        let trace = Arc::new(ActiveTrace::new(id, self.config.trace_max_spans, forced));
        let mut root = SpanCtx::root(Arc::clone(&trace)).child("request");
        root.attr("route", route);
        root.attr("kb", kb);
        if let Some((_, parent, _)) = remote {
            root.attr("remote_parent", &parent.to_hex());
        }
        Some(RequestTrace { trace, root })
    }

    /// Tail-sampling decision for a finished capture (the root span must
    /// already be finished). Returns the trace id's hex when the trace was
    /// retained. Records `trace_retained_total{why}` and the live-surface
    /// `trace_dropped_spans_total`.
    pub fn finish_trace(
        &self,
        trace: &ActiveTrace,
        route: &str,
        kb: &str,
        error: bool,
    ) -> Option<String> {
        let metrics = self.obs.metrics();
        if trace.dropped() > 0 {
            metrics
                .counter("trace_dropped_spans_total", &[("surface", "live")])
                .add(trace.dropped());
        }
        let why = self.traces.offer(trace, route, kb, error)?;
        metrics
            .counter("trace_retained_total", &[("why", why)])
            .inc();
        Some(trace.id().to_hex())
    }
}

/// A parsed `--kb` flag value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbSpec {
    /// `nobel[:size[:seed]]` — synthetic Nobel world against a YAGO-like
    /// KB profile (defaults: 200 laureates, seed 7).
    Nobel {
        /// Laureate count.
        size: usize,
        /// World seed.
        seed: u64,
    },
    /// `uis[:size[:seed]]` — synthetic UIS world (defaults: 200 records,
    /// seed 7).
    Uis {
        /// Record count.
        size: usize,
        /// World seed.
        seed: u64,
    },
    /// `nobel-mini` — the paper's Table 1 / Figure 4 fixture KB.
    NobelMini,
    /// `--kb-image <family>=<path>` — boot from a packed `.drkb` image via
    /// mmap, skipping KB construction entirely. The family picks the
    /// schema and rule set the image is served with.
    Image {
        /// Which schema/rules the imaged KB speaks.
        family: ImageFamily,
        /// Path to the `.drkb` file.
        path: PathBuf,
    },
}

/// The schema/rule family an imaged KB belongs to. A `.drkb` file stores
/// only the graph; rules and the canonical relation schema come from the
/// family named on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageFamily {
    /// Nobel-laureate schema + rules.
    Nobel,
    /// UIS schema + rules.
    Uis,
    /// The paper's Table 1 / Figure 4 fixture schema + rules.
    NobelMini,
}

impl ImageFamily {
    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "nobel" => Ok(ImageFamily::Nobel),
            "uis" => Ok(ImageFamily::Uis),
            "nobel-mini" => Ok(ImageFamily::NobelMini),
            other => Err(format!(
                "unknown KB family {other:?} (expected nobel, uis, or nobel-mini)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ImageFamily::Nobel => "nobel",
            ImageFamily::Uis => "uis",
            ImageFamily::NobelMini => "nobel-mini",
        }
    }
}

impl KbSpec {
    /// Parses a `--kb` value. Accepted grammar:
    /// `nobel`, `nobel:500`, `nobel:500:42`, `uis[:size[:seed]]`,
    /// `nobel-mini`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or_default();
        let size = parts
            .next()
            .map(|s| {
                s.parse::<usize>()
                    .map_err(|_| format!("bad size {s:?} in --kb {spec:?}"))
            })
            .transpose()?
            .unwrap_or(200);
        let seed = parts
            .next()
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| format!("bad seed {s:?} in --kb {spec:?}"))
            })
            .transpose()?
            .unwrap_or(7);
        if parts.next().is_some() {
            return Err(format!("too many `:` fields in --kb {spec:?}"));
        }
        match head {
            "nobel" => Ok(KbSpec::Nobel { size, seed }),
            "uis" => Ok(KbSpec::Uis { size, seed }),
            "nobel-mini" => {
                if spec != "nobel-mini" {
                    return Err(format!("nobel-mini takes no parameters (got {spec:?})"));
                }
                Ok(KbSpec::NobelMini)
            }
            other => Err(format!(
                "unknown KB {other:?} (expected nobel, uis, or nobel-mini)"
            )),
        }
    }

    /// Parses a `--kb-image` value: `<family>=<path>`, e.g.
    /// `nobel-mini=/var/lib/dr/nobel-mini.drkb`.
    pub fn parse_image(spec: &str) -> Result<Self, String> {
        let (family, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--kb-image wants <family>=<path>, got {spec:?}"))?;
        if path.is_empty() {
            return Err(format!("empty path in --kb-image {spec:?}"));
        }
        Ok(KbSpec::Image {
            family: ImageFamily::parse(family)?,
            path: PathBuf::from(path),
        })
    }

    /// The route name the entry will be served under.
    pub fn name(&self) -> &'static str {
        match self {
            KbSpec::Nobel { .. } => "nobel",
            KbSpec::Uis { .. } => "uis",
            KbSpec::NobelMini => "nobel-mini",
            KbSpec::Image { family, .. } => family.name(),
        }
    }

    /// Which backend this spec boots: `"mem"` or `"mmap"` (the
    /// `kb_load_seconds` histogram label).
    pub fn backend(&self) -> &'static str {
        match self {
            KbSpec::Image { .. } => "mmap",
            _ => "mem",
        }
    }

    /// Builds the KB, schema, and rules for this spec. The KB is
    /// `Arc`-owned so deltas can swap generations and unload can release
    /// the memory.
    fn build(&self) -> Result<(OwnedKb, Arc<Schema>, Vec<dr_core::DetectiveRule>), String> {
        match *self {
            KbSpec::Nobel { size, seed } => {
                let world = NobelWorld::generate(size, seed);
                let kb = Arc::new(world.kb(&KbProfile::yago()));
                let rules = NobelWorld::rules(&*kb);
                Ok((OwnedKb::Mem(kb), NobelWorld::schema(), rules))
            }
            KbSpec::Uis { size, seed } => {
                let world = UisWorld::generate(size, seed);
                let kb = Arc::new(world.kb(&KbProfile::yago()));
                let rules = UisWorld::rules(&*kb);
                Ok((OwnedKb::Mem(kb), UisWorld::schema(), rules))
            }
            KbSpec::NobelMini => {
                let kb = Arc::new(dr_kb::fixtures::nobel_mini_kb());
                let rules = dr_core::fixtures::figure4_rules(&*kb);
                Ok((OwnedKb::Mem(kb), dr_core::fixtures::nobel_schema(), rules))
            }
            KbSpec::Image { family, ref path } => {
                let mapped = Arc::new(
                    MappedKb::open(path)
                        .map_err(|e| format!("--kb-image {}: {e}", path.display()))?,
                );
                let (schema, rules) = match family {
                    ImageFamily::Nobel => (NobelWorld::schema(), NobelWorld::rules(&*mapped)),
                    ImageFamily::Uis => (UisWorld::schema(), UisWorld::rules(&*mapped)),
                    ImageFamily::NobelMini => (
                        dr_core::fixtures::nobel_schema(),
                        dr_core::fixtures::figure4_rules(&*mapped),
                    ),
                };
                Ok((OwnedKb::Mapped(mapped), schema, rules))
            }
        }
    }
}

/// Builds the full server state: one entry per spec, prewarmed, with the
/// entry's value cache created eagerly so disk snapshots load at boot.
///
/// Duplicate spec names are rejected (two `--kb nobel:...` flags would
/// race for one route and one cache fingerprint).
pub fn build_state(
    specs: &[KbSpec],
    registry_config: RegistryConfig,
    obs: Arc<Obs>,
    config: ServeConfig,
) -> Result<ServerState, String> {
    let registry = Arc::new(CacheRegistry::new(registry_config));
    registry.register_metrics(obs.metrics());
    // The standard "what binary is this" gauge: always 1, the value lives
    // in the labels. `/healthz` carries the same version for humans.
    obs.metrics()
        .gauge(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "profile",
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ),
            ],
        )
        .set(1);

    let mut entries: Vec<KbEntry> = Vec::with_capacity(specs.len());
    for spec in specs {
        let name = spec.name().to_owned();
        if entries.iter().any(|e| e.name == name) {
            return Err(format!("duplicate --kb entry {name:?}"));
        }
        // The KB load/alignment phase, timed per backend: the histogram
        // is the greppable evidence that an mmap boot skips the parse
        // (`kb_load_seconds{backend="mmap"}` vs `backend="mem"`). The
        // trace event carries no duration — traces stay byte-deterministic
        // under a fixed seed; timings belong to the histogram.
        let load_started = Instant::now();
        let (kb, schema, rules) = spec.build()?;
        obs.metrics()
            .histogram("kb_load_seconds", &[("backend", spec.backend())])
            .record(load_started.elapsed());
        if let Some(tracer) = obs.tracer() {
            tracer.emit(
                JsonObj::new()
                    .str("ev", "kb_load")
                    .str("kb", &name)
                    .str("backend", spec.backend())
                    .num("instances", kb.as_ref().num_instances() as u64)
                    .num("edges", kb.as_ref().num_edges() as u64)
                    .finish(),
            );
        }
        let core = Arc::new(KbCore {
            kb,
            rules: Arc::new(rules),
            memo: IndexMemo::new(),
        });
        let ctx = core.context(Arc::clone(&registry), Arc::clone(&obs));
        ctx.prewarm(&core.rules);
        // Create the value cache now: a `--cache-dir` snapshot warm-loads
        // here, at boot, so the first request is already warm and
        // `/metrics` shows `snapshot_warm_loads_total` before any POST.
        let _ = ctx.value_cache_for(&schema);
        drop(ctx);
        let health = Breaker::new(
            config.breaker_threshold,
            config.breaker_cooldown,
            obs.metrics(),
            &name,
        );
        entries.push(KbEntry {
            name,
            schema,
            health,
            core: RwLock::new(Some(core)),
        });
    }
    if entries.is_empty() {
        return Err("no KBs configured; pass at least one --kb".into());
    }

    let gate = AdmissionGate::new(config.admission, obs.metrics());
    let traces = TraceStore::new(
        config.trace_store_capacity,
        TailPolicy {
            slow: config.trace_slow,
            keep_errors: config.trace_errors,
        },
    );
    Ok(ServerState {
        entries,
        registry,
        obs,
        started: Instant::now(),
        config,
        gate,
        lifecycle: Lifecycle::default(),
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_spec_grammar() {
        assert_eq!(
            KbSpec::parse("nobel").unwrap(),
            KbSpec::Nobel { size: 200, seed: 7 }
        );
        assert_eq!(
            KbSpec::parse("nobel:500:42").unwrap(),
            KbSpec::Nobel {
                size: 500,
                seed: 42
            }
        );
        assert_eq!(
            KbSpec::parse("uis:50").unwrap(),
            KbSpec::Uis { size: 50, seed: 7 }
        );
        assert_eq!(KbSpec::parse("nobel-mini").unwrap(), KbSpec::NobelMini);
        assert!(KbSpec::parse("nobel:x").is_err());
        assert!(KbSpec::parse("nobel:1:2:3").is_err());
        assert!(KbSpec::parse("nobel-mini:5").is_err());
        assert!(KbSpec::parse("freebase").is_err());
    }

    #[test]
    fn kb_image_spec_grammar() {
        assert_eq!(
            KbSpec::parse_image("nobel-mini=/tmp/x.drkb").unwrap(),
            KbSpec::Image {
                family: ImageFamily::NobelMini,
                path: PathBuf::from("/tmp/x.drkb"),
            }
        );
        assert_eq!(KbSpec::parse_image("uis=rel/a.drkb").unwrap().name(), "uis");
        assert!(KbSpec::parse_image("nobel-mini").is_err());
        assert!(KbSpec::parse_image("nobel-mini=").is_err());
        assert!(KbSpec::parse_image("freebase=/tmp/x.drkb").is_err());
        assert_eq!(KbSpec::parse_image("nobel=/a").unwrap().backend(), "mmap");
        assert_eq!(KbSpec::NobelMini.backend(), "mem");
    }

    #[test]
    fn image_spec_serves_like_memory() {
        let path = std::env::temp_dir().join(format!("dr-serve-image-{}.drkb", std::process::id()));
        let kb = dr_kb::fixtures::nobel_mini_kb();
        dr_kb::write_image(&path, &kb).expect("pack fixture");

        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::Image {
                family: ImageFamily::NobelMini,
                path: path.clone(),
            }],
            RegistryConfig::default(),
            Arc::clone(&obs),
            ServeConfig::default(),
        )
        .unwrap();
        let entry = state.entry("nobel-mini").expect("entry exists");
        let core = entry.core().expect("entry is loaded");
        assert_eq!(core.kb.as_ref().backend(), "mmap");
        assert_eq!(core.kb.as_ref().content_hash(), kb.content_hash());
        assert_eq!(core.kb.as_ref().num_instances(), kb.num_instances());
        assert!(!core.memo.is_empty(), "prewarm ran against the image");
        let dump = obs.metrics().snapshot().render_prom();
        assert!(
            dump.contains("kb_load_seconds") && dump.contains("backend=\"mmap\""),
            "kb_load_seconds{{backend=mmap}} recorded: {dump}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn image_spec_reports_open_errors() {
        let obs = Arc::new(Obs::new());
        let err = build_state(
            &[KbSpec::Image {
                family: ImageFamily::Nobel,
                path: PathBuf::from("/nonexistent/missing.drkb"),
            }],
            RegistryConfig::default(),
            obs,
            ServeConfig::default(),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("missing.drkb"), "{err}");
    }

    #[test]
    fn build_state_rejects_duplicates_and_empties() {
        let obs = Arc::new(Obs::new());
        let err = build_state(
            &[KbSpec::NobelMini, KbSpec::NobelMini],
            RegistryConfig::default(),
            Arc::clone(&obs),
            ServeConfig::default(),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");

        let err = build_state(&[], RegistryConfig::default(), obs, ServeConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("no KBs"), "{err}");
    }

    #[test]
    fn built_entries_are_prewarmed_and_cached() {
        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::NobelMini],
            RegistryConfig::default(),
            obs,
            ServeConfig::default(),
        )
        .unwrap();
        let entry = state.entry("nobel-mini").expect("entry exists");
        let core = entry.core().expect("entry is loaded");
        assert!(!core.memo.is_empty(), "prewarm built indexes");
        assert_eq!(state.registry.stats().live_caches, 1, "value cache created");
        assert!(state.entry("nobel").is_none());
    }

    #[test]
    fn delta_swaps_generation_and_keeps_old_core_alive() {
        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::NobelMini],
            RegistryConfig::default(),
            obs,
            ServeConfig::default(),
        )
        .unwrap();
        let entry = state.entry("nobel-mini").expect("entry exists");
        let core0 = entry.core().expect("loaded");
        let gen0 = core0.kb.as_ref().generation();

        let mut delta = KbDelta::new();
        delta.add_type("Test Laureate", dr_kb::fixtures::names::LAUREATE);
        let outcome = entry.apply_delta(&delta, &state.registry).expect("applies");
        assert_ne!(outcome.generation, gen0);

        let core1 = entry.core().expect("still loaded");
        assert_eq!(core1.kb.as_ref().generation(), outcome.generation);
        assert!(!core1.memo.is_empty(), "successor core is prewarmed");
        // The pre-delta handle keeps serving its own generation: in-flight
        // requests are unaffected by the swap.
        assert_eq!(core0.kb.as_ref().generation(), gen0);
    }

    #[test]
    fn rejected_delta_leaves_the_core_untouched() {
        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::NobelMini],
            RegistryConfig::default(),
            obs,
            ServeConfig::default(),
        )
        .unwrap();
        let entry = state.entry("nobel-mini").expect("entry exists");
        let gen0 = entry.core().expect("loaded").kb.as_ref().generation();

        let mut delta = KbDelta::new();
        delta.add_subclass("A", "B").add_subclass("B", "A");
        let err = entry.apply_delta(&delta, &state.registry).unwrap_err();
        assert!(matches!(err, DeltaApplyError::Rejected(_)), "{err:?}");
        assert_eq!(entry.core().expect("loaded").kb.as_ref().generation(), gen0);
    }

    #[test]
    fn unload_takes_the_core_and_refuses_further_work() {
        let obs = Arc::new(Obs::new());
        let state = build_state(
            &[KbSpec::NobelMini],
            RegistryConfig::default(),
            obs,
            ServeConfig::default(),
        )
        .unwrap();
        let entry = state.entry("nobel-mini").expect("entry exists");
        let removed = entry.unload().expect("first unload returns the core");
        assert!(entry.core().is_none());
        assert!(entry.unload().is_none(), "second unload is a no-op");

        let mut delta = KbDelta::new();
        delta.add_type("X", dr_kb::fixtures::names::LAUREATE);
        assert!(matches!(
            entry.apply_delta(&delta, &state.registry),
            Err(DeltaApplyError::Unloaded)
        ));
        drop(removed); // last handle: the KB's memory goes with it
    }

    #[test]
    fn budget_prefers_request_overrides() {
        let obs = Arc::new(Obs::new());
        let config = ServeConfig {
            default_deadline: Some(Duration::from_millis(250)),
            default_max_steps: 10,
            ..ServeConfig::default()
        };
        let state =
            build_state(&[KbSpec::NobelMini], RegistryConfig::default(), obs, config).unwrap();

        let b = state.budget(None, None);
        assert_eq!(b.deadline, Some(Duration::from_millis(250)));
        assert_eq!(b.max_steps, 10);

        let b = state.budget(Some(50), Some(3));
        assert_eq!(b.deadline, Some(Duration::from_millis(50)));
        assert_eq!(b.max_steps, 3);
    }
}
