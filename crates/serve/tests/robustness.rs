//! Survival-layer integration tests (DESIGN.md §9), feature-free so they
//! run in the tier-1 suite: the 408/413/431 failure-mapping matrix over
//! raw sockets, keep-alive semantics (reuse, request caps, idle timeouts),
//! mid-stream client disconnects, admission shedding, breaker transitions,
//! and graceful drain. The seeded-fault versions of these scenarios live
//! in `exp_serve_chaos` (`--features fault-injection`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dr_core::RegistryConfig;
use dr_obs::Obs;
use dr_serve::client::{self, Connection};
use dr_serve::{build_state, Admission, Breaker, KbSpec, ServeConfig, Server};

fn boot_with(config: ServeConfig) -> (Server, Arc<Obs>) {
    let obs = Arc::new(Obs::new());
    let state = build_state(
        &[KbSpec::NobelMini],
        RegistryConfig::default(),
        Arc::clone(&obs),
        config,
    )
    .expect("state builds");
    let server = Server::bind("127.0.0.1:0", state, 2).expect("bind port 0");
    (server, obs)
}

fn boot() -> (Server, Arc<Obs>) {
    boot_with(ServeConfig::default())
}

const CSV_HEADER: &str = "Name,DOB,Country,Prize,Institution,City\n";
const CSV_ROW: &str = "Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,\
                       Israel Institute of Technology,Karcag\n";

fn csv_body(rows: usize) -> String {
    let mut out = String::from(CSV_HEADER);
    for _ in 0..rows {
        out.push_str(CSV_ROW);
    }
    out
}

/// Sends `raw` bytes and reads whatever the server answers until close.
fn raw_roundtrip(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(raw).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).ok();
    out
}

/// The failure-mapping matrix: each malformed or abusive request gets its
/// typed status, on a fresh connection each time, and the server stays up
/// throughout.
#[test]
fn failure_mapping_matrix_over_raw_sockets() {
    let (server, _obs) = boot_with(ServeConfig {
        // Tight header window so the timeout legs run in test time.
        header_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // 413: a content-length over the cap is refused from the headers
    // alone — no body bytes are read or needed.
    let resp = raw_roundtrip(
        addr,
        format!(
            "POST /v1/repair/nobel-mini HTTP/1.1\r\nhost: t\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n",
            (64 << 20) + 1
        )
        .as_bytes(),
    );
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");

    // 431: a header block over the 64 KiB cap (many valid-sized lines —
    // one absurdly long line is cut off by the per-line cap as a 400).
    let mut huge_head = String::from("GET /healthz HTTP/1.1\r\nhost: t\r\n");
    for i in 0..200 {
        huge_head.push_str(&format!("x-pad-{i}: {}\r\n", "a".repeat(512)));
    }
    huge_head.push_str("\r\n");
    let resp = raw_roundtrip(addr, huge_head.as_bytes());
    assert!(resp.starts_with("HTTP/1.1 431 "), "{resp}");

    // 408: a half-sent request line times out as a typed error...
    let resp = raw_roundtrip(addr, b"POST /v1/re");
    assert!(resp.starts_with("HTTP/1.1 408 "), "{resp}");

    // ...and so does a body that never arrives in full.
    let resp = raw_roundtrip(
        addr,
        b"POST /v1/repair/nobel-mini HTTP/1.1\r\nhost: t\r\n\
          content-length: 100\r\n\r\nonly-a-few-bytes",
    );
    assert!(resp.starts_with("HTTP/1.1 408 "), "{resp}");

    // A connect-and-close probe gets silence, not an error response.
    let resp = raw_roundtrip(addr, b"");
    assert_eq!(resp, "", "probes are closed without a response");

    // 501: chunked request bodies are not implemented.
    let resp = raw_roundtrip(
        addr,
        b"POST /v1/repair/nobel-mini HTTP/1.1\r\nhost: t\r\n\
          transfer-encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501 "), "{resp}");

    // 400: a malformed header line.
    let resp = raw_roundtrip(addr, b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // After all of that, the server still serves.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    server.shutdown();
    server.join();
}

/// Keep-alive: one socket carries many requests; the per-connection cap
/// closes it with `connection: close` on the final allowed response.
#[test]
fn keepalive_reuses_and_caps_connections() {
    let (server, obs) = boot_with(ServeConfig {
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let mut conn = Connection::connect(addr).expect("connect");
    for i in 0..2 {
        let resp = conn.get("/healthz").expect("request");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("connection"),
            Some("keep-alive"),
            "request {i} keeps the connection"
        );
    }
    // Request 3 hits the cap: still served, but the server says close.
    let resp = conn.get("/healthz").expect("capped request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    // The socket is done; the next request on it fails.
    assert!(conn.get("/healthz").is_err(), "capped connection is closed");

    let snap = obs.metrics().snapshot();
    assert_eq!(snap.counter_total("serve_connections_total"), 1);
    assert_eq!(snap.counter_total("serve_keepalive_reuse_total"), 2);

    // HTTP/1.0 without keep-alive closes after one response; an explicit
    // `connection: close` on 1.1 is honored too (the one-shot client).
    let resp = client::get(addr, "/healthz").expect("one-shot");
    assert_eq!(resp.header("connection"), Some("close"));

    server.shutdown();
    server.join();
}

/// An idle keep-alive connection is closed silently once `idle_timeout`
/// passes — no 408, because no request had started.
#[test]
fn idle_keepalive_connections_are_reaped() {
    let (server, _obs) = boot_with(ServeConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let mut conn = Connection::connect(server.addr()).expect("connect");
    assert_eq!(conn.get("/healthz").expect("first").status, 200);
    std::thread::sleep(Duration::from_millis(400));
    // The server reaped the idle socket: either the send fails or the
    // read sees a clean EOF (an error either way, with no 408 bytes).
    assert!(conn.get("/healthz").is_err(), "idle connection was reaped");

    server.shutdown();
    server.join();
}

/// A client that disappears mid-stream costs one counter tick, not a
/// worker: the same server keeps serving afterwards.
#[test]
fn mid_stream_disconnect_is_counted_not_fatal() {
    let (server, obs) = boot();
    let addr = server.addr();

    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = csv_body(600); // a response far larger than one write
        write!(
            stream,
            "POST /v1/repair/nobel-mini?label=vanish HTTP/1.1\r\nhost: t\r\n\
             content-type: text/csv\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .expect("head");
        stream.write_all(body.as_bytes()).expect("body");
        // Vanish without reading a byte: the unread response turns the
        // close into a hard reset and the server's writes start failing.
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if obs
            .metrics()
            .snapshot()
            .counter_total("serve_client_disconnect_total")
            >= 1
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "serve_client_disconnect_total never moved"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The worker that took the hit is back on accept duty.
    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini",
        "text/csv",
        csv_body(1).as_bytes(),
    )
    .expect("server still serves");
    assert_eq!(resp.status, 200);

    server.shutdown();
    server.join();
}

/// Admission shedding over the wire: with the only permit held in-process,
/// a socket request bounces with `429` + `Retry-After` and the shed is
/// typed in the metrics; releasing the permit restores service.
#[test]
fn admission_sheds_with_429_and_retry_after() {
    let (server, obs) = boot_with(ServeConfig {
        admission: dr_serve::AdmissionConfig {
            max_inflight_repairs: 1,
            max_queue: 1,
            queue_wait: Duration::from_millis(50),
            retry_after_secs: 7,
        },
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let permit = match server.state().gate.acquire() {
        Admission::Granted(p) => p,
        Admission::Shed { .. } => panic!("empty gate grants"),
    };
    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini",
        "text/csv",
        csv_body(1).as_bytes(),
    )
    .expect("shed response");
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert_eq!(resp.header("retry-after"), Some("7"));
    assert_eq!(
        obs.metrics().snapshot().counter_total("serve_shed_total"),
        1
    );
    // Light routes bypass the gate even while repairs are saturated.
    assert_eq!(client::get(addr, "/healthz").expect("healthz").status, 200);
    assert_eq!(client::get(addr, "/metrics").expect("metrics").status, 200);

    drop(permit);
    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini",
        "text/csv",
        csv_body(1).as_bytes(),
    )
    .expect("admitted");
    assert_eq!(resp.status, 200);

    server.shutdown();
    server.join();
}

/// Breaker state machine at the unit level (the served end-to-end trip is
/// chaos-harness territory): trip at threshold, fail fast through the
/// cooldown, half-open probe, and both probe outcomes.
#[test]
fn breaker_trips_cools_down_and_half_opens() {
    let obs = Obs::new();
    let b = Breaker::new(2, Duration::from_millis(80), obs.metrics(), "t");
    assert!(b.allow() && !b.is_degraded());

    b.record(false);
    assert!(b.allow(), "one failure is below threshold");
    b.record(false);
    assert!(b.is_degraded(), "second consecutive failure trips");
    assert!(!b.allow(), "tripped breaker fails fast");

    std::thread::sleep(Duration::from_millis(120));
    assert!(b.allow(), "cooldown elapsed: probe admitted");
    b.record(false);
    assert!(b.is_degraded(), "failed probe re-trips instantly");

    std::thread::sleep(Duration::from_millis(120));
    assert!(b.allow(), "second probe admitted");
    b.record(true);
    assert!(!b.is_degraded(), "clean probe resets");
    b.record(false);
    assert!(b.allow(), "reset breaker needs a full streak again");

    let snap = obs.metrics().snapshot();
    assert_eq!(
        snap.counter("serve_breaker_trips_total", "kb=\"t\""),
        Some(2)
    );
    // A success streak also resets an untripped counter.
    let ok = Breaker::new(2, Duration::from_secs(60), obs.metrics(), "ok");
    ok.record(false);
    ok.record(true);
    ok.record(false);
    assert!(!ok.is_degraded(), "non-consecutive failures never trip");
    // Threshold 0 disables the breaker entirely.
    let off = Breaker::new(0, Duration::from_secs(60), obs.metrics(), "off");
    off.record(false);
    off.record(false);
    off.record(false);
    assert!(off.allow() && !off.is_degraded());
}

/// Graceful drain end to end: an in-flight stream completes intact while
/// `/readyz` reports 503 and new repairs are refused; the drain flushes
/// `.drsnap` snapshots before returning.
#[test]
fn drain_finishes_streams_and_flushes_snapshots() {
    let cache_dir = std::env::temp_dir().join(format!("dr-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("tempdir");
    let obs = Arc::new(Obs::new());
    let state = build_state(
        &[KbSpec::NobelMini],
        RegistryConfig::default().with_cache_dir(&cache_dir),
        Arc::clone(&obs),
        ServeConfig::default(),
    )
    .expect("state builds");
    let server = Server::bind("127.0.0.1:0", state, 2).expect("bind");
    let addr = server.addr();
    let rows = 200;

    std::thread::scope(|s| {
        let streamer = s.spawn(move || {
            client::request(
                addr,
                "POST",
                "/v1/repair/nobel-mini?label=drain",
                "text/csv",
                csv_body(rows).as_bytes(),
            )
        });

        // Wait until the streamer's request is actually in flight, then
        // begin the drain; the acceptors are still up until `drain()`
        // below, so the balancer view is observable over the wire.
        let admitted = std::time::Instant::now() + Duration::from_secs(10);
        while server.state().lifecycle.active() == 0 {
            assert!(
                std::time::Instant::now() < admitted,
                "streamer request never started"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        server.state().lifecycle.begin_drain();
        let ready = client::get(addr, "/readyz").expect("readyz");
        assert_eq!(ready.status, 503, "{}", ready.text());
        let refused = client::request(
            addr,
            "POST",
            "/v1/repair/nobel-mini",
            "text/csv",
            csv_body(1).as_bytes(),
        )
        .expect("refused repair");
        assert_eq!(refused.status, 503);
        assert_eq!(refused.header("retry-after"), Some("1"));
        // Liveness stays green while draining — only readiness flips.
        assert_eq!(client::get(addr, "/healthz").expect("live").status, 200);

        assert!(
            server.drain(Duration::from_secs(30)),
            "drain completes within the deadline"
        );

        // The stream that was in flight when the drain began is intact:
        // complete chunked framing, every row present, summary last.
        let resp = streamer
            .join()
            .expect("streamer thread")
            .expect("stream survived the drain");
        assert_eq!(resp.status, 200);
        let text = resp.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), rows + 2, "header + rows + summary");
        assert!(lines[0].contains("\"kind\":\"header\""));
        assert!(lines[rows + 1].contains("\"kind\":\"summary\""));
    });

    let snaps = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "drsnap"))
        .count();
    std::fs::remove_dir_all(&cache_dir).ok();
    assert!(snaps > 0, "drain flushed value-cache snapshots");
}
