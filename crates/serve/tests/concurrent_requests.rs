//! Service-level concurrency test: many simultaneous repair requests
//! against one shared `ServerState` must produce exactly the repairs that
//! the same requests produce one at a time.
//!
//! Repair outputs are deterministic (the chase is Church–Rosser, so the
//! fixpoint does not depend on scheduling), but the shared value cache is
//! not: hit/miss counts depend on which request warmed an entry first.
//! The test therefore compares the NDJSON *data* lines (header, tuples,
//! provenance) byte for byte and checks the summary's outcome counts,
//! while leaving the summary's cache counters free.

use std::sync::Arc;

use dr_core::RegistryConfig;
use dr_datasets::NobelWorld;
use dr_obs::Obs;
use dr_relation::{inject, NoiseSpec};
use dr_serve::http::Request;
use dr_serve::{build_state, handle, KbSpec, ServeConfig, ServerState};

const KB_SIZE: usize = 120;
const SEED: u64 = 17;
const REQUESTS: usize = 8;
const ROWS: usize = 25;

fn fresh_state() -> ServerState {
    build_state(
        &[KbSpec::Nobel {
            size: KB_SIZE,
            seed: SEED,
        }],
        RegistryConfig::default(),
        Arc::new(Obs::new()),
        ServeConfig::default(),
    )
    .expect("state builds")
}

/// The same dirty CSV bodies every run: distinct row windows of the world
/// relation, each with its own noise seed.
fn request_bodies() -> Vec<String> {
    let world = NobelWorld::generate(KB_SIZE, SEED);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let semantic = world.semantic_source();
    (0..REQUESTS)
        .map(|r| {
            let mut slice = dr_relation::Relation::new(Arc::clone(clean.schema()));
            for i in 0..ROWS {
                let src = clean.tuple((r * ROWS + i) % clean.len());
                slice.push(dr_relation::Tuple::new(src.cells().to_vec()));
            }
            let spec = NoiseSpec::new(0.15, SEED ^ (r as u64 + 1)).with_excluded(vec![name]);
            let (dirty, _) = inject(&slice, &spec, &semantic);
            dr_relation::csv::serialize(&dirty)
        })
        .collect()
}

fn post(body: &str) -> Request {
    Request {
        method: "POST".into(),
        path: "/v1/repair/nobel".into(),
        query: "threads=2".into(),
        headers: vec![("content-type".into(), "text/csv".into())],
        body: body.as_bytes().to_vec(),
        http11: true,
    }
}

/// Splits a response body into (data lines, summary line).
fn split_response(bytes: Vec<u8>) -> (Vec<String>, String) {
    let text = String::from_utf8(bytes).expect("NDJSON is UTF-8");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let summary = lines.pop().expect("response has a summary line");
    assert!(summary.contains("\"kind\":\"summary\""), "{summary}");
    (lines, summary)
}

/// Pulls `"key":<int>` out of a summary line.
fn field(line: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    let at = line
        .find(&pattern)
        .unwrap_or_else(|| panic!("{key} in {line}"));
    line[at + pattern.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer field")
}

#[test]
fn concurrent_requests_match_sequential_repairs() {
    let bodies = request_bodies();

    // Sequential baseline on its own state.
    let sequential_state = fresh_state();
    let sequential: Vec<(Vec<String>, String)> = bodies
        .iter()
        .map(|b| {
            let resp = handle(&sequential_state, &post(b));
            assert_eq!(resp.status, 200);
            split_response(resp.body_bytes())
        })
        .collect();

    // The same requests, all in flight at once against one shared state.
    let concurrent_state = fresh_state();
    let concurrent: Vec<(Vec<String>, String)> = std::thread::scope(|s| {
        let state = &concurrent_state;
        let handles: Vec<_> = bodies
            .iter()
            .map(|b| {
                s.spawn(move || {
                    let resp = handle(state, &post(b));
                    assert_eq!(resp.status, 200);
                    split_response(resp.body_bytes())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    for (i, ((seq_lines, seq_summary), (con_lines, con_summary))) in
        sequential.iter().zip(&concurrent).enumerate()
    {
        assert_eq!(
            seq_lines, con_lines,
            "request {i}: repaired tuples/provenance differ under concurrency"
        );
        for key in ["completed", "degraded", "failed", "quarantined"] {
            assert_eq!(
                field(seq_summary, key),
                field(con_summary, key),
                "request {i}: summary {key} differs under concurrency"
            );
        }
    }

    // Concurrency must not corrupt the shared observability path either:
    // the one shared registry saw every tuple exactly once.
    let snap = concurrent_state.obs.metrics().snapshot();
    assert_eq!(
        snap.counter_total("repair_tuples_total"),
        (REQUESTS * ROWS) as u64
    );
    assert_eq!(
        snap.counter("serve_requests_total", "route=\"repair\",status=\"2xx\""),
        Some(REQUESTS as u64)
    );
}

#[test]
fn concurrent_requests_against_one_kb_share_the_value_cache() {
    let bodies = request_bodies();
    let state = fresh_state();
    let stats_before = state.registry.stats();

    std::thread::scope(|s| {
        for b in &bodies {
            let state = &state;
            s.spawn(move || {
                let resp = handle(state, &post(b));
                assert_eq!(resp.status, 200);
            });
        }
    });

    let stats = state.registry.stats();
    // Boot created the cache; request forks reuse it rather than
    // creating per-request caches.
    assert_eq!(stats.live_caches, 1, "all requests share one cache");
    assert_eq!(
        stats.cold_misses, stats_before.cold_misses,
        "no request re-created the boot-time cache"
    );
}
