//! Live trace capture end to end (DESIGN.md §11): a forced-trace repair
//! over a real socket must retain a span tree whose root covers the
//! request, whose parents all exist, and whose id is echoed in the NDJSON
//! summary; quiet requests must leave no trace behind; and the sliding
//! latency window on `/metrics` must reconcile with the stored durations.

use std::sync::Arc;
use std::time::Duration;

use dr_core::RegistryConfig;
use dr_obs::{json, AttrValue, JsonValue, Obs, StoredTrace};
use dr_serve::{build_state, client, KbSpec, ServeConfig, Server};

const CSV: &str = "Name,DOB,Country,Prize,Institution,City\n\
     Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag\n";

fn boot(config: ServeConfig) -> Server {
    let state = build_state(
        &[KbSpec::NobelMini],
        RegistryConfig::default(),
        Arc::new(Obs::new()),
        config,
    )
    .expect("state builds");
    Server::bind("127.0.0.1:0", state, 2).expect("bind port 0")
}

/// Value of the first metric line starting with `prefix` (label set
/// included), e.g. `serve_requests_total{route="repair",status="2xx"}`.
fn metric(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn forced_trace_round_trips_a_valid_span_tree() {
    let server = boot(ServeConfig::default());
    let addr = server.addr();

    // threads=1 keeps spans strictly sequential, so child self-times must
    // sum within their parents.
    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini?trace=1&threads=1",
        "text/csv",
        CSV.as_bytes(),
    )
    .expect("repair");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let text = resp.text();
    let summary = text.lines().last().expect("summary line");
    let at = summary
        .find("\"trace_id\":\"")
        .unwrap_or_else(|| panic!("summary echoes the trace id: {summary}"));
    let trace_id = &summary[at + 12..at + 12 + 32];
    assert_eq!(trace_id.len(), 32);

    // The index lists it as forced.
    let index = client::get(addr, "/v1/traces").expect("index");
    assert_eq!(index.status, 200);
    let index = json::parse(&index.text()).expect("index is JSON");
    let traces = index
        .get("traces")
        .and_then(JsonValue::as_array)
        .expect("traces array");
    let entry = traces
        .iter()
        .find(|t| t.get("trace_id").and_then(JsonValue::as_str) == Some(trace_id))
        .expect("forced trace is indexed");
    assert_eq!(entry.get("why").and_then(JsonValue::as_str), Some("forced"));
    assert_eq!(
        entry.get("route").and_then(JsonValue::as_str),
        Some("repair")
    );

    // The full document is a well-formed tree.
    let doc = client::get(addr, &format!("/v1/traces/{trace_id}")).expect("trace doc");
    assert_eq!(doc.status, 200);
    let doc = json::parse(&doc.text()).expect("trace is JSON");
    let trace = StoredTrace::from_json(&doc).expect("parses as a stored trace");
    assert_eq!(trace.trace_id, trace_id);
    assert_eq!(trace.dropped_spans, 0, "small request stays under the cap");

    let roots: Vec<_> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    let root = roots[0];
    assert_eq!(root.name, "request");
    assert!(
        root.attrs
            .iter()
            .any(|(k, v)| k == "kb" && matches!(v, AttrValue::Str(s) if s == "nobel-mini")),
        "{:?}",
        root.attrs
    );

    let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_ref()).collect();
    for expected in ["prewarm", "repair", "row", "rule"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }

    for span in &trace.spans {
        // Every parent id exists among the recorded spans.
        if let Some(p) = span.parent {
            assert!(
                trace.spans.iter().any(|o| o.id == p),
                "dangling parent {p:?}"
            );
        }
        // The root's window covers every span.
        assert!(
            span.start_nanos + span.duration_nanos <= root.start_nanos + root.duration_nanos,
            "span {} [{}..+{}] escapes the root window",
            span.name,
            span.start_nanos,
            span.duration_nanos
        );
        // Sequential execution: direct children's durations sum within
        // their parent (equivalently, every self-time is non-negative).
        let child_sum: u64 = trace
            .spans
            .iter()
            .filter(|c| c.parent == Some(span.id))
            .map(|c| c.duration_nanos)
            .sum();
        assert!(
            child_sum <= span.duration_nanos,
            "children of {} ({child_sum}ns) exceed its duration ({}ns)",
            span.name,
            span.duration_nanos
        );
    }

    // Sliding-window reconciliation: the repair route's window sum must be
    // at least the root span's duration (the handler's clock starts before
    // the span and stops after it), and the window quantiles render.
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    assert!(
        metrics.contains("serve_request_seconds_window{route=\"repair\",quantile=\"0.95\"}"),
        "window quantiles render: {metrics}"
    );
    assert!(
        metrics.contains("repair_tuple_seconds_window"),
        "per-tuple window recorded: {metrics}"
    );
    let window_sum = metric(
        &metrics,
        "serve_request_seconds_window_sum{route=\"repair\"}",
    )
    .expect("window sum present");
    assert!(
        window_sum >= trace.duration_nanos as f64 / 1e9,
        "window sum {window_sum}s < stored trace duration {}ns",
        trace.duration_nanos
    );
    let window_count = metric(
        &metrics,
        "serve_request_seconds_window_count{route=\"repair\"}",
    )
    .expect("window count present");
    assert_eq!(window_count, 1.0, "one repair request in the window");

    server.shutdown();
    server.join();
}

#[test]
fn quiet_requests_leave_no_trace_and_unknown_ids_404() {
    let server = boot(ServeConfig::default());
    let addr = server.addr();

    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini",
        "text/csv",
        CSV.as_bytes(),
    )
    .expect("repair");
    assert_eq!(resp.status, 200);
    let text = resp.text();
    assert!(
        !text.contains("\"trace_id\""),
        "unretained capture must not advertise an id: {text}"
    );

    let index = client::get(addr, "/v1/traces").expect("index");
    assert!(index.text().contains("\"traces\":[]"), "{}", index.text());
    let missing = client::get(addr, &format!("/v1/traces/{}", "ab".repeat(16))).expect("get");
    assert_eq!(missing.status, 404);

    server.shutdown();
    server.join();
}

#[test]
fn traceparent_header_adopts_the_callers_trace_id() {
    let server = boot(ServeConfig::default());
    let addr = server.addr();

    // Hand-rolled request so we can send the traceparent header; `?trace=1`
    // forces retention.
    use std::io::{BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let remote_trace = "0af7651916cd43dd8448eb211c80319c";
    write!(
        stream,
        "POST /v1/repair/nobel-mini?trace=1&threads=1 HTTP/1.1\r\nhost: t\r\n\
         traceparent: 00-{remote_trace}-b7ad6b7169203331-01\r\n\
         content-type: text/csv\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{CSV}",
        CSV.len()
    )
    .expect("send");
    let mut raw = String::new();
    BufReader::new(&mut stream)
        .read_to_string(&mut raw)
        .expect("read");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains(&format!("\"trace_id\":\"{remote_trace}\"")),
        "summary carries the adopted id: {raw}"
    );

    let doc = client::get(addr, &format!("/v1/traces/{remote_trace}")).expect("trace doc");
    assert_eq!(doc.status, 200, "{}", doc.text());
    let doc = json::parse(&doc.text()).expect("JSON");
    let trace = StoredTrace::from_json(&doc).expect("stored trace");
    let root = trace
        .spans
        .iter()
        .find(|s| s.parent.is_none())
        .expect("root");
    // The remote parent is an attribute; the stored root keeps a null
    // parent so the tree stays self-contained.
    assert!(
        root.attrs.iter().any(|(k, v)| k == "remote_parent"
            && matches!(v, AttrValue::Str(s) if s == "b7ad6b7169203331")),
        "{:?}",
        root.attrs
    );

    server.shutdown();
    server.join();
}

#[test]
fn keepalive_pipeline_counts_each_request_exactly_once() {
    const N: usize = 7;
    let server = boot(ServeConfig::default());
    let addr = server.addr();

    let mut conn = client::Connection::connect(addr).expect("connect");
    for i in 0..N {
        let resp = conn
            .request("POST", "/v1/repair/nobel-mini", "text/csv", CSV.as_bytes())
            .unwrap_or_else(|e| panic!("keep-alive request {i}: {e}"));
        assert_eq!(resp.status, 200);
    }
    let metrics = conn.get("/metrics").expect("metrics on the same socket");
    let text = metrics.text();
    assert_eq!(
        metric(
            &text,
            "serve_requests_total{route=\"repair\",status=\"2xx\"}"
        ),
        Some(N as f64),
        "{text}"
    );
    assert_eq!(
        metric(&text, "serve_request_seconds_count{route=\"repair\"}"),
        Some(N as f64),
        "{text}"
    );
    assert_eq!(
        metric(
            &text,
            "serve_request_seconds_window_count{route=\"repair\"}"
        ),
        Some(N as f64),
        "{text}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn error_outcomes_are_tail_sampled_without_forcing() {
    // A breaker-free config with an impossible step budget: every row
    // degrades, which the default policy retains as `error`.
    let config = ServeConfig {
        breaker_threshold: 0,
        trace_slow: Some(Duration::from_secs(3600)),
        ..ServeConfig::default()
    };
    let server = boot(config);
    let addr = server.addr();

    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini?max_steps=1&threads=1",
        "text/csv",
        CSV.as_bytes(),
    )
    .expect("repair");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let text = resp.text();
    assert!(text.contains("\"degraded\":1"), "{text}");
    assert!(
        text.contains("\"trace_id\""),
        "degraded run is kept: {text}"
    );

    let index = client::get(addr, "/v1/traces").expect("index").text();
    assert!(index.contains("\"why\":\"error\""), "{index}");

    server.shutdown();
    server.join();
}
