//! End-to-end socket test: boot the real server on a free port and drive
//! it with the bundled HTTP client — covering the wire layer (request
//! parsing, chunked NDJSON streaming) that the handler-level tests skip.

use std::sync::Arc;

use dr_core::RegistryConfig;
use dr_obs::Obs;
use dr_serve::{build_state, client, KbSpec, ServeConfig, Server};

fn boot() -> Server {
    let state = build_state(
        &[KbSpec::NobelMini],
        RegistryConfig::default(),
        Arc::new(Obs::new()),
        ServeConfig::default(),
    )
    .expect("state builds");
    Server::bind("127.0.0.1:0", state, 2).expect("bind port 0")
}

#[test]
fn serves_health_kbs_metrics_and_repairs_over_sockets() {
    let server = boot();
    let addr = server.addr();

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    let kbs = client::get(addr, "/kbs").expect("kbs");
    assert!(kbs.text().contains("\"name\":\"nobel-mini\""));

    let body = "Name,DOB,Country,Prize,Institution,City\n\
                Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag\n";
    let resp = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini?label=socket",
        "text/csv",
        body.as_bytes(),
    )
    .expect("repair request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "repair responses stream"
    );
    let text = resp.text();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("\"kind\":\"header\""), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"tuple\""), "{}", lines[1]);
    assert!(
        lines.last().unwrap().contains("\"kind\":\"summary\""),
        "{text}"
    );

    // The repair shows up in the exported metrics.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert!(
        metrics.text().contains("repair_tuples_total"),
        "{}",
        metrics.text()
    );

    // Error paths keep the connection usable for the next client.
    let missing = client::get(addr, "/nope").expect("404 route");
    assert_eq!(missing.status, 404);
    let bad = client::request(
        addr,
        "POST",
        "/v1/repair/nobel-mini",
        "text/csv",
        b"A,B\n1,2\n",
    )
    .expect("schema mismatch");
    assert_eq!(bad.status, 400);

    server.shutdown();
    server.join();
}
