//! Property tests for the baseline systems.

use dr_baselines::llunatic::{llunatic_repair, LlunaticConfig};
use dr_baselines::{mine_constant_cfds, Fd, Katara};
use dr_core::MatchContext;
use dr_kb::fixtures::nobel_mini_kb;
use dr_relation::{Relation, Schema, Tuple};
use proptest::prelude::*;

fn capitals_relation(rows: &[(String, String)]) -> Relation {
    let schema = Schema::new("R", &["Country", "Capital"]);
    let mut r = Relation::new(schema);
    for (c, k) in rows {
        r.push(Tuple::from_strs(&[c, k]));
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant CFDs mined from a relation never change that relation.
    #[test]
    fn ccfds_are_identity_on_their_source(
        rows in prop::collection::vec(("[a-d]{1,4}", "[a-d]{1,4}"), 1..20),
    ) {
        let clean = capitals_relation(&rows);
        let fds = vec![Fd::new(clean.schema(), &["Country"], "Capital")];
        let cfds = mine_constant_cfds(&clean, &fds);
        let mut working = clean.clone();
        let repairs = cfds.apply(&mut working);
        prop_assert!(repairs.is_empty(), "{repairs:?}");
    }

    /// The Llunatic chase is idempotent: a second run changes nothing.
    #[test]
    fn llunatic_is_idempotent(
        rows in prop::collection::vec(("[ab]{1,2}", "[ab]{1,3}"), 1..20),
    ) {
        let mut relation = capitals_relation(&rows);
        let fds = vec![Fd::new(relation.schema(), &["Country"], "Capital")];
        let cfg = LlunaticConfig::default();
        llunatic_repair(&mut relation, &fds, &cfg);
        let snapshot = relation.clone();
        let second = llunatic_repair(&mut relation, &fds, &cfg);
        prop_assert!(second.is_empty(), "second chase changed {second:?}");
        for cell in snapshot.cell_refs() {
            prop_assert_eq!(snapshot.value(cell), relation.value(cell));
        }
    }

    /// After the chase, no FD violation remains (every group agrees).
    #[test]
    fn llunatic_reaches_consistency(
        rows in prop::collection::vec(("[ab]{1,2}", "[ab]{1,3}"), 1..25),
    ) {
        let mut relation = capitals_relation(&rows);
        let fds = vec![Fd::new(relation.schema(), &["Country"], "Capital")];
        llunatic_repair(&mut relation, &fds, &LlunaticConfig::default());
        prop_assert!(
            fds[0].holds_on(&relation),
            "chase left a violation: {:?}",
            relation.tuples()
        );
    }

    /// KATARA never panics on junk tuples and never claims a full match
    /// for values absent from the KB.
    #[test]
    fn katara_handles_junk(cells in prop::collection::vec("[x-z]{0,8}", 6..=6)) {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = dr_core::fixtures::nobel_schema();
        let pattern = dr_baselines::nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        let mut tuple = Tuple::from_strs(&refs);
        let outcome = katara.match_tuple(&mut tuple);
        prop_assert_ne!(
            outcome,
            dr_baselines::KataraOutcome::FullMatch,
            "junk cannot fully match"
        );
    }
}
