//! A Llunatic-style FD-based holistic repair baseline (§V-A).
//!
//! Reproduces the behaviour the paper measures from Llunatic (Geerts et al.,
//! PVLDB 2013) configured with FDs and the *frequency cost-manager*:
//!
//! * violations of an FD `X → A` are grouped into equivalence classes of
//!   tuples agreeing on `X`;
//! * within a class, the conflicting `A` cells are repaired to the most
//!   frequent value — with a tolerance for typos, near-duplicate values
//!   (small edit distance) vote together and the representative of the
//!   largest cluster wins;
//! * when no value wins (a tie), the cells are set to a **llun** (a labelled
//!   null), scored 0.5 in the paper's quality metric.
//!
//! Chasing repeats until no FD is violated or a bounded number of rounds
//! elapses (value changes can re-trigger other FDs).

use crate::fd::Fd;
use dr_kb::FxHashMap;
use dr_relation::{CellRef, Relation};
use dr_simmatch::within_bool;

/// The sentinel stored in cells repaired to a llun (labelled null).
pub const LLUN: &str = "_LLUN_";

/// One cell rewrite performed by the Llunatic-style chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlunaticChange {
    /// Rewritten cell.
    pub cell: CellRef,
    /// Value before.
    pub old: String,
    /// Value after (`LLUN` when repaired to a labelled null).
    pub new: String,
    /// Whether the repair is a llun.
    pub is_llun: bool,
}

/// Configuration of the Llunatic-style baseline.
#[derive(Debug, Clone)]
pub struct LlunaticConfig {
    /// Edit-distance tolerance under which conflicting values are clustered
    /// as typo variants of each other before the frequency vote.
    pub typo_tolerance: usize,
    /// Maximum chase rounds (FD interactions).
    pub max_rounds: usize,
}

impl Default for LlunaticConfig {
    fn default() -> Self {
        Self {
            typo_tolerance: 2,
            max_rounds: 5,
        }
    }
}

/// Clusters the conflicting values by edit distance and returns the
/// representative (most frequent member) of the **strictly** largest
/// cluster, or `None` on a tie.
fn frequency_winner(values: &[&str], tolerance: usize) -> Option<String> {
    // Count exact duplicates first.
    let mut counts: Vec<(String, usize)> = Vec::new();
    for &v in values {
        match counts.iter_mut().find(|(u, _)| u == v) {
            Some((_, c)) => *c += 1,
            None => counts.push((v.to_owned(), 1)),
        }
    }
    // Greedy clustering: process by descending count; absorb later values
    // within the tolerance.
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut clusters: Vec<(String, usize)> = Vec::new();
    'outer: for (value, count) in counts {
        for cluster in clusters.iter_mut() {
            if within_bool(&cluster.0, &value, tolerance) {
                cluster.1 += count;
                continue 'outer;
            }
        }
        clusters.push((value, count));
    }
    clusters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    match clusters.as_slice() {
        [] => None,
        [only] => Some(only.0.clone()),
        [first, second, ..] if first.1 > second.1 => Some(first.0.clone()),
        _ => None, // tie → llun
    }
}

/// Runs the Llunatic-style chase over `relation` with the given FDs.
/// Returns all changes performed (lluns included).
pub fn llunatic_repair(
    relation: &mut Relation,
    fds: &[Fd],
    cfg: &LlunaticConfig,
) -> Vec<LlunaticChange> {
    let mut changes: Vec<LlunaticChange> = Vec::new();
    for _ in 0..cfg.max_rounds {
        let mut dirty_round = false;
        for fd in fds {
            // Group rows by LHS key.
            let mut groups: FxHashMap<String, Vec<usize>> = FxHashMap::default();
            for row in 0..relation.len() {
                // Rows whose LHS contains a llun cannot be grouped reliably.
                if fd.lhs.iter().any(|&a| relation.tuple(row).get(a) == LLUN) {
                    continue;
                }
                groups
                    .entry(fd.key_of(relation.tuple(row)))
                    .or_default()
                    .push(row);
            }
            let mut keys: Vec<String> = groups.keys().cloned().collect();
            keys.sort_unstable();
            for key in keys {
                let rows = &groups[&key];
                let values: Vec<&str> = rows
                    .iter()
                    .map(|&r| relation.tuple(r).get(fd.rhs))
                    .collect();
                if values.windows(2).all(|w| w[0] == w[1]) {
                    continue; // no violation
                }
                let winner = frequency_winner(&values, cfg.typo_tolerance);
                let (target, is_llun) = match winner {
                    Some(w) => (w, false),
                    None => (LLUN.to_owned(), true),
                };
                for &row in rows {
                    let current = relation.tuple(row).get(fd.rhs);
                    if current != target {
                        let old = current.to_owned();
                        relation.tuple_mut(row).set(fd.rhs, target.clone());
                        changes.push(LlunaticChange {
                            cell: CellRef { row, attr: fd.rhs },
                            old,
                            new: target.clone(),
                            is_llun,
                        });
                        dirty_round = true;
                    }
                }
            }
        }
        if !dirty_round {
            break;
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_relation::Schema;

    fn capitals(rows: &[(&str, &str)]) -> Relation {
        let schema = Schema::new("R", &["Country", "Capital"]);
        let mut r = Relation::new(schema);
        for &(c, k) in rows {
            r.push_strs(&[c, k]);
        }
        r
    }

    #[test]
    fn majority_wins() {
        let mut r = capitals(&[
            ("China", "Beijing"),
            ("China", "Beijing"),
            ("China", "Shanghai"),
        ]);
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].new, "Beijing");
        assert!(!changes[0].is_llun);
        assert_eq!(r.tuple(2).get(r.schema().attr_expect("Capital")), "Beijing");
    }

    #[test]
    fn tie_produces_llun() {
        let mut r = capitals(&[("China", "Beijing"), ("China", "Shanghai")]);
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(|c| c.is_llun && c.new == LLUN));
    }

    #[test]
    fn typo_variants_vote_together() {
        // "Beijing" ×1 + "Beijng" ×1 cluster (ED 1) and outvote "Shanghai" ×1.
        let mut r = capitals(&[
            ("China", "Beijing"),
            ("China", "Beijng"),
            ("China", "Shanghai"),
        ]);
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        let cap = r.schema().attr_expect("Capital");
        for row in 0..3 {
            assert_eq!(r.tuple(row).get(cap), "Beijing");
        }
        assert_eq!(changes.len(), 2);
    }

    #[test]
    fn clean_relation_untouched() {
        let mut r = capitals(&[("China", "Beijing"), ("Japan", "Tokyo")]);
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        assert!(changes.is_empty());
    }

    #[test]
    fn lhs_error_merges_wrong_groups() {
        // A semantic LHS error drags a correct capital into the wrong group:
        // Llunatic "repairs" Tokyo to Beijing — the false positive the paper
        // observes at higher error rates.
        let mut r = capitals(&[
            ("China", "Beijing"),
            ("China", "Beijing"),
            ("China", "Tokyo"), // should be (Japan, Tokyo)
        ]);
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, "Tokyo");
        assert_eq!(changes[0].new, "Beijing");
    }

    #[test]
    fn chase_runs_multiple_fds() {
        let schema = Schema::new("R", &["Zip", "City", "State"]);
        let mut r = Relation::new(schema);
        r.push_strs(&["10001", "New York", "NY"]);
        r.push_strs(&["10001", "New York", "NY"]);
        r.push_strs(&["10001", "Albany", "NJ"]); // both wrong
        let fds = vec![
            Fd::new(r.schema(), &["Zip"], "City"),
            Fd::new(r.schema(), &["Zip"], "State"),
        ];
        let changes = llunatic_repair(&mut r, &fds, &LlunaticConfig::default());
        assert_eq!(changes.len(), 2);
        let city = r.schema().attr_expect("City");
        let state = r.schema().attr_expect("State");
        assert_eq!(r.tuple(2).get(city), "New York");
        assert_eq!(r.tuple(2).get(state), "NY");
    }

    #[test]
    fn frequency_winner_edge_cases() {
        assert_eq!(frequency_winner(&[], 2), None);
        assert_eq!(frequency_winner(&["a"], 2), Some("a".into()));
        assert_eq!(frequency_winner(&["aaaa", "bbbb"], 2), None);
        assert_eq!(
            frequency_winner(&["aaaa", "aaaa", "bbbb"], 2),
            Some("aaaa".into())
        );
    }
}
