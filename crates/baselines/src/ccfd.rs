//! Constant conditional functional dependencies (CFDs), mined from ground
//! truth — the paper's third comparator (§V-A):
//!
//! > "For constant CFDs, they were generated from ground truth. We simulated
//! > the user behavior by repairing the right hand side of a tuple t based on
//! > a constant CFD, if the left side values of t were the same as the values
//! > in the given constant CFD."
//!
//! The baseline is precise and near-instant (pure hash lookups) but blind to
//! errors on its left-hand side and to fuzzy matches.

use crate::fd::Fd;
use dr_kb::FxHashMap;
use dr_relation::{AttrId, CellRef, Relation};

/// A constant CFD `(lhs = consts) → (rhs = const)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantCfd {
    /// LHS attributes and their constant pattern values.
    pub lhs: Vec<(AttrId, String)>,
    /// RHS attribute and its constant value.
    pub rhs: (AttrId, String),
}

/// A compiled set of constant CFDs grouped by the embedded FD, with a hash
/// map per FD for O(1) application.
pub struct ConstantCfdSet {
    per_fd: Vec<(Fd, FxHashMap<String, String>)>,
    total: usize,
}

/// One repair performed by [`ConstantCfdSet::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfdRepair {
    /// Rewritten cell.
    pub cell: CellRef,
    /// Value before.
    pub old: String,
    /// Value after.
    pub new: String,
}

/// Mines constant CFDs from a clean relation for the given embedded FDs:
/// one pattern per distinct LHS value combination, keeping only functional
/// (unambiguous) patterns.
pub fn mine_constant_cfds(clean: &Relation, fds: &[Fd]) -> ConstantCfdSet {
    let mut per_fd = Vec::with_capacity(fds.len());
    let mut total = 0;
    for fd in fds {
        let mut map: FxHashMap<String, String> = FxHashMap::default();
        let mut ambiguous: dr_kb::FxHashSet<String> = dr_kb::FxHashSet::default();
        for t in clean.tuples() {
            let key = fd.key_of(t);
            let rhs = t.get(fd.rhs).to_owned();
            match map.get(&key) {
                Some(prev) if *prev != rhs => {
                    ambiguous.insert(key);
                }
                Some(_) => {}
                None => {
                    map.insert(key, rhs);
                }
            }
        }
        for key in &ambiguous {
            map.remove(key);
        }
        total += map.len();
        per_fd.push((fd.clone(), map));
    }
    ConstantCfdSet { per_fd, total }
}

impl ConstantCfdSet {
    /// Number of mined patterns.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no patterns were mined.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Materializes the individual [`ConstantCfd`] patterns (diagnostics).
    pub fn patterns(&self) -> Vec<ConstantCfd> {
        let mut out = Vec::with_capacity(self.total);
        for (fd, map) in &self.per_fd {
            let mut entries: Vec<(&String, &String)> = map.iter().collect();
            entries.sort();
            for (key, rhs) in entries {
                let parts: Vec<&str> = key.split('\u{1f}').collect();
                out.push(ConstantCfd {
                    lhs: fd
                        .lhs
                        .iter()
                        .zip(parts)
                        .map(|(&a, v)| (a, v.to_owned()))
                        .collect(),
                    rhs: (fd.rhs, rhs.clone()),
                });
            }
        }
        out
    }

    /// Applies the patterns to `relation`: wherever a tuple's LHS values
    /// equal a pattern's constants and the RHS differs, the RHS is rewritten.
    /// Returns the repairs performed.
    pub fn apply(&self, relation: &mut Relation) -> Vec<CfdRepair> {
        let mut repairs = Vec::new();
        for (fd, map) in &self.per_fd {
            for row in 0..relation.len() {
                let key = fd.key_of(relation.tuple(row));
                if let Some(expected) = map.get(&key) {
                    let current = relation.tuple(row).get(fd.rhs);
                    if current != expected {
                        let old = current.to_owned();
                        relation.tuple_mut(row).set(fd.rhs, expected.clone());
                        repairs.push(CfdRepair {
                            cell: CellRef { row, attr: fd.rhs },
                            old,
                            new: expected.clone(),
                        });
                    }
                }
            }
        }
        repairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_relation::Schema;

    fn clean() -> Relation {
        let schema = Schema::new("R", &["Country", "Capital"]);
        let mut r = Relation::new(schema);
        r.push_strs(&["China", "Beijing"]);
        r.push_strs(&["Japan", "Tokyo"]);
        r.push_strs(&["France", "Paris"]);
        r
    }

    #[test]
    fn mines_one_pattern_per_lhs_value() {
        let r = clean();
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let set = mine_constant_cfds(&r, &fds);
        assert_eq!(set.len(), 3);
        let patterns = set.patterns();
        assert!(patterns
            .iter()
            .any(|p| p.lhs[0].1 == "China" && p.rhs.1 == "Beijing"));
    }

    #[test]
    fn repairs_rhs_errors() {
        let r = clean();
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let set = mine_constant_cfds(&r, &fds);

        let mut dirty = r.clone();
        let capital = dirty.schema().attr_expect("Capital");
        dirty.tuple_mut(0).set(capital, "Shanghai");
        let repairs = set.apply(&mut dirty);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].old, "Shanghai");
        assert_eq!(repairs[0].new, "Beijing");
        assert_eq!(dirty.tuple(0).get(capital), "Beijing");
    }

    #[test]
    fn lhs_errors_break_the_pattern() {
        // The paper's noted weakness: errors on the LHS.
        let r = clean();
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let set = mine_constant_cfds(&r, &fds);

        let mut dirty = r.clone();
        let country = dirty.schema().attr_expect("Country");
        dirty.tuple_mut(0).set(country, "Chima"); // typo on LHS
        let repairs = set.apply(&mut dirty);
        assert!(repairs.is_empty(), "typo'd LHS matches no pattern");
    }

    #[test]
    fn lhs_semantic_error_causes_wrong_repair() {
        // LHS replaced by another valid country ⇒ the CFD "repairs" the
        // correct capital into a wrong one — a false positive by design.
        let r = clean();
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let set = mine_constant_cfds(&r, &fds);

        let mut dirty = r.clone();
        let country = dirty.schema().attr_expect("Country");
        dirty.tuple_mut(0).set(country, "Japan");
        let repairs = set.apply(&mut dirty);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].new, "Tokyo");
    }

    #[test]
    fn ambiguous_patterns_are_dropped() {
        let mut r = clean();
        r.push_strs(&["China", "Shanghai"]); // conflicting ground truth
        let fds = vec![Fd::new(r.schema(), &["Country"], "Capital")];
        let set = mine_constant_cfds(&r, &fds);
        assert_eq!(set.len(), 2, "the China pattern is ambiguous and dropped");
    }
}
