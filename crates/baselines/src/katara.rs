//! A KATARA simulation (Chu et al., SIGMOD 2015), revised exactly as the
//! paper's Exp-1 does to remove the crowdsourcing factor (§V-B):
//!
//! > "When there was a full match of a tuple and the KB under the table
//! > pattern defined by KATARA, the whole tuple was marked as correct. When
//! > there was a partial match, we revised KATARA by marking the minimally
//! > unmatched attributes as wrong. For repairing, since KATARA also
//! > computes candidate repairs, we picked the one from all candidates that
//! > minimizes the repair cost."
//!
//! The table pattern is a single schema-level matching graph over the
//! covered columns with **exact** matching only — KATARA does not support
//! fuzzy matching, which is the source of its recall gap on typos.

use dr_core::graph::instance::{for_each_assignment, Pattern, PatternNode};
use dr_core::graph::schema::SchemaGraph;
use dr_core::MatchContext;
use dr_kb::Node;
use dr_relation::{AttrId, CellRef, Relation, Tuple};
use dr_simmatch::edit_distance;

/// Outcome of matching one tuple against the table pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KataraOutcome {
    /// Every pattern column matched: the tuple is marked correct.
    FullMatch,
    /// A maximal strict subset matched; the rest were repaired.
    PartialMatch {
        /// Columns marked correct.
        matched: Vec<AttrId>,
        /// Repairs `(col, old, new)` applied to the unmatched columns.
        repairs: Vec<(AttrId, String, String)>,
    },
    /// Nothing matched (no instance-level graph at any subset size).
    NoMatch,
}

/// A per-relation report.
#[derive(Debug, Clone, Default)]
pub struct KataraReport {
    /// Per-row outcomes.
    pub outcomes: Vec<KataraOutcome>,
    /// Cells marked correct (the paper's #-POS contribution).
    pub marked_positive: usize,
    /// Repairs performed, flattened.
    pub repairs: Vec<(CellRef, String, String)>,
}

/// The KATARA baseline: a table pattern plus a match context.
pub struct Katara<'kb, 'p> {
    ctx: &'kb MatchContext<'kb>,
    pattern: &'p SchemaGraph,
}

impl<'kb, 'p> Katara<'kb, 'p> {
    /// Creates the simulator for a validated table pattern.
    pub fn new(ctx: &'kb MatchContext<'kb>, pattern: &'p SchemaGraph) -> Self {
        debug_assert!(pattern.validate().is_ok(), "invalid table pattern");
        Self { ctx, pattern }
    }

    /// Builds the solver pattern with the given subset of node indexes
    /// value-constrained; the rest are free (type-constrained only).
    fn solver_pattern(&self, tuple: &Tuple, constrained: &[bool]) -> Pattern {
        let mut p = Pattern::default();
        for (i, node) in self.pattern.nodes().iter().enumerate() {
            if constrained[i] {
                p.nodes.push(PatternNode::constrained(
                    node.ty,
                    node.sim,
                    tuple.get(node.col),
                ));
            } else {
                p.nodes.push(PatternNode::free(node.ty, node.sim));
            }
        }
        for e in self.pattern.edges() {
            p.edges.push((e.from, e.rel, e.to));
        }
        p
    }

    /// Matches one tuple; on a partial match, repairs the unmatched columns
    /// with the candidate assignment minimizing total repair cost (sum of
    /// edit distances between current and proposed values).
    pub fn match_tuple(&self, tuple: &mut Tuple) -> KataraOutcome {
        let n = self.pattern.nodes().len();
        // Full match first.
        let all = vec![true; n];
        let full = self.solver_pattern(tuple, &all);
        if dr_core::graph::instance::has_assignment(self.ctx, &full) {
            return KataraOutcome::FullMatch;
        }
        // Partial: decreasing subset sizes; the first size with any match is
        // the minimal unmatched set. Among assignments at that size, pick
        // the minimum repair cost.
        for matched_size in (1..n).rev() {
            let mut best: Option<(Vec<bool>, Vec<Node>, usize)> = None;
            for subset in subsets_of_size(n, matched_size) {
                let pattern = self.solver_pattern(tuple, &subset);
                let mut local_best: Option<(Vec<Node>, usize)> = None;
                let mut visits = 0usize;
                for_each_assignment(self.ctx, &pattern, |assignment| {
                    let cost: usize = (0..n)
                        .filter(|&i| !subset[i])
                        .map(|i| {
                            let col = self.pattern.nodes()[i].col;
                            edit_distance(tuple.get(col), self.ctx.kb().node_value(assignment[i]))
                        })
                        .sum();
                    if local_best.as_ref().is_none_or(|&(_, c)| cost < c) {
                        local_best = Some((assignment.clone(), cost));
                    }
                    visits += 1;
                    visits < 2_000
                });
                if let Some((assignment, cost)) = local_best {
                    if best.as_ref().is_none_or(|&(_, _, c)| cost < c) {
                        best = Some((subset.clone(), assignment, cost));
                    }
                }
            }
            if let Some((subset, assignment, _)) = best {
                let mut matched = Vec::new();
                let mut repairs = Vec::new();
                for (i, node) in self.pattern.nodes().iter().enumerate() {
                    if subset[i] {
                        matched.push(node.col);
                    } else {
                        let old = tuple.get(node.col).to_owned();
                        let new = self.ctx.kb().node_value(assignment[i]).to_owned();
                        if old != new {
                            tuple.set(node.col, new.clone());
                        }
                        repairs.push((node.col, old, new));
                    }
                }
                return KataraOutcome::PartialMatch { matched, repairs };
            }
        }
        KataraOutcome::NoMatch
    }

    /// Cleans a whole relation.
    pub fn clean(&self, relation: &mut Relation) -> KataraReport {
        let mut report = KataraReport::default();
        let n_cols = self.pattern.nodes().len();
        for row in 0..relation.len() {
            let outcome = self.match_tuple(relation.tuple_mut(row));
            match &outcome {
                // #-POS counts full matches only: the paper favors KATARA
                // "by only checking the full matches that they mark as
                // correct" — partial-match marks are heuristic guesses.
                KataraOutcome::FullMatch => report.marked_positive += n_cols,
                KataraOutcome::PartialMatch {
                    matched: _,
                    repairs,
                } => {
                    for (col, old, new) in repairs {
                        if old != new {
                            report.repairs.push((
                                CellRef { row, attr: *col },
                                old.clone(),
                                new.clone(),
                            ));
                        }
                    }
                }
                KataraOutcome::NoMatch => {}
            }
            report.outcomes.push(outcome);
        }
        report
    }
}

/// All boolean masks of length `n` with exactly `k` bits set, in a
/// deterministic order. `n` is small (pattern columns).
fn subsets_of_size(n: usize, k: usize) -> Vec<Vec<bool>> {
    let mut out = Vec::new();
    let mut mask = vec![false; n];
    fn rec(mask: &mut Vec<bool>, start: usize, left: usize, out: &mut Vec<Vec<bool>>) {
        if left == 0 {
            out.push(mask.clone());
            return;
        }
        let n = mask.len();
        if start + left > n {
            return;
        }
        for i in start..=n - left {
            mask[i] = true;
            rec(mask, i + 1, left - 1, out);
            mask[i] = false;
        }
    }
    rec(&mut mask, 0, k, &mut out);
    out
}

/// Builds the natural KATARA table pattern for the Nobel running example:
/// the exact-match version of the schema graph in Figure 2.
pub fn nobel_table_pattern(kb: &dr_kb::KnowledgeBase, schema: &dr_relation::Schema) -> SchemaGraph {
    use dr_core::graph::schema::{NodeType, SchemaNode};
    use dr_kb::fixtures::names;
    use dr_simmatch::SimFn;
    let class = |n: &str| NodeType::Class(kb.class_named(n).expect("pattern class"));
    let mut g = SchemaGraph::new();
    let name = g.add_node(SchemaNode::new(
        schema.attr_expect("Name"),
        class(names::LAUREATE),
        SimFn::Equal,
    ));
    let dob = g.add_node(SchemaNode::new(
        schema.attr_expect("DOB"),
        NodeType::Literal,
        SimFn::Equal,
    ));
    let country = g.add_node(SchemaNode::new(
        schema.attr_expect("Country"),
        class(names::COUNTRY),
        SimFn::Equal,
    ));
    let prize = g.add_node(SchemaNode::new(
        schema.attr_expect("Prize"),
        class(names::CHEM_AWARDS),
        SimFn::Equal,
    ));
    let inst = g.add_node(SchemaNode::new(
        schema.attr_expect("Institution"),
        class(names::ORGANIZATION),
        SimFn::Equal,
    ));
    let city = g.add_node(SchemaNode::new(
        schema.attr_expect("City"),
        class(names::CITY),
        SimFn::Equal,
    ));
    let pred = |n: &str| kb.pred_named(n).expect("pattern pred");
    g.add_edge(name, dob, pred(names::BORN_ON_DATE));
    g.add_edge(name, country, pred(names::CITIZEN_OF));
    g.add_edge(name, prize, pred(names::WON_PRIZE));
    g.add_edge(name, inst, pred(names::WORKS_AT));
    g.add_edge(inst, city, pred(names::LOCATED_IN));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::fixtures::{nobel_schema, table1_clean, table1_dirty};
    use dr_kb::fixtures::nobel_mini_kb;

    #[test]
    fn clean_tuple_is_full_match() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let pattern = nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        let mut t = table1_clean().tuple(0).clone();
        assert_eq!(katara.match_tuple(&mut t), KataraOutcome::FullMatch);
    }

    #[test]
    fn single_error_is_partially_matched_and_repaired() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let pattern = nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        // Clean r1 with only the City error.
        let mut t = table1_clean().tuple(0).clone();
        let city = schema.attr_expect("City");
        t.set(city, "Karcag");
        match katara.match_tuple(&mut t) {
            KataraOutcome::PartialMatch { matched, repairs } => {
                assert_eq!(matched.len(), 5);
                assert_eq!(repairs.len(), 1);
                assert_eq!(repairs[0].0, city);
                assert_eq!(repairs[0].2, "Haifa");
            }
            other => panic!("expected partial match, got {other:?}"),
        }
        assert_eq!(t.get(city), "Haifa");
    }

    #[test]
    fn typo_breaks_exact_matching() {
        // KATARA has no fuzzy matching: a typo'd institution cannot match,
        // and the minimally-unmatched logic treats Institution as the error.
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let pattern = nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        let mut t = table1_clean().tuple(1).clone(); // Marie Curie
        let inst = schema.attr_expect("Institution");
        t.set(inst, "Paster Institute"); // typo
        match katara.match_tuple(&mut t) {
            KataraOutcome::PartialMatch { repairs, .. } => {
                assert_eq!(repairs.len(), 1);
                assert_eq!(repairs[0].0, inst);
                assert_eq!(repairs[0].2, "Pasteur Institute");
            }
            other => panic!("expected partial match, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tuple_is_no_match() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let pattern = nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        let mut t = Tuple::from_strs(&["A", "B", "C", "D", "E", "F"]);
        assert_eq!(katara.match_tuple(&mut t), KataraOutcome::NoMatch);
    }

    #[test]
    fn relation_report_counts_marks_and_repairs() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let pattern = nobel_table_pattern(&kb, &schema);
        let katara = Katara::new(&ctx, &pattern);
        let mut clean = table1_clean();
        let report = katara.clean(&mut clean);
        // All four clean tuples fully match: 4 × 6 cells.
        assert_eq!(report.marked_positive, 24);
        assert!(report.repairs.is_empty());

        let mut dirty = table1_dirty();
        let report = katara.clean(&mut dirty);
        assert!(report.marked_positive < 24);
        assert!(!report.repairs.is_empty());
    }

    #[test]
    fn subset_enumeration() {
        assert_eq!(subsets_of_size(3, 3).len(), 1);
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(4, 0).len(), 1);
        for mask in subsets_of_size(5, 3) {
            assert_eq!(mask.iter().filter(|&&b| b).count(), 3);
        }
    }
}
