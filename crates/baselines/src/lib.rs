//! # dr-baselines — comparator systems
//!
//! Re-implementations of the three systems the paper's evaluation compares
//! detective rules against (§V):
//!
//! * [`katara`] — KATARA (SIGMOD 2015) with the paper's expert-free
//!   revision: full match ⇒ mark correct, partial match ⇒ repair the
//!   minimally unmatched attributes at minimum repair cost. Exact matching
//!   only.
//! * [`llunatic`] — a Llunatic-style FD-based holistic repair with the
//!   frequency cost-manager and lluns (labelled nulls, scored 0.5).
//! * [`ccfd`] — constant CFDs mined from ground truth, applied by exact
//!   LHS lookup.

#![warn(missing_docs)]

pub mod ccfd;
pub mod fd;
pub mod katara;
pub mod llunatic;

pub use ccfd::{mine_constant_cfds, CfdRepair, ConstantCfd, ConstantCfdSet};
pub use fd::Fd;
pub use katara::{nobel_table_pattern, Katara, KataraOutcome, KataraReport};
pub use llunatic::{llunatic_repair, LlunaticChange, LlunaticConfig, LLUN};
