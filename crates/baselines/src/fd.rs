//! Functional dependencies, shared by the Llunatic-style and constant-CFD
//! baselines.

use dr_relation::{AttrId, Relation, Schema};

/// A functional dependency `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Determinant attributes.
    pub lhs: Vec<AttrId>,
    /// Dependent attribute.
    pub rhs: AttrId,
}

impl Fd {
    /// Builds an FD from attribute names.
    ///
    /// # Panics
    /// Panics if a name is missing from the schema.
    pub fn new(schema: &Schema, lhs: &[&str], rhs: &str) -> Self {
        Self {
            lhs: lhs.iter().map(|a| schema.attr_expect(a)).collect(),
            rhs: schema.attr_expect(rhs),
        }
    }

    /// The LHS values of `tuple`, joined as a lookup key.
    pub fn key_of(&self, tuple: &dr_relation::Tuple) -> String {
        let mut key = String::new();
        for (i, &a) in self.lhs.iter().enumerate() {
            if i > 0 {
                key.push('\u{1f}'); // unit separator: cannot occur in fields
            }
            key.push_str(tuple.get(a));
        }
        key
    }

    /// Whether the FD holds on `relation` (no two tuples agree on `lhs` but
    /// disagree on `rhs`).
    pub fn holds_on(&self, relation: &Relation) -> bool {
        let mut seen: dr_kb::FxHashMap<String, &str> = dr_kb::FxHashMap::default();
        for t in relation.tuples() {
            let key = self.key_of(t);
            let rhs = t.get(self.rhs);
            match seen.get(&key) {
                Some(&prev) if prev != rhs => return false,
                Some(_) => {}
                None => {
                    seen.insert(key, rhs);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_relation::{Relation, Schema};

    fn sample() -> Relation {
        let schema = Schema::new("R", &["Country", "Capital"]);
        let mut r = Relation::new(schema);
        r.push_strs(&["China", "Beijing"]);
        r.push_strs(&["Japan", "Tokyo"]);
        r.push_strs(&["China", "Beijing"]);
        r
    }

    #[test]
    fn fd_holds_on_clean_data() {
        let r = sample();
        let fd = Fd::new(r.schema(), &["Country"], "Capital");
        assert!(fd.holds_on(&r));
    }

    #[test]
    fn fd_violated_by_conflict() {
        let mut r = sample();
        r.push_strs(&["China", "Shanghai"]);
        let fd = Fd::new(r.schema(), &["Country"], "Capital");
        assert!(!fd.holds_on(&r));
    }

    #[test]
    fn composite_lhs_key() {
        let schema = Schema::new("R", &["A", "B", "C"]);
        let mut r = Relation::new(schema);
        r.push_strs(&["x", "y", "1"]);
        r.push_strs(&["x", "z", "2"]);
        let fd = Fd::new(r.schema(), &["A", "B"], "C");
        assert!(fd.holds_on(&r));
        let t = r.tuple(0);
        assert_eq!(fd.key_of(t), "x\u{1f}y");
    }
}
