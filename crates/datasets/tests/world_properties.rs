//! Property tests over the synthetic worlds: the invariants the detective
//! rules rely on must hold for every size and seed.

use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld, WebTablesWorld};
use dr_kb::FxHashSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nobel_world_invariants(n in 10usize..150, seed in 0u64..1_000) {
        let w = NobelWorld::generate(n, seed);
        prop_assert_eq!(w.persons.len(), n);

        let mut names = FxHashSet::default();
        for p in &w.persons {
            prop_assert!(names.insert(p.name.clone()), "duplicate name {}", p.name);
            // ϕ3's positive shape: citizenship = country of the work city.
            let work_city = w.institutions[p.institution].1;
            prop_assert_eq!(p.citizenship, w.cities[work_city].1);
            prop_assert_ne!(p.birth_city, work_city);
            prop_assert_ne!(p.grad_institution, p.institution);
            prop_assert_ne!(&p.dob, &p.died);
            prop_assert!(w.prizes[p.prize].1, "main prize must be chemistry");
            if let Some(second) = p.second_institution {
                prop_assert_ne!(second, p.institution);
            }
            if let Some(other) = p.other_prize {
                prop_assert!(!w.prizes[other].1, "second prize must be non-chemistry");
            }
        }
    }

    #[test]
    fn uis_world_invariants(n in 10usize..150, seed in 0u64..1_000) {
        let w = UisWorld::generate(n, seed);
        prop_assert_eq!(w.persons.len(), n);
        for p in &w.persons {
            prop_assert_ne!(p.home_street, p.work_street);
            prop_assert_ne!(p.home_city, p.birth_city);
            prop_assert_ne!(&p.ssn, &p.tax_id);
            prop_assert!(p.home_city < w.cities.len());
            prop_assert!(w.cities[p.home_city].1 < w.states.len());
            prop_assert!(w.cities[p.home_city].2 < w.zips.len());
        }
    }

    #[test]
    fn kb_generation_respects_full_coverage(seed in 0u64..200) {
        // coverage 1.0 + dropout 0.0 ⇒ every person has every edge.
        let w = NobelWorld::generate(30, seed);
        let profile = KbProfile {
            flavor: KbFlavor::YagoLike,
            entity_coverage: 1.0,
            edge_dropout: 0.0,
            seed,
        };
        let kb = w.kb(&profile);
        let works_at = kb.pred_named("worksAt").unwrap();
        let born_in = kb.pred_named("wasBornIn").unwrap();
        for p in &w.persons {
            let ids = kb.instances_labeled(&p.name);
            prop_assert_eq!(ids.len(), 1, "{}", p.name);
            prop_assert!(!kb.objects(ids[0], works_at).is_empty());
            prop_assert!(!kb.objects(ids[0], born_in).is_empty());
        }
    }

    #[test]
    fn webtables_dirt_respects_ground_truth_shape(seed in 0u64..100) {
        let w = WebTablesWorld::generate(seed);
        for table in &w.tables {
            prop_assert_eq!(table.clean.len(), table.dirty.len(), "{}", table.name);
            prop_assert_eq!(
                table.clean.schema().arity(),
                table.dirty.schema().arity(),
                "{}", table.name
            );
            // Keys are never dirtied.
            let key = dr_relation::AttrId::from_index(0);
            for (c, d) in table.clean.tuples().iter().zip(table.dirty.tuples()) {
                prop_assert_eq!(c.get(key), d.get(key));
            }
        }
    }
}
