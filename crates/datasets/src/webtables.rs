//! The WebTables dataset (§V-A): 37 small, heterogeneous, *originally dirty*
//! Web tables with an average of ~44 tuples.
//!
//! The paper uses the IITB WWT corpus; we generate a corpus with the same
//! operative characteristics (see DESIGN.md §2): many narrow two-column
//! tables over diverse domains, dirty out of the box, each domain carrying a
//! positive relationship (the intended column semantics) and a negative
//! relationship (the related-but-wrong values the dirt comes from). Around
//! fifty detective rules cover the corpus — the rule pool Fig. 8(a) sweeps.

use crate::names;
use crate::profile::{KbFlavor, KbProfile};
use dr_core::graph::schema::NodeType;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::{KbBuilder, KnowledgeBase};
use dr_relation::{Relation, Schema, Tuple};
use dr_simmatch::SimFn;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Number of tables the paper's corpus has.
pub const PAPER_TABLE_COUNT: usize = 37;

/// One entity of a domain: a key, its correct value, and the
/// related-but-wrong value (connected through the negative relationship).
#[derive(Debug, Clone)]
pub struct DomainEntity {
    /// Key-column entity name.
    pub key: String,
    /// Correct value.
    pub value: String,
    /// Related wrong value (≠ `value`).
    pub wrong: String,
    /// Correct second value (three-column domains only).
    pub value2: Option<String>,
    /// Related wrong second value.
    pub wrong2: Option<String>,
}

/// A Web-table domain: a key class, a value class, and the two
/// relationships giving the value column its positive/negative semantics.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Domain slug, e.g. `country-capital`.
    pub name: String,
    /// KB class of the key column.
    pub key_class: String,
    /// KB class of the value column.
    pub value_class: String,
    /// Taxonomy parents (Yago flavor only): `(key parent, value parent)`.
    pub parents: (String, String),
    /// Positive relationship (key → value).
    pub pos_rel: String,
    /// Negative relationship (key → wrong value).
    pub neg_rel: String,
    /// Second value column (three-column domains only).
    pub second: Option<SecondColumn>,
    /// The domain's entities.
    pub entities: Vec<DomainEntity>,
}

/// The second value column of a three-column domain.
#[derive(Debug, Clone)]
pub struct SecondColumn {
    /// KB class of the second value column.
    pub class: String,
    /// Taxonomy parent (Yago flavor).
    pub parent: String,
    /// Positive relationship (key → value2).
    pub pos_rel: String,
    /// Negative relationship (key → wrong value2).
    pub neg_rel: String,
}

/// One generated Web table.
#[derive(Debug, Clone)]
pub struct WebTable {
    /// Table name, e.g. `webtable-07-film-director`.
    pub name: String,
    /// Index into [`WebTablesWorld::domains`].
    pub domain: usize,
    /// The table as found "in the wild" (dirty).
    pub dirty: Relation,
    /// The manually-repaired ground truth.
    pub clean: Relation,
}

/// The WebTables corpus: domains, tables, and rule/KB constructors.
#[derive(Debug, Clone)]
pub struct WebTablesWorld {
    /// Domain definitions.
    pub domains: Vec<Domain>,
    /// The 37 tables.
    pub tables: Vec<WebTable>,
}

/// Template: (slug, key class, value class, key parent, value parent,
/// pos rel, neg rel, key format, value format).
type DomainSpec = (
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    fn(usize) -> String,
    fn(usize) -> String,
);

/// Second-column template: (domain slug, class, parent, pos rel, neg rel,
/// value2 format). Domains listed here become three-column tables, like the
/// wider tables of the paper's corpus.
type SecondSpec = (
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    fn(usize) -> String,
);

const SECOND_SPECS: &[SecondSpec] = &[
    (
        "country-capital",
        "currency",
        "artifact",
        "hasCurrency",
        "formerCurrency",
        |i| format!("{} Dollar", names::place_name(33_000 + i)),
    ),
    (
        "film-director",
        "film studio",
        "organization",
        "madeByStudio",
        "distributedBy",
        |i| format!("{} Pictures", names::place_name(34_000 + i)),
    ),
    (
        "club-stadium",
        "club city",
        "location",
        "basedIn",
        "scoutedIn",
        |i| names::place_name(35_000 + i),
    ),
    (
        "company-ceo",
        "headquarters city",
        "location",
        "headquarteredIn",
        "incorporatedIn",
        |i| names::place_name(36_000 + i),
    ),
];

const DOMAIN_SPECS: &[DomainSpec] = &[
    (
        "country-capital",
        "sovereign country",
        "capital city",
        "location",
        "location",
        "hasCapital",
        "hasLargestCity",
        |i| format!("{} Kingdom", names::place_name(10_000 + i)),
        |i| names::place_name(11_000 + i),
    ),
    (
        "film-director",
        "film",
        "film director",
        "creative work",
        "person",
        "directedBy",
        "producedBy",
        |i| format!("The {} Affair", names::place_name(12_000 + i)),
        |i| names::person_name(3_000 + i),
    ),
    (
        "book-author",
        "novel",
        "novelist",
        "creative work",
        "person",
        "writtenBy",
        "translatedBy",
        |i| format!("Chronicles of {}", names::place_name(13_000 + i)),
        |i| names::person_name(4_000 + i),
    ),
    (
        "club-stadium",
        "football club",
        "stadium",
        "organization",
        "location",
        "playsAt",
        "trainsAt",
        |i| format!("{} United", names::place_name(14_000 + i)),
        |i| format!("{} Arena", names::place_name(15_000 + i)),
    ),
    (
        "company-ceo",
        "company",
        "chief executive",
        "organization",
        "person",
        "ledBy",
        "foundedBy",
        |i| format!("{} Industries", names::place_name(16_000 + i)),
        |i| names::person_name(5_000 + i),
    ),
    (
        "university-city",
        "university",
        "college town",
        "organization",
        "location",
        "locatedIn",
        "foundedIn",
        |i| format!("{} Polytechnic", names::place_name(17_000 + i)),
        |i| names::place_name(18_000 + i),
    ),
    (
        "river-country",
        "river",
        "riparian country",
        "location",
        "location",
        "flowsThrough",
        "originatesIn",
        |i| format!("River {}", names::place_name(19_000 + i)),
        |i| format!("{} Federation", names::place_name(20_000 + i)),
    ),
    (
        "language-country",
        "language",
        "speech country",
        "creative work",
        "location",
        "officialIn",
        "spokenIn",
        |i| format!("{}ish", names::place_name(21_000 + i)),
        |i| format!("{} Commonwealth", names::place_name(22_000 + i)),
    ),
    (
        "dish-country",
        "dish",
        "cuisine country",
        "creative work",
        "location",
        "originatesFrom",
        "popularIn",
        |i| format!("{} Stew", names::place_name(23_000 + i)),
        |i| format!("{} Emirates", names::place_name(24_000 + i)),
    ),
    (
        "airline-airport",
        "airline",
        "hub airport",
        "organization",
        "location",
        "hubAt",
        "fliesTo",
        |i| format!("Air {}", names::place_name(25_000 + i)),
        |i| format!("{} International Airport", names::place_name(26_000 + i)),
    ),
    (
        "band-city",
        "band",
        "music city",
        "organization",
        "location",
        "formedIn",
        "touredIn",
        |i| format!("The {} Quartet", names::place_name(27_000 + i)),
        |i| names::place_name(28_000 + i),
    ),
    (
        "museum-city",
        "museum",
        "museum city",
        "organization",
        "location",
        "locatedIn",
        "lentWorksTo",
        |i| format!("{} Museum", names::place_name(29_000 + i)),
        |i| names::place_name(30_000 + i),
    ),
    (
        "mountain-country",
        "mountain",
        "alpine country",
        "location",
        "location",
        "risesIn",
        "visibleFrom",
        |i| format!("Mount {}", names::place_name(31_000 + i)),
        |i| format!("{} Union", names::place_name(32_000 + i)),
    ),
];

/// Keys per domain.
const KEYS_PER_DOMAIN: usize = 80;
/// Distinct values per domain.
const VALUES_PER_DOMAIN: usize = 25;
/// Fraction of value cells dirtied per table ("dirty originally").
const DIRT_RATE: f64 = 0.15;

impl WebTablesWorld {
    /// The shared two-column Web-table schema.
    pub fn schema() -> Arc<Schema> {
        Schema::new("WebTable", &["Entity", "Value"])
    }

    /// The shared three-column Web-table schema (wider domains).
    pub fn schema3() -> Arc<Schema> {
        Schema::new("WebTable3", &["Entity", "Value", "Value2"])
    }

    /// Generates the corpus (domains + 37 tables) from `seed`.
    pub fn generate(seed: u64) -> Self {
        Self::generate_sized(PAPER_TABLE_COUNT, seed)
    }

    /// Generates a corpus with `n_tables` tables (used by scaling benches).
    pub fn generate_sized(n_tables: usize, seed: u64) -> Self {
        let domains: Vec<Domain> = DOMAIN_SPECS
            .iter()
            .map(|&(name, kc, vc, kp, vp, pos, neg, key_fmt, value_fmt)| {
                let second_spec = SECOND_SPECS.iter().find(|spec| spec.0 == name);
                let values: Vec<String> = (0..VALUES_PER_DOMAIN).map(value_fmt).collect();
                let values2: Option<Vec<String>> = second_spec
                    .map(|&(_, _, _, _, _, fmt)| (0..VALUES_PER_DOMAIN).map(fmt).collect());
                let entities = (0..KEYS_PER_DOMAIN)
                    .map(|i| {
                        let value = values[i % VALUES_PER_DOMAIN].clone();
                        let mut w = (i * 7 + 1) % VALUES_PER_DOMAIN;
                        if values[w] == value {
                            w = (w + 1) % VALUES_PER_DOMAIN;
                        }
                        let (value2, wrong2) = match &values2 {
                            Some(pool) => {
                                let v2 = pool[(i * 3) % VALUES_PER_DOMAIN].clone();
                                let mut w2 = (i * 11 + 3) % VALUES_PER_DOMAIN;
                                if pool[w2] == v2 {
                                    w2 = (w2 + 1) % VALUES_PER_DOMAIN;
                                }
                                (Some(v2), Some(pool[w2].clone()))
                            }
                            None => (None, None),
                        };
                        DomainEntity {
                            key: key_fmt(i),
                            value,
                            wrong: values[w].clone(),
                            value2,
                            wrong2,
                        }
                    })
                    .collect();
                Domain {
                    name: name.to_owned(),
                    key_class: kc.to_owned(),
                    value_class: vc.to_owned(),
                    parents: (kp.to_owned(), vp.to_owned()),
                    pos_rel: pos.to_owned(),
                    neg_rel: neg.to_owned(),
                    second: second_spec.map(|&(_, c, p, pos2, neg2, _)| SecondColumn {
                        class: c.to_owned(),
                        parent: p.to_owned(),
                        pos_rel: pos2.to_owned(),
                        neg_rel: neg2.to_owned(),
                    }),
                    entities,
                }
            })
            .collect();

        let schema2 = Self::schema();
        let schema3 = Self::schema3();
        let tables: Vec<WebTable> = (0..n_tables)
            .map(|t| {
                let domain_idx = t % domains.len();
                let domain = &domains[domain_idx];
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37));
                let size = rng.gen_range(20..=68); // mean ≈ 44
                let mut picks: Vec<usize> = (0..domain.entities.len()).collect();
                picks.shuffle(&mut rng);
                picks.truncate(size);
                picks.sort_unstable();

                let schema = if domain.second.is_some() {
                    schema3.clone()
                } else {
                    schema2.clone()
                };
                let mut clean = Relation::new(schema.clone());
                let mut dirty = Relation::new(schema);
                let dirt_value = |value: &str, wrong: &str, rng: &mut StdRng| {
                    if rng.gen_bool(DIRT_RATE) {
                        if rng.gen_bool(0.5) {
                            dr_relation::noise::make_typo(value, rng)
                        } else {
                            wrong.to_owned()
                        }
                    } else {
                        value.to_owned()
                    }
                };
                for &e in &picks {
                    let entity = &domain.entities[e];
                    let cell = dirt_value(&entity.value, &entity.wrong, &mut rng);
                    match (&entity.value2, &entity.wrong2) {
                        (Some(v2), Some(w2)) => {
                            let cell2 = dirt_value(v2, w2, &mut rng);
                            clean.push(Tuple::from_strs(&[&entity.key, &entity.value, v2]));
                            dirty.push(Tuple::from_strs(&[&entity.key, &cell, &cell2]));
                        }
                        _ => {
                            clean.push(Tuple::from_strs(&[&entity.key, &entity.value]));
                            dirty.push(Tuple::from_strs(&[&entity.key, &cell]));
                        }
                    }
                }
                WebTable {
                    name: format!("webtable-{t:02}-{}", domain.name),
                    domain: domain_idx,
                    dirty,
                    clean,
                }
            })
            .collect();

        Self { domains, tables }
    }

    /// Average tuple count across tables.
    pub fn average_size(&self) -> f64 {
        let total: usize = self.tables.iter().map(|t| t.clean.len()).sum();
        total as f64 / self.tables.len().max(1) as f64
    }

    /// Builds the corpus KB for `profile`: all domains share one KB, like
    /// the general-purpose Yago/DBpedia.
    pub fn kb(&self, profile: &KbProfile) -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let mut rng = StdRng::seed_from_u64(profile.seed);
        for domain in &self.domains {
            let key_class = b.class(&domain.key_class);
            let value_class = b.class(&domain.value_class);
            if profile.flavor == KbFlavor::YagoLike {
                let kp = b.class(&domain.parents.0);
                let vp = b.class(&domain.parents.1);
                let root = b.class("entity");
                b.subclass(key_class, kp);
                b.subclass(value_class, vp);
                b.subclass(kp, root);
                b.subclass(vp, root);
            }
            let pos = b.pred(&domain.pos_rel);
            let neg = b.pred(&domain.neg_rel);
            let second = domain.second.as_ref().map(|sc| {
                let class2 = b.class(&sc.class);
                if profile.flavor == KbFlavor::YagoLike {
                    let parent = b.class(&sc.parent);
                    let root = b.class("entity");
                    b.subclass(class2, parent);
                    b.subclass(parent, root);
                }
                let pos2 = b.pred(&sc.pos_rel);
                let neg2 = b.pred(&sc.neg_rel);
                (class2, pos2, neg2)
            });
            for entity in &domain.entities {
                let value = b.instance(&entity.value);
                b.set_type(value, value_class);
                let wrong = b.instance(&entity.wrong);
                b.set_type(wrong, value_class);
                let value2 = match (&second, &entity.value2, &entity.wrong2) {
                    (Some((class2, _, _)), Some(v2), Some(w2)) => {
                        let v = b.instance(v2);
                        b.set_type(v, *class2);
                        let w = b.instance(w2);
                        b.set_type(w, *class2);
                        Some((v, w))
                    }
                    _ => None,
                };
                if !rng.gen_bool(profile.entity_coverage) {
                    continue;
                }
                let key = b.instance(&entity.key);
                b.set_type(key, key_class);
                if !rng.gen_bool(profile.edge_dropout) {
                    b.edge(key, pos, value);
                }
                if !rng.gen_bool(profile.edge_dropout) {
                    b.edge(key, neg, wrong);
                }
                if let (Some((_, pos2, neg2)), Some((v, w))) = (&second, value2) {
                    if !rng.gen_bool(profile.edge_dropout) {
                        b.edge(key, *pos2, v);
                    }
                    if !rng.gen_bool(profile.edge_dropout) {
                        b.edge(key, *neg2, w);
                    }
                }
            }
        }
        b.finalize().expect("webtables taxonomy is acyclic")
    }

    /// Domains for which no detective rule was verified: the paper notes
    /// that for some narrow Web tables "it is hard to ensure which
    /// attribute is wrong", so DRs conservatively skip them (§V-B Exp-1
    /// recall discussion) while KATARA still guesses.
    pub const RULELESS_DOMAINS: [&'static str; 3] =
        ["band-city", "museum-city", "mountain-country"];

    /// The corpus rule pool against `kb`: five sim variants per covered
    /// domain (10 domains × 5 = the paper's 50 WebTables rules).
    pub fn rules(&self, kb: &KnowledgeBase) -> Vec<DetectiveRule> {
        let schema = Self::schema();
        let schema3 = Self::schema3();
        let entity_col = schema.attr_expect("Entity");
        let value_col = schema.attr_expect("Value");
        let value2_col = schema3.attr_expect("Value2");
        use RuleNodeRef::{Evidence, Negative, Positive};
        let mut rules = Vec::new();

        for pass in 0..5 {
            for domain in &self.domains {
                if rules.len() >= 50 {
                    break;
                }
                if Self::RULELESS_DOMAINS.contains(&domain.name.as_str()) {
                    continue;
                }
                let (Some(kc), Some(vc)) = (
                    kb.class_named(&domain.key_class),
                    kb.class_named(&domain.value_class),
                ) else {
                    continue;
                };
                let (Some(pos), Some(neg)) = (
                    kb.pred_named(&domain.pos_rel),
                    kb.pred_named(&domain.neg_rel),
                ) else {
                    continue;
                };
                // The key (evidence) stays exact in every variant: a fuzzy
                // key can anchor the tuple to a near-twin entity and break
                // the trusted-repair guarantee.
                let (key_sim, value_sim, tag) = match pass {
                    0 => (SimFn::Equal, SimFn::EditDistance(2), "fuzzy"),
                    1 => (SimFn::Equal, SimFn::Equal, "exact"),
                    2 => (SimFn::Equal, SimFn::jaccard_threshold(0.8), "token"),
                    3 => (SimFn::Equal, SimFn::EditDistance(1), "narrow"),
                    _ => (SimFn::Equal, SimFn::cosine_threshold(0.7), "cosine"),
                };
                let key_node = node(entity_col, NodeType::Class(kc), key_sim);
                let value_node = node(value_col, NodeType::Class(vc), value_sim);
                // Negative nodes match exactly: semantic dirt is verbatim.
                let value_neg = node(value_col, NodeType::Class(vc), SimFn::Equal);
                let rule = DetectiveRule::new(
                    format!("wt-{}-{}", domain.name, tag),
                    vec![key_node],
                    value_node,
                    value_neg,
                    vec![
                        RuleEdge {
                            from: Evidence(0),
                            to: Positive,
                            rel: pos,
                        },
                        RuleEdge {
                            from: Evidence(0),
                            to: Negative,
                            rel: neg,
                        },
                    ],
                )
                .expect("webtable rule valid");
                rules.push(rule);

                // Second-column rule for three-column domains.
                if rules.len() >= 50 {
                    break;
                }
                if let Some(sc) = &domain.second {
                    let (Some(c2), Some(pos2), Some(neg2)) = (
                        kb.class_named(&sc.class),
                        kb.pred_named(&sc.pos_rel),
                        kb.pred_named(&sc.neg_rel),
                    ) else {
                        continue;
                    };
                    let value2_node = node(value2_col, NodeType::Class(c2), value_sim);
                    let value2_neg = node(value2_col, NodeType::Class(c2), SimFn::Equal);
                    let rule = DetectiveRule::new(
                        format!("wt-{}-v2-{}", domain.name, tag),
                        vec![key_node],
                        value2_node,
                        value2_neg,
                        vec![
                            RuleEdge {
                                from: Evidence(0),
                                to: Positive,
                                rel: pos2,
                            },
                            RuleEdge {
                                from: Evidence(0),
                                to: Negative,
                                rel: neg2,
                            },
                        ],
                    )
                    .expect("webtable v2 rule valid");
                    rules.push(rule);
                }
            }
        }
        rules.truncate(50);
        rules
    }

    /// The subset of `rules` applicable to a relation of the given arity
    /// (a rule touching `Value2` cannot run on a two-column table).
    pub fn applicable_rules(rules: &[DetectiveRule], arity: usize) -> Vec<DetectiveRule> {
        rules
            .iter()
            .filter(|r| r.max_col_index() < arity)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{fast_repair, ApplyOptions, MatchContext};
    use dr_relation::GroundTruth;

    fn world() -> WebTablesWorld {
        WebTablesWorld::generate(42)
    }

    #[test]
    fn corpus_shape_matches_paper() {
        let w = world();
        assert_eq!(w.tables.len(), 37);
        assert_eq!(w.domains.len(), 13);
        let avg = w.average_size();
        assert!(
            (34.0..=54.0).contains(&avg),
            "average size {avg} should be near the paper's 44"
        );
    }

    #[test]
    fn tables_are_originally_dirty() {
        let w = world();
        let mut total_dirty_cells = 0usize;
        for table in &w.tables {
            let gt = GroundTruth::new(table.clean.clone());
            total_dirty_cells += gt.error_count(&table.dirty);
        }
        assert!(total_dirty_cells > 50, "corpus has substantial dirt");
    }

    #[test]
    fn rule_pool_has_fifty_rules() {
        let w = world();
        let kb = w.kb(&KbProfile::yago());
        let rules = w.rules(&kb);
        assert_eq!(rules.len(), 50);
        // Rule names are unique.
        let names: dr_kb::FxHashSet<&str> = rules.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn domain_rules_do_not_fire_across_domains() {
        // A capital-city rule must not touch a film-director table.
        let w = world();
        let kb = w.kb(&KbProfile::yago());
        let rules = w.rules(&kb);
        let ctx = MatchContext::new(&kb);
        let table = w
            .tables
            .iter()
            .find(|t| w.domains[t.domain].name == "film-director")
            .expect("film table exists");
        let capital_rules: Vec<DetectiveRule> = rules
            .iter()
            .filter(|r| r.name().starts_with("wt-country-capital"))
            .cloned()
            .collect();
        assert!(!capital_rules.is_empty());
        let mut relation = table.dirty.clone();
        let applicable =
            WebTablesWorld::applicable_rules(&capital_rules, relation.schema().arity());
        let report = fast_repair(&ctx, &applicable, &mut relation, &ApplyOptions::default());
        assert_eq!(report.total_applications(), 0);
    }

    #[test]
    fn corpus_repair_improves_tables() {
        let w = world();
        let kb = w.kb(&KbProfile::yago());
        let rules = w.rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut before = 0usize;
        let mut after = 0usize;
        for table in &w.tables {
            let gt = GroundTruth::new(table.clean.clone());
            let mut relation = table.dirty.clone();
            before += gt.error_count(&relation);
            let applicable = WebTablesWorld::applicable_rules(&rules, relation.schema().arity());
            fast_repair(&ctx, &applicable, &mut relation, &ApplyOptions::default());
            after += gt.error_count(&relation);
        }
        assert!(
            after * 2 < before,
            "expected most dirt repaired: {after} of {before} remain"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WebTablesWorld::generate(42);
        let b = WebTablesWorld::generate(42);
        for (x, y) in a.tables.iter().zip(&b.tables) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dirty.len(), y.dirty.len());
            for row in 0..x.dirty.len() {
                assert_eq!(x.dirty.tuple(row).cells(), y.dirty.tuple(row).cells());
            }
        }
        let c = WebTablesWorld::generate(43);
        let differs = a
            .tables
            .iter()
            .zip(&c.tables)
            .any(|(x, y)| x.dirty.len() != y.dirty.len());
        assert!(differs, "different seeds give different corpora");
    }
}
