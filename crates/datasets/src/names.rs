//! Deterministic synthetic name pools.
//!
//! The generators need large pools of distinct, human-looking entity names —
//! people, cities, countries, streets — whose composition is a pure function
//! of an index. Syllable concatenation gives pronounceable, collision-free
//! names without shipping word lists.

/// Onset syllables for place-like names.
const PLACE_ONSETS: &[&str] = &[
    "Bar", "Cal", "Dor", "El", "Fen", "Gar", "Hal", "Ist", "Jor", "Kel", "Lun", "Mar", "Nor", "Or",
    "Pel", "Quin", "Ros", "Sal", "Tor", "Ul", "Ver", "Wil", "Xan", "Yor", "Zel",
];

/// Middle syllables.
const PLACE_MIDDLES: &[&str] = &[
    "a", "ba", "da", "en", "go", "i", "ka", "lo", "ma", "ne", "o", "pa", "ri", "sa", "ti", "u",
];

/// Coda syllables for place-like names.
const PLACE_CODAS: &[&str] = &[
    "burg", "by", "dale", "field", "ford", "grad", "ham", "holm", "mont", "mouth", "port", "stad",
    "ton", "ville", "wick", "worth",
];

/// First names for person pools.
const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Boris",
    "Clara",
    "Dmitri",
    "Elena",
    "Farid",
    "Greta",
    "Hugo",
    "Irene",
    "Jonas",
    "Karin",
    "Lars",
    "Mira",
    "Nils",
    "Olga",
    "Pavel",
    "Quentin",
    "Rosa",
    "Stefan",
    "Tania",
    "Ulrich",
    "Vera",
    "Walter",
    "Xenia",
    "Yusuf",
    "Zelda",
    "Anton",
    "Beatrix",
    "Casimir",
    "Daphne",
    "Edmund",
    "Felicia",
    "Gustav",
    "Henrietta",
    "Ivan",
    "Jolanda",
    "Konrad",
    "Lydia",
    "Magnus",
    "Nadia",
];

/// Last names for person pools.
const LAST_NAMES: &[&str] = &[
    "Abernathy",
    "Bergström",
    "Calloway",
    "Drummond",
    "Eriksson",
    "Falkenrath",
    "Grimaldi",
    "Holloway",
    "Ivanov",
    "Jankowski",
    "Kowalczyk",
    "Lindqvist",
    "Montague",
    "Novak",
    "Oppenheim",
    "Petrov",
    "Quimby",
    "Rasmussen",
    "Sokolov",
    "Thorvald",
    "Ulanov",
    "Vasquez",
    "Whitfield",
    "Xanthos",
    "Yamamoto",
    "Zielinski",
    "Ashworth",
    "Blackwood",
    "Castellan",
    "Davenport",
    "Engelhardt",
    "Fitzgerald",
    "Granger",
    "Huxley",
    "Ingram",
    "Jefferson",
    "Kellerman",
    "Langley",
    "Mansfield",
    "Northcott",
    "Ostrander",
    "Pemberton",
    "Quillfeather",
    "Rothschild",
    "Silverstein",
    "Templeton",
    "Underwood",
    "Vandermeer",
    "Wainwright",
    "Yarborough",
];

/// The `i`-th synthetic place name (distinct for distinct `i`).
pub fn place_name(i: usize) -> String {
    let onset = PLACE_ONSETS[i % PLACE_ONSETS.len()];
    let rest = i / PLACE_ONSETS.len();
    let coda = PLACE_CODAS[rest % PLACE_CODAS.len()];
    let deeper = rest / PLACE_CODAS.len();
    if deeper == 0 {
        format!("{onset}{coda}")
    } else {
        let middle = PLACE_MIDDLES[(deeper - 1) % PLACE_MIDDLES.len()];
        let suffix = (deeper - 1) / PLACE_MIDDLES.len();
        if suffix == 0 {
            format!("{onset}{middle}{coda}")
        } else {
            format!("{onset}{middle}{coda} {suffix}")
        }
    }
}

/// The `i`-th synthetic person name (distinct for distinct `i`).
pub fn person_name(i: usize) -> String {
    let first = FIRST_NAMES[i % FIRST_NAMES.len()];
    let rest = i / FIRST_NAMES.len();
    let last = LAST_NAMES[rest % LAST_NAMES.len()];
    let suffix = rest / LAST_NAMES.len();
    if suffix == 0 {
        format!("{first} {last}")
    } else {
        // Beyond 2000 combinations, disambiguate with a roman-like ordinal.
        format!("{first} {last} {}", ordinal(suffix))
    }
}

fn ordinal(mut n: usize) -> String {
    // Small roman numerals are enough (pools are large).
    const PAIRS: &[(usize, &str)] = &[
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut out = String::new();
    for &(value, glyph) in PAIRS {
        while n >= value {
            out.push_str(glyph);
            n -= value;
        }
    }
    out
}

/// A synthetic ISO-like date derived from `i`, in `YYYY-MM-DD` form.
pub fn date(i: usize) -> String {
    let year = 1880 + (i * 7) % 120;
    let month = 1 + (i * 11) % 12;
    let day = 1 + (i * 17) % 28;
    format!("{year:04}-{month:02}-{day:02}")
}

/// A synthetic 9-digit SSN-like identifier derived from `i`.
pub fn ssn(i: usize) -> String {
    let a = 100 + (i * 37) % 900;
    let b = 10 + (i * 53) % 90;
    let c = 1000 + (i * 7919) % 9000;
    format!("{a:03}-{b:02}-{c:04}")
}

/// A synthetic street address derived from `i`.
pub fn street(i: usize) -> String {
    const KINDS: &[&str] = &["St", "Ave", "Blvd", "Rd", "Ln"];
    let number = 1 + (i * 13) % 9900;
    let name = place_name(i / 3 + 7);
    let kind = KINDS[i % KINDS.len()];
    format!("{number} {name} {kind}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::FxHashSet;

    #[test]
    fn place_names_are_distinct() {
        let mut seen = FxHashSet::default();
        for i in 0..5000 {
            assert!(seen.insert(place_name(i)), "collision at {i}");
        }
    }

    #[test]
    fn person_names_are_distinct() {
        let mut seen = FxHashSet::default();
        for i in 0..5000 {
            assert!(seen.insert(person_name(i)), "collision at {i}");
        }
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(person_name(42), person_name(42));
        assert_eq!(place_name(999), place_name(999));
    }

    #[test]
    fn dates_are_plausible() {
        for i in 0..1000 {
            let d = date(i);
            assert_eq!(d.len(), 10);
            let year: u32 = d[0..4].parse().unwrap();
            let month: u32 = d[5..7].parse().unwrap();
            let day: u32 = d[8..10].parse().unwrap();
            assert!((1880..2001).contains(&year));
            assert!((1..=12).contains(&month));
            assert!((1..=28).contains(&day));
        }
    }

    #[test]
    fn ssn_format() {
        for i in 0..100 {
            let s = ssn(i);
            assert_eq!(s.len(), 11);
            assert_eq!(&s[3..4], "-");
            assert_eq!(&s[6..7], "-");
        }
    }

    #[test]
    fn streets_have_number_and_kind() {
        let s = street(17);
        assert!(s.split(' ').count() >= 3, "{s}");
    }
}
