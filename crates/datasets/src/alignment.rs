//! Dataset ↔ KB alignment counting (Table II).
//!
//! The paper reports, per dataset and KB, how many classes and relationships
//! of the KB align with the dataset. We count a class as aligned when some
//! cell value exactly matches one of its instances, and a relationship as
//! aligned when it connects instances matched from two columns of the same
//! tuple.

use dr_kb::{ClassId, FxHashSet, InstanceId, KnowledgeBase, Node, PredId};
use dr_relation::Relation;

/// Table-II-style alignment counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignmentStats {
    /// Number of KB classes with at least one matched instance.
    pub classes: usize,
    /// Number of KB relationships/properties observed between matched
    /// instances (or their literals) within single tuples.
    pub relationships: usize,
}

/// Counts alignment between `kb` and `relation`, sampling at most
/// `max_tuples` tuples.
pub fn alignment(kb: &KnowledgeBase, relation: &Relation, max_tuples: usize) -> AlignmentStats {
    alignment_many(kb, &[relation], max_tuples)
}

/// Counts alignment between `kb` and the union of several relations
/// (possibly of different schemas), sampling at most `max_tuples` tuples
/// per relation.
pub fn alignment_many(
    kb: &KnowledgeBase,
    relations: &[&Relation],
    max_tuples: usize,
) -> AlignmentStats {
    let mut classes: FxHashSet<ClassId> = FxHashSet::default();
    let mut rels: FxHashSet<PredId> = FxHashSet::default();
    for relation in relations {
        count_into(kb, relation, max_tuples, &mut classes, &mut rels);
    }
    AlignmentStats {
        classes: classes.len(),
        relationships: rels.len(),
    }
}

fn count_into(
    kb: &KnowledgeBase,
    relation: &Relation,
    max_tuples: usize,
    classes: &mut FxHashSet<ClassId>,
    rels: &mut FxHashSet<PredId>,
) {
    let arity = relation.schema().arity();

    for tuple in relation.tuples().iter().take(max_tuples) {
        // Exact instance matches per column, plus literal matches.
        let matched: Vec<Vec<InstanceId>> = (0..arity)
            .map(|a| {
                kb.instances_labeled(tuple.get(dr_relation::AttrId::from_index(a)))
                    .to_vec()
            })
            .collect();
        let literals: Vec<Option<Node>> = (0..arity)
            .map(|a| {
                kb.literal_with_value(tuple.get(dr_relation::AttrId::from_index(a)))
                    .map(Node::Literal)
            })
            .collect();
        for column in &matched {
            for &i in column {
                classes.extend(kb.instance_classes(i).iter().copied());
            }
        }
        for (a, from) in matched.iter().enumerate() {
            if from.is_empty() {
                continue;
            }
            for b in 0..arity {
                if a == b {
                    continue;
                }
                // Targets: matched instances of column b, or its literal.
                let targets: Vec<Node> = matched[b]
                    .iter()
                    .map(|&i| Node::Instance(i))
                    .chain(literals[b])
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                for &x in from {
                    for &p in kb.preds_of(x) {
                        if !rels.contains(&p) && targets.iter().any(|&t| kb.has_edge(x, p, t)) {
                            rels.insert(p);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nobel::NobelWorld;
    use crate::profile::KbProfile;

    #[test]
    fn nobel_alignment_counts() {
        let w = NobelWorld::generate(100, 5);
        let kb = w.kb(&KbProfile::yago());
        let relation = w.clean_relation();
        let stats = alignment(&kb, &relation, 100);
        // Table II reports 5 classes / 4 relationships for Nobel; our world
        // aligns the 6 leaf classes and the tuple-internal relationships.
        assert!(
            (4..=8).contains(&stats.classes),
            "classes = {}",
            stats.classes
        );
        assert!(
            (3..=8).contains(&stats.relationships),
            "relationships = {}",
            stats.relationships
        );
    }

    #[test]
    fn empty_relation_aligns_nothing() {
        let w = NobelWorld::generate(10, 5);
        let kb = w.kb(&KbProfile::yago());
        let empty = dr_relation::Relation::new(NobelWorld::schema());
        let stats = alignment(&kb, &empty, 100);
        assert_eq!(stats.classes, 0);
        assert_eq!(stats.relationships, 0);
    }

    #[test]
    fn dbpedia_aligns_no_more_than_yago_for_nobel() {
        let w = NobelWorld::generate(150, 5);
        let relation = w.clean_relation();
        let yago = alignment(&w.kb(&KbProfile::yago()), &relation, 150);
        let dbpedia = alignment(&w.kb(&KbProfile::dbpedia()), &relation, 150);
        assert!(yago.relationships >= dbpedia.relationships);
    }
}
