//! The UIS dataset (§V-A): synthetic person/address records in the style of
//! the UIS Database Generator, scalable to the paper's 100K tuples.
//!
//! Schema: `UIS(Name, SSN, Address, City, State, Zip)`. The generated world
//! gives every column both a positive semantics and a related-but-wrong
//! semantics, so all five non-key columns get a detective rule:
//!
//! | column  | positive              | negative (error semantics)   |
//! |---------|-----------------------|------------------------------|
//! | SSN     | `hasSsn`              | `hasTaxId`                   |
//! | Address | `livesAt` street      | `worksAt` street             |
//! | City    | `livesIn` city        | `wasBornIn` city             |
//! | State   | home city `inState`   | `bornInState`                |
//! | Zip     | home city `hasZip`    | `bornZip` (birth-city zip)   |

use crate::names;
use crate::profile::{KbFlavor, KbProfile};
use dr_core::graph::schema::NodeType;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::{KbBuilder, KnowledgeBase};
use dr_relation::noise::SemanticSource;
use dr_relation::{CellRef, Relation, Schema};
use dr_simmatch::SimFn;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Class and predicate names of the UIS world.
pub mod uis_names {
    /// Person class.
    pub const PERSON: &str = "person";
    /// Street class.
    pub const STREET: &str = "street";
    /// City class.
    pub const CITY: &str = "city";
    /// State class.
    pub const STATE: &str = "state";
    /// Zip-code class.
    pub const ZIP: &str = "zip code";
    /// person livesAt street.
    pub const LIVES_AT: &str = "livesAt";
    /// person worksAt street.
    pub const WORKS_AT: &str = "worksAt";
    /// person livesIn city.
    pub const LIVES_IN: &str = "livesIn";
    /// person wasBornIn city.
    pub const BORN_IN: &str = "wasBornIn";
    /// city inState state.
    pub const IN_STATE: &str = "inState";
    /// person bornInState state.
    pub const BORN_IN_STATE: &str = "bornInState";
    /// city hasZip zip.
    pub const HAS_ZIP: &str = "hasZip";
    /// person bornZip zip (zip of the birth city).
    pub const BORN_ZIP: &str = "bornZip";
    /// person hasSsn literal.
    pub const HAS_SSN: &str = "hasSsn";
    /// person hasTaxId literal.
    pub const HAS_TAX_ID: &str = "hasTaxId";
}

/// One person record of the UIS world.
#[derive(Debug, Clone)]
pub struct UisPerson {
    /// Unique full name.
    pub name: String,
    /// Social security number.
    pub ssn: String,
    /// Tax identifier (≠ ssn): the SSN column's semantic confusion.
    pub tax_id: String,
    /// Home street (index).
    pub home_street: usize,
    /// Work street (index, ≠ home).
    pub work_street: usize,
    /// Home city (index).
    pub home_city: usize,
    /// Birth city (index, ≠ home).
    pub birth_city: usize,
}

/// The UIS universe.
#[derive(Debug, Clone)]
pub struct UisWorld {
    /// Person records; tuple `i` describes `persons[i]`.
    pub persons: Vec<UisPerson>,
    /// Street names.
    pub streets: Vec<String>,
    /// `(name, state index, zip index)` cities.
    pub cities: Vec<(String, usize, usize)>,
    /// State names.
    pub states: Vec<String>,
    /// Zip codes (one per city).
    pub zips: Vec<String>,
}

impl UisWorld {
    /// Generates a UIS world with `n` persons from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_states = 30;
        let n_cities = (n / 40).clamp(10, 600);
        let n_streets = (n / 10).clamp(20, 2_000);

        let states: Vec<String> = (0..n_states)
            .map(|i| format!("{} State", names::place_name(2000 + i)))
            .collect();
        let zips: Vec<String> = (0..n_cities)
            .map(|i| format!("{:05}", 10_000 + (i * 97) % 89_999))
            .collect();
        let cities: Vec<(String, usize, usize)> = (0..n_cities)
            .map(|i| (names::place_name(6000 + i), i % n_states, i))
            .collect();
        let streets: Vec<String> = (0..n_streets).map(names::street).collect();

        let persons: Vec<UisPerson> = (0..n)
            .map(|i| {
                let home_street = rng.gen_range(0..n_streets);
                let work_street = loop {
                    let s = rng.gen_range(0..n_streets);
                    if s != home_street {
                        break s;
                    }
                };
                let home_city = rng.gen_range(0..n_cities);
                let birth_city = loop {
                    let c = rng.gen_range(0..n_cities);
                    if c != home_city {
                        break c;
                    }
                };
                UisPerson {
                    name: names::person_name(i),
                    ssn: names::ssn(i),
                    tax_id: names::ssn(i + 500_009),
                    home_street,
                    work_street,
                    home_city,
                    birth_city,
                }
            })
            .collect();

        Self {
            persons,
            streets,
            cities,
            states,
            zips,
        }
    }

    /// The UIS schema.
    pub fn schema() -> Arc<Schema> {
        Schema::new("UIS", &["Name", "SSN", "Address", "City", "State", "Zip"])
    }

    /// The clean relation.
    pub fn clean_relation(&self) -> Relation {
        let mut relation = Relation::new(Self::schema());
        for p in &self.persons {
            let (city_name, state, zip) = &self.cities[p.home_city];
            relation.push_strs(&[
                &p.name,
                &p.ssn,
                &self.streets[p.home_street],
                city_name,
                &self.states[*state],
                &self.zips[*zip],
            ]);
        }
        relation
    }

    /// Builds the KB for `profile`.
    pub fn kb(&self, profile: &KbProfile) -> KnowledgeBase {
        use uis_names::*;
        let mut b = KbBuilder::new();
        let mut rng = StdRng::seed_from_u64(profile.seed);

        let person = b.class(PERSON);
        let street = b.class(STREET);
        let city = b.class(CITY);
        let state = b.class(STATE);
        let zip = b.class(ZIP);
        if profile.flavor == KbFlavor::YagoLike {
            let location = b.class("location");
            let region = b.class("administrative region");
            b.subclass(region, location);
            b.subclass(city, region);
            b.subclass(state, region);
            b.subclass(street, location);
            let agent = b.class("agent");
            b.subclass(person, agent);
        }

        let lives_at = b.pred(LIVES_AT);
        let works_at = b.pred(WORKS_AT);
        let lives_in = b.pred(LIVES_IN);
        let born_in = b.pred(BORN_IN);
        let in_state = b.pred(IN_STATE);
        let born_in_state = b.pred(BORN_IN_STATE);
        let has_zip = b.pred(HAS_ZIP);
        let born_zip = b.pred(BORN_ZIP);
        let has_ssn = b.pred(HAS_SSN);
        let has_tax_id = b.pred(HAS_TAX_ID);

        let state_ids: Vec<_> = self
            .states
            .iter()
            .map(|name| {
                let i = b.instance(name);
                b.set_type(i, state);
                i
            })
            .collect();
        let zip_ids: Vec<_> = self
            .zips
            .iter()
            .map(|z| {
                let i = b.instance(z);
                b.set_type(i, zip);
                i
            })
            .collect();
        let city_ids: Vec<_> = self
            .cities
            .iter()
            .map(|(name, s, z)| {
                let i = b.instance(name);
                b.set_type(i, city);
                b.edge(i, in_state, state_ids[*s]);
                b.edge(i, has_zip, zip_ids[*z]);
                i
            })
            .collect();
        let street_ids: Vec<_> = self
            .streets
            .iter()
            .map(|name| {
                let i = b.instance(name);
                b.set_type(i, street);
                i
            })
            .collect();

        for p in &self.persons {
            let covered = rng.gen_bool(profile.entity_coverage);
            let inst = b.instance(&p.name);
            b.set_type(inst, person);
            if !covered {
                continue;
            }
            let keep = |rng: &mut StdRng| !rng.gen_bool(profile.edge_dropout);
            if keep(&mut rng) {
                b.edge(inst, lives_at, street_ids[p.home_street]);
            }
            if keep(&mut rng) {
                b.edge(inst, works_at, street_ids[p.work_street]);
            }
            if keep(&mut rng) {
                b.edge(inst, lives_in, city_ids[p.home_city]);
            }
            if keep(&mut rng) {
                b.edge(inst, born_in, city_ids[p.birth_city]);
            }
            if keep(&mut rng) {
                let birth_state = self.cities[p.birth_city].1;
                b.edge(inst, born_in_state, state_ids[birth_state]);
            }
            if keep(&mut rng) {
                let birth_zip = self.cities[p.birth_city].2;
                b.edge(inst, born_zip, zip_ids[birth_zip]);
            }
            if keep(&mut rng) {
                let ssn = b.literal(&p.ssn);
                b.edge(inst, has_ssn, ssn);
            }
            if keep(&mut rng) {
                let tax = b.literal(&p.tax_id);
                b.edge(inst, has_tax_id, tax);
            }
        }

        b.finalize().expect("uis taxonomy is acyclic")
    }

    /// The five UIS detective rules against `kb`.
    pub fn rules<'a>(kb: impl Into<dr_kb::KbRef<'a>>) -> Vec<DetectiveRule> {
        use uis_names::*;
        let kb = kb.into();
        let schema = Self::schema();
        let class = |n: &str| NodeType::Class(kb.class_named(n).expect("uis class"));
        let pred = |n: &str| kb.pred_named(n).expect("uis pred");
        let col = |n: &str| schema.attr_expect(n);

        let name_node = node(col("Name"), class(PERSON), SimFn::Equal);
        // Tolerant positives (typo repair), exact negatives (semantic
        // errors are verbatim) — see the Nobel rules for the rationale.
        let city_node = node(col("City"), class(CITY), SimFn::EditDistance(2));
        let city_neg = node(col("City"), class(CITY), SimFn::Equal);

        use RuleNodeRef::{Evidence, Negative, Positive};
        let edge = |from, rel, to| RuleEdge { from, to, rel };

        let ssn_rule = DetectiveRule::new(
            "uis-ssn",
            vec![name_node],
            node(col("SSN"), NodeType::Literal, SimFn::EditDistance(2)),
            node(col("SSN"), NodeType::Literal, SimFn::Equal),
            vec![
                edge(Evidence(0), pred(HAS_SSN), Positive),
                edge(Evidence(0), pred(HAS_TAX_ID), Negative),
            ],
        )
        .expect("ssn rule valid");

        let address_rule = DetectiveRule::new(
            "uis-address",
            vec![name_node],
            node(col("Address"), class(STREET), SimFn::EditDistance(2)),
            node(col("Address"), class(STREET), SimFn::Equal),
            vec![
                edge(Evidence(0), pred(LIVES_AT), Positive),
                edge(Evidence(0), pred(WORKS_AT), Negative),
            ],
        )
        .expect("address rule valid");

        let city_rule = DetectiveRule::new(
            "uis-city",
            vec![name_node],
            city_node,
            city_neg,
            vec![
                edge(Evidence(0), pred(LIVES_IN), Positive),
                edge(Evidence(0), pred(BORN_IN), Negative),
            ],
        )
        .expect("city rule valid");

        let state_node = node(col("State"), class(STATE), SimFn::EditDistance(2));
        let state_neg = node(col("State"), class(STATE), SimFn::Equal);
        let state_rule = DetectiveRule::new(
            "uis-state",
            vec![name_node, city_node],
            state_node,
            state_neg,
            vec![
                edge(Evidence(0), pred(LIVES_IN), Evidence(1)),
                edge(Evidence(1), pred(IN_STATE), Positive),
                edge(Evidence(0), pred(BORN_IN_STATE), Negative),
            ],
        )
        .expect("state rule valid");

        let zip_node = node(col("Zip"), class(ZIP), SimFn::EditDistance(2));
        let zip_neg = node(col("Zip"), class(ZIP), SimFn::Equal);
        let zip_rule = DetectiveRule::new(
            "uis-zip",
            vec![name_node, city_node],
            zip_node,
            zip_neg,
            vec![
                edge(Evidence(0), pred(LIVES_IN), Evidence(1)),
                edge(Evidence(1), pred(HAS_ZIP), Positive),
                edge(Evidence(0), pred(BORN_ZIP), Negative),
            ],
        )
        .expect("zip rule valid");

        vec![address_rule, city_rule, state_rule, zip_rule, ssn_rule]
    }

    /// The dataset-aware semantic-error source.
    pub fn semantic_source(&self) -> UisSemanticSource<'_> {
        UisSemanticSource { world: self }
    }
}

/// Semantic errors for the UIS schema.
pub struct UisSemanticSource<'w> {
    world: &'w UisWorld,
}

impl SemanticSource for UisSemanticSource<'_> {
    fn related_value(
        &self,
        relation: &Relation,
        cell: CellRef,
        rng: &mut StdRng,
    ) -> Option<String> {
        let w = self.world;
        let p = w.persons.get(cell.row)?;
        let schema = relation.schema();
        let value = match schema.attr_name(cell.attr) {
            "SSN" => p.tax_id.clone(),
            "Address" => w.streets[p.work_street].clone(),
            "City" => w.cities[p.birth_city].0.clone(),
            "State" => w.states[w.cities[p.birth_city].1].clone(),
            "Zip" => w.zips[w.cities[p.birth_city].2].clone(),
            "Name" => {
                let other = rng.gen_range(0..w.persons.len());
                w.persons[other].name.clone()
            }
            _ => return None,
        };
        (value != relation.value(cell)).then_some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
    use dr_core::{fast_repair, ApplyOptions, MatchContext};
    use dr_relation::noise::{inject, NoiseSpec};
    use dr_relation::GroundTruth;

    fn small_world() -> UisWorld {
        UisWorld::generate(200, 13)
    }

    #[test]
    fn world_shape() {
        let w = small_world();
        let r = w.clean_relation();
        assert_eq!(r.len(), 200);
        assert_eq!(r.schema().arity(), 6);
        for p in &w.persons {
            assert_ne!(p.home_street, p.work_street);
            assert_ne!(p.home_city, p.birth_city);
            assert_ne!(p.ssn, p.tax_id);
        }
    }

    #[test]
    fn state_and_zip_follow_home_city() {
        let w = small_world();
        let r = w.clean_relation();
        let schema = r.schema().clone();
        for (i, p) in w.persons.iter().enumerate() {
            let (_, state, zip) = w.cities[p.home_city];
            assert_eq!(r.tuple(i).get(schema.attr_expect("State")), w.states[state]);
            assert_eq!(r.tuple(i).get(schema.attr_expect("Zip")), w.zips[zip]);
        }
    }

    #[test]
    fn rules_resolve_on_both_kbs() {
        let w = small_world();
        for profile in [KbProfile::yago(), KbProfile::dbpedia()] {
            let kb = w.kb(&profile);
            assert_eq!(UisWorld::rules(&kb).len(), 5);
        }
    }

    #[test]
    fn rules_are_consistent_on_sample() {
        let w = small_world();
        let kb = w.kb(&KbProfile::yago());
        let rules = UisWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let (dirty, _) = inject(&clean, &NoiseSpec::new(0.1, 3), &w.semantic_source());
        let verdict = check_consistency(&ctx, &rules, &dirty, &ConsistencyOptions::default());
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn repair_recovers_most_errors() {
        let w = small_world();
        let kb = w.kb(&KbProfile::yago());
        let rules = UisWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let gt = GroundTruth::new(clean.clone());
        let name_attr = clean.schema().attr_expect("Name");
        let spec = NoiseSpec::new(0.10, 23).with_excluded(vec![name_attr]);
        let (mut dirty, _) = inject(&clean, &spec, &w.semantic_source());
        let before = gt.error_count(&dirty);
        fast_repair(&ctx, &rules, &mut dirty, &ApplyOptions::default());
        let after = gt.error_count(&dirty);
        assert!(
            after * 2 < before,
            "expected most errors repaired: {after} of {before} remain"
        );
    }

    #[test]
    fn dbpedia_recall_is_lower() {
        let w = UisWorld::generate(400, 99);
        let clean = w.clean_relation();
        let gt = GroundTruth::new(clean.clone());
        let name_attr = clean.schema().attr_expect("Name");
        let spec = NoiseSpec::new(0.10, 31).with_excluded(vec![name_attr]);

        let mut remaining = Vec::new();
        for profile in [KbProfile::yago(), KbProfile::dbpedia()] {
            let kb = w.kb(&profile);
            let rules = UisWorld::rules(&kb);
            let ctx = MatchContext::new(&kb);
            let (mut dirty, _) = inject(&clean, &spec, &w.semantic_source());
            fast_repair(&ctx, &rules, &mut dirty, &ApplyOptions::default());
            remaining.push(gt.error_count(&dirty));
        }
        assert!(
            remaining[0] < remaining[1],
            "Yago coverage should repair more: {remaining:?}"
        );
    }
}
