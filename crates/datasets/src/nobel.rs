//! The Nobel dataset (§V-A): laureate tuples over the Table-I schema
//! `Nobel(Name, DOB, Country, Prize, Institution, City)`.
//!
//! The paper joins two Wikipedia lists into 1069 tuples; we generate a
//! synthetic laureate world of the same shape (see DESIGN.md §2) with the
//! semantic structure all five detective rules need:
//!
//! * work city vs **birth city** (the City confusion);
//! * citizenship country vs **birth country** (the Country confusion);
//! * employer vs **alma mater** (the Institution confusion);
//! * chemistry award vs **another won award** (the Prize confusion);
//! * birth date vs **death date** (the DOB confusion).

use crate::names;
use crate::profile::{KbFlavor, KbProfile};
use dr_core::graph::schema::NodeType;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::fixtures::names as rel_names;
use dr_kb::{KbBuilder, KnowledgeBase};
use dr_relation::noise::SemanticSource;
use dr_relation::{CellRef, Relation, Schema};
use dr_simmatch::SimFn;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// The property holding a person's death date (negative semantics of DOB).
pub const DIED_ON_DATE: &str = "diedOnDate";

/// The number of tuples the paper's Nobel dataset has.
pub const PAPER_SIZE: usize = 1069;

/// One laureate in the synthetic world. All indexes refer to the pools in
/// [`NobelWorld`].
#[derive(Debug, Clone)]
pub struct NobelPerson {
    /// Full name (unique).
    pub name: String,
    /// Birth date (`YYYY-MM-DD`).
    pub dob: String,
    /// Death date (distinct from `dob`).
    pub died: String,
    /// Country of citizenship (= country of the work city; index).
    pub citizenship: usize,
    /// Birth city (index); its country is the birth country.
    pub birth_city: usize,
    /// Primary employer (index).
    pub institution: usize,
    /// Optional second employer — the source of multi-version repairs.
    pub second_institution: Option<usize>,
    /// Alma mater (index, different from the employers).
    pub grad_institution: usize,
    /// The chemistry prize won (index into `prizes`).
    pub prize: usize,
    /// Optional second, non-chemistry prize.
    pub other_prize: Option<usize>,
}

/// The synthetic laureate universe shared by the dataset and its KBs.
#[derive(Debug, Clone)]
pub struct NobelWorld {
    /// Laureates; tuple `i` of the relation describes `persons[i]`.
    pub persons: Vec<NobelPerson>,
    /// `(name, city index)` employers.
    pub institutions: Vec<(String, usize)>,
    /// `(name, country index)` cities.
    pub cities: Vec<(String, usize)>,
    /// Country names.
    pub countries: Vec<String>,
    /// `(name, is_chemistry)` awards.
    pub prizes: Vec<(String, bool)>,
}

impl NobelWorld {
    /// Generates a world with `n` laureates, deterministically from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_countries = 30.min(4 + n / 20).max(4);
        let n_cities = (n / 2).clamp(8, 400);
        let n_institutions = (n / 3).clamp(6, 250);
        let n_chem_prizes = 8.min(2 + n / 100).max(2);
        let n_other_prizes = 10.min(2 + n / 80).max(2);

        let countries: Vec<String> = (0..n_countries)
            .map(|i| names::place_name(i) + " Republic")
            .collect();
        let cities: Vec<(String, usize)> = (0..n_cities)
            .map(|i| (names::place_name(1000 + i), i % n_countries))
            .collect();
        let institutions: Vec<(String, usize)> = (0..n_institutions)
            .map(|i| {
                let city = i % n_cities;
                let name = if i % 2 == 0 {
                    format!("University of {}", cities[city].0)
                } else {
                    format!("{} Institute of Technology", cities[city].0)
                };
                (name, city)
            })
            .collect();
        let mut prizes: Vec<(String, bool)> = Vec::new();
        prizes.push(("Nobel Prize in Chemistry".to_owned(), true));
        for i in 1..n_chem_prizes {
            prizes.push((
                format!("{} Prize in Chemistry", names::place_name(3000 + i)),
                true,
            ));
        }
        for i in 0..n_other_prizes {
            prizes.push((
                format!("{} Medal of Science", names::place_name(4000 + i)),
                false,
            ));
        }

        let persons: Vec<NobelPerson> = (0..n)
            .map(|i| {
                let institution = rng.gen_range(0..n_institutions);
                let work_city = institutions[institution].1;
                let citizenship = cities[work_city].1;
                // Birth city: usually a different city (possibly different
                // country).
                let birth_city = loop {
                    let c = rng.gen_range(0..n_cities);
                    if c != work_city {
                        break c;
                    }
                };
                let second_institution = if rng.gen_bool(0.06) {
                    // A second employer in the same city keeps the world
                    // consistent with citizenship.
                    let alt = (institution + n_cities) % n_institutions;
                    (alt != institution).then_some(alt)
                } else {
                    None
                };
                let grad_institution = loop {
                    let g = rng.gen_range(0..n_institutions);
                    if g != institution && Some(g) != second_institution {
                        break g;
                    }
                };
                let prize = rng.gen_range(0..n_chem_prizes);
                let other_prize = rng
                    .gen_bool(0.5)
                    .then(|| n_chem_prizes + rng.gen_range(0..n_other_prizes));
                let dob = names::date(i);
                let died = names::date(i + 40_507); // offset ⇒ ≠ dob
                NobelPerson {
                    name: names::person_name(i),
                    dob,
                    died,
                    citizenship,
                    birth_city,
                    institution,
                    second_institution,
                    grad_institution,
                    prize,
                    other_prize,
                }
            })
            .collect();

        Self {
            persons,
            institutions,
            cities,
            countries,
            prizes,
        }
    }

    /// The relation schema (identical to the paper's Table I).
    pub fn schema() -> Arc<Schema> {
        dr_core::fixtures::nobel_schema()
    }

    /// The clean relation: one tuple per laureate.
    pub fn clean_relation(&self) -> Relation {
        let mut relation = Relation::new(Self::schema());
        for p in &self.persons {
            let work_city = self.institutions[p.institution].1;
            relation.push_strs(&[
                &p.name,
                &p.dob,
                &self.countries[p.citizenship],
                &self.prizes[p.prize].0,
                &self.institutions[p.institution].0,
                &self.cities[work_city].0,
            ]);
        }
        relation
    }

    /// Builds the KB for `profile`. Covered laureates get their full
    /// neighbourhood; uncovered ones appear with type and name only (the KB
    /// "knows of" them but holds no usable evidence).
    pub fn kb(&self, profile: &KbProfile) -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let mut rng = StdRng::seed_from_u64(profile.seed);

        // Classes. The Yago flavor nests the laureate class in a deep
        // taxonomy; the DBpedia flavor is flat.
        let laureate = b.class(rel_names::LAUREATE);
        let organization = b.class(rel_names::ORGANIZATION);
        let chem_awards = b.class(rel_names::CHEM_AWARDS);
        let other_awards = b.class(rel_names::US_AWARDS);
        let country = b.class(rel_names::COUNTRY);
        let city = b.class(rel_names::CITY);
        if profile.flavor == KbFlavor::YagoLike {
            let person = b.class("person");
            let scientist = b.class("scientist");
            let chemist = b.class("chemist");
            b.subclass(scientist, person);
            b.subclass(chemist, scientist);
            b.subclass(laureate, chemist);
            let location = b.class("location");
            b.subclass(city, location);
            b.subclass(country, location);
            let award = b.class("award");
            b.subclass(chem_awards, award);
            b.subclass(other_awards, award);
            let org_root = b.class("legal entity");
            b.subclass(organization, org_root);
        }

        // Predicates.
        let works_at = b.pred(rel_names::WORKS_AT);
        let located_in = b.pred(rel_names::LOCATED_IN);
        let citizen_of = b.pred(rel_names::CITIZEN_OF);
        let born_in = b.pred(rel_names::BORN_IN);
        let born_at = b.pred(rel_names::BORN_AT);
        let won_prize = b.pred(rel_names::WON_PRIZE);
        let graduated = b.pred(rel_names::GRADUATED_FROM);
        let born_on = b.pred(rel_names::BORN_ON_DATE);
        let died_on = b.pred(DIED_ON_DATE);

        // Geography and organizations (always fully covered: the paper's
        // KBs know the world's places).
        let country_ids: Vec<_> = self
            .countries
            .iter()
            .map(|name| {
                let i = b.instance(name);
                b.set_type(i, country);
                i
            })
            .collect();
        let city_ids: Vec<_> = self
            .cities
            .iter()
            .map(|(name, c)| {
                let i = b.instance(name);
                b.set_type(i, city);
                b.edge(i, located_in, country_ids[*c]);
                i
            })
            .collect();
        let institution_ids: Vec<_> = self
            .institutions
            .iter()
            .map(|(name, c)| {
                let i = b.instance(name);
                b.set_type(i, organization);
                b.edge(i, located_in, city_ids[*c]);
                i
            })
            .collect();
        let prize_ids: Vec<_> = self
            .prizes
            .iter()
            .map(|(name, chem)| {
                let i = b.instance(name);
                b.set_type(i, if *chem { chem_awards } else { other_awards });
                i
            })
            .collect();

        // Laureates, with coverage sampling.
        for p in &self.persons {
            let covered = rng.gen_bool(profile.entity_coverage);
            let inst = b.instance(&p.name);
            b.set_type(inst, laureate);
            if !covered {
                continue;
            }
            let keep = |rng: &mut StdRng| !rng.gen_bool(profile.edge_dropout);
            if keep(&mut rng) {
                b.edge(inst, works_at, institution_ids[p.institution]);
            }
            if let Some(second) = p.second_institution {
                if keep(&mut rng) {
                    b.edge(inst, works_at, institution_ids[second]);
                }
            }
            if keep(&mut rng) {
                b.edge(inst, graduated, institution_ids[p.grad_institution]);
            }
            if keep(&mut rng) {
                b.edge(inst, citizen_of, country_ids[p.citizenship]);
            }
            if keep(&mut rng) {
                b.edge(inst, born_in, city_ids[p.birth_city]);
            }
            if keep(&mut rng) {
                let birth_country = self.cities[p.birth_city].1;
                b.edge(inst, born_at, country_ids[birth_country]);
            }
            if keep(&mut rng) {
                b.edge(inst, won_prize, prize_ids[p.prize]);
            }
            if let Some(other) = p.other_prize {
                if keep(&mut rng) {
                    b.edge(inst, won_prize, prize_ids[other]);
                }
            }
            if keep(&mut rng) {
                let dob = b.literal(&p.dob);
                b.edge(inst, born_on, dob);
            }
            if keep(&mut rng) {
                let died = b.literal(&p.died);
                b.edge(inst, died_on, died);
            }
        }

        b.finalize().expect("nobel taxonomy is acyclic")
    }

    /// The five Nobel detective rules against `kb`: the Figure-4 shapes plus
    /// the DOB rule (bornOnDate vs diedOnDate).
    ///
    /// Unlike the illustrative Figure-4 fixtures, the experiment rules use
    /// `ED,2` on the non-key value columns — the tolerant matching the
    /// paper's experiments rely on to repair typos "to the most similar
    /// candidate" (Fig. 7 discussion). Joint-assignment edge constraints
    /// keep the tolerant matches unambiguous.
    pub fn rules<'a>(kb: impl Into<dr_kb::KbRef<'a>>) -> Vec<DetectiveRule> {
        let kb = kb.into();
        let schema = Self::schema();
        let class = |n: &str| NodeType::Class(kb.class_named(n).expect("nobel class"));
        let pred = |n: &str| kb.pred_named(n).expect("nobel pred");
        let col = |n: &str| schema.attr_expect(n);

        let name_node = node(col("Name"), class(rel_names::LAUREATE), SimFn::Equal);
        // Positive and evidence nodes tolerate typos (`ED,2`); negative
        // nodes match exactly — semantic errors are verbatim copies of
        // related values, and a tolerant negative node could confuse a typo
        // of the correct value with a near-twin wrong value.
        let inst_node = node(
            col("Institution"),
            class(rel_names::ORGANIZATION),
            SimFn::EditDistance(2),
        );
        let inst_neg = node(
            col("Institution"),
            class(rel_names::ORGANIZATION),
            SimFn::Equal,
        );
        let city_node = node(col("City"), class(rel_names::CITY), SimFn::EditDistance(2));
        let city_neg = node(col("City"), class(rel_names::CITY), SimFn::Equal);
        let country_node = node(
            col("Country"),
            class(rel_names::COUNTRY),
            SimFn::EditDistance(2),
        );
        let country_neg = node(col("Country"), class(rel_names::COUNTRY), SimFn::Equal);
        let dob_node = node(col("DOB"), NodeType::Literal, SimFn::EditDistance(2));
        let dob_neg = node(col("DOB"), NodeType::Literal, SimFn::Equal);

        use RuleNodeRef::{Evidence, Negative, Positive};
        let edge = |from, rel, to| RuleEdge { from, to, rel };

        let phi1 = DetectiveRule::new(
            "phi1-institution",
            vec![name_node],
            inst_node,
            inst_neg,
            vec![
                edge(Evidence(0), pred(rel_names::WORKS_AT), Positive),
                edge(Evidence(0), pred(rel_names::GRADUATED_FROM), Negative),
            ],
        )
        .expect("phi1 valid");

        let phi2 = DetectiveRule::new(
            "phi2-city",
            vec![name_node, inst_node],
            city_node,
            city_neg,
            vec![
                edge(Evidence(0), pred(rel_names::WORKS_AT), Evidence(1)),
                edge(Evidence(1), pred(rel_names::LOCATED_IN), Positive),
                edge(Evidence(0), pred(rel_names::BORN_IN), Negative),
            ],
        )
        .expect("phi2 valid");

        let phi3 = DetectiveRule::new(
            "phi3-country",
            vec![name_node, inst_node, city_node],
            country_node,
            country_neg,
            vec![
                edge(Evidence(0), pred(rel_names::WORKS_AT), Evidence(1)),
                edge(Evidence(1), pred(rel_names::LOCATED_IN), Evidence(2)),
                edge(Evidence(0), pred(rel_names::CITIZEN_OF), Positive),
                edge(Evidence(2), pred(rel_names::LOCATED_IN), Positive),
                edge(Evidence(0), pred(rel_names::BORN_AT), Negative),
            ],
        )
        .expect("phi3 valid");

        let phi4 = DetectiveRule::new(
            "phi4-prize",
            vec![name_node],
            node(
                col("Prize"),
                class(rel_names::CHEM_AWARDS),
                SimFn::EditDistance(2),
            ),
            node(col("Prize"), class(rel_names::US_AWARDS), SimFn::Equal),
            vec![
                edge(Evidence(0), pred(rel_names::WON_PRIZE), Positive),
                edge(Evidence(0), pred(rel_names::WON_PRIZE), Negative),
            ],
        )
        .expect("phi4 valid");

        let phi5 = DetectiveRule::new(
            "phi5-dob",
            vec![name_node],
            dob_node,
            dob_neg,
            vec![
                edge(Evidence(0), pred(rel_names::BORN_ON_DATE), Positive),
                edge(Evidence(0), pred(DIED_ON_DATE), Negative),
            ],
        )
        .expect("phi5 valid");

        vec![phi1, phi2, phi3, phi4, phi5]
    }

    /// The dataset-aware semantic-error source (the paper's "value replaced
    /// with a different one from a semantically related attribute").
    pub fn semantic_source(&self) -> NobelSemanticSource<'_> {
        NobelSemanticSource { world: self }
    }
}

/// Semantic errors for the Nobel schema: each column is replaced by the
/// value of the related-but-wrong concept of the *same* person.
pub struct NobelSemanticSource<'w> {
    world: &'w NobelWorld,
}

impl SemanticSource for NobelSemanticSource<'_> {
    fn related_value(
        &self,
        relation: &Relation,
        cell: CellRef,
        rng: &mut StdRng,
    ) -> Option<String> {
        let w = self.world;
        let p = w.persons.get(cell.row)?;
        let schema = relation.schema();
        let value = match schema.attr_name(cell.attr) {
            "DOB" => p.died.clone(),
            "Country" => {
                let birth_country = w.cities[p.birth_city].1;
                w.countries[birth_country].clone()
            }
            "Prize" => match p.other_prize {
                Some(other) => w.prizes[other].0.clone(),
                None => {
                    // No second prize: use another laureate's chemistry prize
                    // (a same-domain wrong value).
                    let alt = (p.prize + 1) % w.prizes.iter().filter(|(_, c)| *c).count();
                    w.prizes[alt].0.clone()
                }
            },
            "Institution" => w.institutions[p.grad_institution].0.clone(),
            "City" => w.cities[p.birth_city].0.clone(),
            "Name" => {
                // Another person's name.
                let other = rng.gen_range(0..w.persons.len());
                w.persons[other].name.clone()
            }
            _ => return None,
        };
        (value != relation.value(cell)).then_some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
    use dr_core::{fast_repair, ApplyOptions, MatchContext};
    use dr_relation::noise::{inject, NoiseSpec};
    use dr_relation::GroundTruth;

    fn small_world() -> NobelWorld {
        NobelWorld::generate(120, 7)
    }

    #[test]
    fn world_is_deterministic() {
        let a = NobelWorld::generate(50, 3);
        let b = NobelWorld::generate(50, 3);
        assert_eq!(a.persons.len(), b.persons.len());
        for (x, y) in a.persons.iter().zip(&b.persons) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.institution, y.institution);
        }
    }

    #[test]
    fn clean_relation_shape() {
        let w = small_world();
        let r = w.clean_relation();
        assert_eq!(r.len(), 120);
        assert_eq!(r.schema().arity(), 6);
        // Names are unique (the key attribute).
        let names: dr_kb::FxHashSet<&str> = r
            .tuples()
            .iter()
            .map(|t| t.get(r.schema().attr_expect("Name")))
            .collect();
        assert_eq!(names.len(), 120);
    }

    #[test]
    fn world_is_internally_consistent() {
        let w = small_world();
        for p in &w.persons {
            // Citizenship = country of the work city (ϕ3's positive shape).
            let work_city = w.institutions[p.institution].1;
            assert_eq!(p.citizenship, w.cities[work_city].1);
            assert_ne!(p.birth_city, work_city);
            assert_ne!(p.grad_institution, p.institution);
            assert_ne!(p.dob, p.died);
            assert!(w.prizes[p.prize].1, "main prize is a chemistry prize");
            if let Some(o) = p.other_prize {
                assert!(!w.prizes[o].1, "second prize is non-chemistry");
            }
        }
    }

    #[test]
    fn yago_kb_has_taxonomy_dbpedia_is_flat() {
        let w = small_world();
        let yago = w.kb(&KbProfile::yago());
        let dbpedia = w.kb(&KbProfile::dbpedia());
        assert!(yago.taxonomy().depth() >= 4);
        assert_eq!(dbpedia.taxonomy().depth(), 1);
        // Coverage: Yago has strictly more edges.
        assert!(yago.num_edges() > dbpedia.num_edges());
        // Taxonomy closure works: laureates are persons in Yago.
        let person = yago.class_named("person").unwrap();
        assert!(!yago.instances_of(person).is_empty());
    }

    #[test]
    fn rules_resolve_on_both_kbs() {
        let w = small_world();
        for profile in [KbProfile::yago(), KbProfile::dbpedia()] {
            let kb = w.kb(&profile);
            let rules = NobelWorld::rules(&kb);
            assert_eq!(rules.len(), 5);
        }
    }

    #[test]
    fn rules_are_consistent_on_sample() {
        let w = small_world();
        let kb = w.kb(&KbProfile::yago());
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let (dirty, _) = inject(&clean, &NoiseSpec::new(0.1, 5), &w.semantic_source());
        let verdict = check_consistency(&ctx, &rules, &dirty, &ConsistencyOptions::default());
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    /// End-to-end: inject noise, repair with DRs, verify precision 1.0 and
    /// substantial recall (the Table III shape).
    #[test]
    fn repair_has_perfect_precision_and_good_recall() {
        let w = small_world();
        let kb = w.kb(&KbProfile::yago());
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let clean = w.clean_relation();
        let gt = GroundTruth::new(clean.clone());

        let name_attr = clean.schema().attr_expect("Name");
        let spec = NoiseSpec::new(0.10, 11).with_excluded(vec![name_attr]);
        let (mut dirty, log) = inject(&clean, &spec, &w.semantic_source());
        assert!(!log.is_empty());
        let before = gt.error_count(&dirty);

        let report = fast_repair(&ctx, &rules, &mut dirty, &ApplyOptions::default());
        let after = gt.error_count(&dirty);
        assert!(
            after < before / 2,
            "expected most errors repaired: {after} of {before} remain"
        );

        // Precision: every rewritten cell now matches the ground truth or
        // was already wrong before — except inside tuples where a
        // multi-version repair (several valid KB answers) sent the chase
        // down a non-ground-truth but KB-consistent branch. The paper
        // counts those correct when any candidate matches the truth.
        for (row, tuple_report) in report.tuples.iter().enumerate() {
            let multi_version = tuple_report.steps.iter().any(|s| {
                matches!(
                    &s.application,
                    dr_core::RuleApplication::Repaired { candidates, .. }
                        if candidates.len() > 1
                )
            });
            if multi_version {
                // Verify the paper's criterion instead: the ground truth is
                // among the candidates of each multi-version repair.
                for step in &tuple_report.steps {
                    if let dr_core::RuleApplication::Repaired {
                        col, candidates, ..
                    } = &step.application
                    {
                        if candidates.len() > 1 {
                            assert!(
                                candidates.contains(&clean.tuple(row).get(*col).to_owned()),
                                "truth not among candidates at row {row}"
                            );
                        }
                    }
                }
                continue;
            }
            for a in 0..clean.schema().arity() {
                let cell = CellRef {
                    row,
                    attr: dr_relation::AttrId::from_index(a),
                };
                let was_injected = log.iter().any(|e| e.cell == cell);
                if !was_injected {
                    assert_eq!(
                        dirty.value(cell),
                        clean.value(cell),
                        "correct cell {cell:?} must not change"
                    );
                }
            }
        }
    }

    #[test]
    fn semantic_source_respects_columns() {
        let w = small_world();
        let clean = w.clean_relation();
        let source = w.semantic_source();
        let mut rng = StdRng::seed_from_u64(1);
        let schema = clean.schema().clone();
        for (col, expect_differs) in [("City", true), ("Country", true), ("DOB", true)] {
            let cell = CellRef {
                row: 0,
                attr: schema.attr_expect(col),
            };
            let related = source.related_value(&clean, cell, &mut rng);
            if expect_differs {
                let v = related.expect("related value exists");
                assert_ne!(v, clean.value(cell), "column {col}");
            }
        }
    }
}
