//! Knowledge-base flavors.
//!
//! The paper evaluates every dataset against both **Yago** and **DBpedia**
//! and attributes their quality gap to two axes: Yago's richer taxonomic
//! structure and its higher coverage of the datasets' entities. The
//! [`KbProfile`] captures exactly those two axes for the synthetic KB
//! generators (see DESIGN.md §2 for the substitution rationale).

/// Which real-world KB a generated KB imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KbFlavor {
    /// Deep class taxonomy, high entity and relationship coverage.
    YagoLike,
    /// Flat class structure, lower coverage.
    DbpediaLike,
}

impl KbFlavor {
    /// Display name used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            KbFlavor::YagoLike => "Yago",
            KbFlavor::DbpediaLike => "DBpedia",
        }
    }
}

/// Generation knobs for a synthetic KB.
#[derive(Debug, Clone)]
pub struct KbProfile {
    /// The imitated flavor (taxonomy shape).
    pub flavor: KbFlavor,
    /// Fraction of the universe's key entities whose full neighbourhood is
    /// in the KB.
    pub entity_coverage: f64,
    /// Among covered entities, probability that any single non-essential
    /// edge is dropped.
    pub edge_dropout: f64,
    /// Seed for the coverage sampling.
    pub seed: u64,
}

impl KbProfile {
    /// The default Yago-like profile: 95% coverage, 2% edge dropout.
    pub fn yago() -> Self {
        Self {
            flavor: KbFlavor::YagoLike,
            entity_coverage: 0.95,
            edge_dropout: 0.02,
            seed: 0xfa90,
        }
    }

    /// The default DBpedia-like profile: 75% coverage, 10% edge dropout.
    pub fn dbpedia() -> Self {
        Self {
            flavor: KbFlavor::DbpediaLike,
            entity_coverage: 0.75,
            edge_dropout: 0.10,
            seed: 0xdb9e,
        }
    }

    /// Profile for a flavor with its default knobs.
    pub fn of(flavor: KbFlavor) -> Self {
        match flavor {
            KbFlavor::YagoLike => Self::yago(),
            KbFlavor::DbpediaLike => Self::dbpedia(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_differ_on_both_axes() {
        let y = KbProfile::yago();
        let d = KbProfile::dbpedia();
        assert!(y.entity_coverage > d.entity_coverage);
        assert!(y.edge_dropout < d.edge_dropout);
        assert_eq!(y.flavor.label(), "Yago");
        assert_eq!(d.flavor.label(), "DBpedia");
    }
}
