//! # dr-datasets — synthetic evaluation workloads
//!
//! Generators for the paper's three datasets and the two KB flavors they
//! are cleaned against (§V-A):
//!
//! * [`nobel`] — 1069-tuple laureate relation (Table I schema) + 5 DRs;
//! * [`uis`] — UIS-style person/address records, scalable to 100K tuples,
//!   + 5 DRs;
//! * [`webtables`] — 37 small, heterogeneous, originally-dirty Web tables
//!   + ~50 DRs;
//! * [`profile`] — Yago-like (deep taxonomy, high coverage) vs DBpedia-like
//!   (flat, lower coverage) KB generation knobs.
//!
//! Every generator is a pure function of its seed.

#![warn(missing_docs)]

pub mod alignment;
pub mod names;
pub mod nobel;
pub mod profile;
pub mod uis;
pub mod webtables;

pub use alignment::{alignment, AlignmentStats};
pub use nobel::NobelWorld;
pub use profile::{KbFlavor, KbProfile};
pub use uis::UisWorld;
pub use webtables::WebTablesWorld;
