//! Sampled JSONL repair tracing.
//!
//! A [`Tracer`] owns a line-oriented sink and a deterministic, seed-driven
//! row sampler. Per-tuple events are buffered into a [`SpanBuf`] and
//! flushed as one contiguous block, so concurrent workers never interleave
//! lines *within* a tuple's span. Events carry no wall-clock fields: the
//! same seed, rate, and input produce the same line set, which is what the
//! golden-file and subset tests rely on.

use parking_lot::Mutex;
use std::io::Write;

/// splitmix64 finalizer — a cheap, high-quality 64-bit mixer. Shared with
/// the live-span surface for id generation.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Decides which rows get traced. Pure function of `(seed, row)`: a row's
/// hash is compared against a rate-derived threshold, so the sampled set
/// at rate `r1` is a subset of the set at any `r2 >= r1` under the same
/// seed (monotone threshold over a fixed hash).
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    seed: u64,
    threshold: u64,
    all: bool,
    none: bool,
}

impl Sampler {
    /// A sampler keeping roughly `rate` (clamped to `[0, 1]`) of rows.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        Sampler {
            seed,
            threshold: (rate * u64::MAX as f64) as u64,
            all: rate >= 1.0,
            none: rate <= 0.0,
        }
    }

    /// Whether `row` is in the sample.
    #[inline]
    pub fn sampled(&self, row: u64) -> bool {
        if self.all {
            return true;
        }
        if self.none {
            return false;
        }
        splitmix64(self.seed ^ row.wrapping_mul(0x9e3779b97f4a7c15)) <= self.threshold
    }
}

/// Default per-tuple buffer cap: a pathological tuple (thousands of rule
/// events) cannot balloon memory past this many bytes of buffered lines.
pub const SPAN_BUF_MAX_BYTES: usize = 64 * 1024;

/// Buffered lines for one tuple's span, bounded by a byte budget. Build
/// events with [`crate::json::JsonObj`], push them here, then hand the
/// buffer to [`Tracer::flush_span`] to write all lines atomically. Lines
/// past the budget are dropped and counted ([`SpanBuf::dropped`]) so the
/// caller can feed `trace_dropped_spans_total`.
#[derive(Debug)]
pub struct SpanBuf {
    lines: Vec<String>,
    bytes: usize,
    max_bytes: usize,
    dropped: usize,
}

impl Default for SpanBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanBuf {
    /// An empty span buffer with the default byte budget.
    pub fn new() -> Self {
        Self::with_max_bytes(SPAN_BUF_MAX_BYTES)
    }

    /// An empty span buffer holding at most `max_bytes` of line data.
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        SpanBuf {
            lines: Vec::new(),
            bytes: 0,
            max_bytes: max_bytes.max(1),
            dropped: 0,
        }
    }

    /// Append one rendered JSON line (no trailing newline). Dropped and
    /// counted instead if it would push the buffer past its byte budget.
    pub fn push(&mut self, line: String) {
        if self.bytes + line.len() > self.max_bytes {
            self.dropped += 1;
            return;
        }
        self.bytes += line.len();
        self.lines.push(line);
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the span holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Lines dropped by the byte budget.
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

/// A JSONL trace sink plus its sampler. Writes go through one mutex; the
/// sampler check happens outside it, so unsampled rows cost one hash.
pub struct Tracer {
    sink: Mutex<Box<dyn Write + Send>>,
    sampler: Sampler,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sampler", &self.sampler)
            .finish()
    }
}

impl Tracer {
    /// A tracer writing JSON lines to `sink`, keeping rows per `sampler`.
    pub fn new(sink: Box<dyn Write + Send>, sampler: Sampler) -> Self {
        Tracer {
            sink: Mutex::new(sink),
            sampler,
        }
    }

    /// Whether `row`'s span should be recorded.
    #[inline]
    pub fn sampled(&self, row: u64) -> bool {
        self.sampler.sampled(row)
    }

    /// Write one relation-level event line immediately.
    pub fn emit(&self, line: String) {
        let mut sink = self.sink.lock();
        let _ = writeln!(sink, "{line}");
    }

    /// Write a span's lines as one contiguous block and flush the sink.
    pub fn flush_span(&self, span: SpanBuf) {
        if span.lines.is_empty() {
            return;
        }
        let mut sink = self.sink.lock();
        for line in &span.lines {
            let _ = writeln!(sink, "{line}");
        }
        let _ = sink.flush();
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        let _ = self.sink.lock().flush();
    }
}

/// A tracer that appends lines to a shared in-memory buffer — the test
/// harness's sink of choice.
pub fn memory_tracer(sampler: Sampler) -> (Tracer, std::sync::Arc<Mutex<Vec<u8>>>) {
    #[derive(Clone)]
    struct Buf(std::sync::Arc<Mutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let shared = std::sync::Arc::new(Mutex::new(Vec::new()));
    (Tracer::new(Box::new(Buf(shared.clone())), sampler), shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_bounds_are_exact() {
        let all = Sampler::new(7, 1.0);
        let none = Sampler::new(7, 0.0);
        for row in 0..1000 {
            assert!(all.sampled(row));
            assert!(!none.sampled(row));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_monotone_in_rate() {
        let lo = Sampler::new(42, 0.2);
        let hi = Sampler::new(42, 0.7);
        let lo2 = Sampler::new(42, 0.2);
        let mut kept = 0usize;
        for row in 0..10_000 {
            assert_eq!(lo.sampled(row), lo2.sampled(row));
            if lo.sampled(row) {
                kept += 1;
                assert!(hi.sampled(row), "rate-0.2 sample must be in rate-0.7 set");
            }
        }
        // ~20% within generous slack.
        assert!((1000..3000).contains(&kept), "kept {kept} of 10000");
    }

    #[test]
    fn different_seeds_sample_different_rows() {
        let a = Sampler::new(1, 0.5);
        let b = Sampler::new(2, 0.5);
        let differs = (0..1000).any(|row| a.sampled(row) != b.sampled(row));
        assert!(differs);
    }

    #[test]
    fn span_buf_drops_past_byte_budget() {
        let mut span = SpanBuf::with_max_bytes(24);
        span.push("x".repeat(10)); // kept, 10 bytes
        span.push("y".repeat(10)); // kept, 20 bytes
        span.push("z".repeat(10)); // would be 30 > 24: dropped
        span.push("w".repeat(4)); // still fits: kept
        assert_eq!(span.len(), 3);
        assert_eq!(span.dropped(), 1);
    }

    #[test]
    fn spans_flush_contiguously() {
        let (tracer, buf) = memory_tracer(Sampler::new(0, 1.0));
        let mut span = SpanBuf::new();
        span.push("{\"ev\":\"a\"}".to_string());
        span.push("{\"ev\":\"b\"}".to_string());
        assert_eq!(span.len(), 2);
        tracer.flush_span(span);
        tracer.emit("{\"ev\":\"c\"}".to_string());
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text, "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n{\"ev\":\"c\"}\n");
    }
}
