//! Request-scoped live span trees (DESIGN.md §11).
//!
//! A second tracing surface, deliberately separate from the deterministic
//! JSONL [`Tracer`](crate::Tracer): where the JSONL tracer forbids
//! wall-clock fields so golden files stay byte-stable, a live trace exists
//! *because* of the clock — it answers "where did this request's time go"
//! with monotonic-clock span durations.
//!
//! One [`ActiveTrace`] is created per captured request. Code that wants a
//! span holds a [`SpanCtx`] (a cheap, cloneable handle naming the current
//! parent) and calls [`SpanCtx::child`]; the returned [`Span`] guard
//! records its duration when finished or dropped. Span storage is bounded:
//! past `max_spans` allocations the trace stops recording (children of a
//! dropped span re-parent to the nearest recorded ancestor, so the stored
//! tree never contains a dangling parent id) and counts the drops.
//!
//! Whether the finished trace is *kept* is tail sampling's decision — see
//! [`TraceStore`](crate::TraceStore) — so the capture path must stay cheap
//! even when every request is armed: starting and finishing a span is two
//! `Instant::now` calls and one short lock push.

use parking_lot::Mutex;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::trace::splitmix64;

/// Default cap on recorded spans per trace (satellite of DESIGN.md §11:
/// a pathological relation must not balloon trace memory).
pub const DEFAULT_MAX_SPANS: usize = 512;

/// A 128-bit trace identifier, W3C `traceparent`-compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// A fresh, practically unique id: wall-clock nanos mixed with a
    /// process-global counter through splitmix64 (no RNG dependency).
    pub fn generate() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ splitmix64(count));
        let lo = splitmix64(hi ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // An all-zero trace id is invalid per the W3C spec; nudge it.
        let id = ((hi as u128) << 64) | lo as u128;
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Lowercase 32-hex-digit rendering.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a 32-hex-digit id; rejects the all-zero id.
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }
}

/// A 64-bit span identifier, unique within its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Lowercase 16-hex-digit rendering.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses a 16-hex-digit id; rejects the all-zero id.
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        if v == 0 {
            None
        } else {
            Some(SpanId(v))
        }
    }
}

/// Parses a W3C `traceparent` header value
/// (`00-<trace-id>-<parent-id>-<flags>`), returning the trace id, the
/// caller's span id, and the flags byte. Only version `00` is accepted.
pub fn parse_traceparent(value: &str) -> Option<(TraceId, SpanId, u8)> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    if version != "00" {
        return None;
    }
    let trace = TraceId::parse_hex(parts.next()?)?;
    let parent = SpanId::parse_hex(parts.next()?)?;
    let flags = parts.next()?;
    if flags.len() != 2 || parts.next().is_some() {
        return None;
    }
    let flags = u8::from_str_radix(flags, 16).ok()?;
    Some((trace, parent, flags))
}

/// A span attribute value. Numbers stay numbers — the capture hot path
/// must not format integers into strings — and string labels borrow
/// `'static` data wherever the call site has it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    Num(u64),
    /// String attribute.
    Str(Cow<'static, str>),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Num(n) => write!(f, "{n}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One finished span: where it sits in the tree and when it ran, as
/// offsets from the trace start (monotonic clock, so offsets are
/// comparable across threads within one trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the trace.
    pub id: SpanId,
    /// Parent span id; `None` for the root.
    pub parent: Option<SpanId>,
    /// Span name (e.g. `request`, `prewarm`, `row`, `rule`).
    pub name: Cow<'static, str>,
    /// Start offset from the trace's start, nanoseconds.
    pub start_nanos: u64,
    /// Span duration, nanoseconds.
    pub duration_nanos: u64,
    /// Attribute pairs, insertion-ordered.
    pub attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

/// One in-flight trace: a bounded collector of [`SpanRecord`]s sharing a
/// single monotonic origin. Cheap to share (`Arc`) across the request's
/// worker threads.
///
/// Captures come in two detail tiers. A *speculative* capture — armed on
/// every request so tail sampling has something to keep — records phase
/// spans plus row spans for noteworthy (slow) rows, recorded
/// retroactively via [`SpanCtx::record_completed`]. A *forced* capture
/// (`?trace=1`) is [`detailed`](Self::detailed): every row gets a guard
/// with attributes, and per-rule spans are opened beneath. Rule checks
/// are the innermost loop, and recording them on the speculative path is
/// what would blow the `exp_trace_overhead` budget.
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    started: Instant,
    forced: bool,
    max_spans: usize,
    /// Next span id; ids `1..=max_spans` are recorded, later allocations
    /// are dropped (counted), so `spans` stays bounded.
    next_span: AtomicU64,
    dropped: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl ActiveTrace {
    /// A fresh trace. `forced` marks it for unconditional retention at
    /// tail-sampling time (the `?trace=1` escape hatch).
    pub fn new(id: TraceId, max_spans: usize, forced: bool) -> Self {
        ActiveTrace {
            id,
            started: Instant::now(),
            forced,
            max_spans: max_spans.max(1),
            next_span: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether retention was explicitly forced.
    pub fn forced(&self) -> bool {
        self.forced
    }

    /// Whether fine-grained spans (every row, rule children, row
    /// attributes) should be recorded. Forced captures are detailed;
    /// speculative ones record phases plus slow rows only.
    pub fn detailed(&self) -> bool {
        self.forced
    }

    /// Time since the trace began.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Spans dropped because the per-trace cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans recorded so far (finished spans only).
    pub fn span_count(&self) -> usize {
        self.spans.lock().len()
    }

    /// Drains the recorded spans (newest-finished last). Call once, after
    /// every guard is finished.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock())
    }

    /// Allocates a span id, or `None` once the cap is reached. Allocation
    /// is decided up front (not at finish) so an allocated parent is
    /// always recorded — the stored tree never references a dropped span.
    /// One atomic covers both the id sequence and the cap check, keeping
    /// the hot path to a single contended cache line.
    fn alloc(&self) -> Option<SpanId> {
        let seq = self.next_span.fetch_add(1, Ordering::Relaxed);
        if seq > self.max_spans as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(SpanId(seq))
    }

    fn push(&self, record: SpanRecord) {
        self.spans.lock().push(record);
    }
}

/// A cheap, cloneable handle naming "the current span" — what gets
/// threaded through contexts and schedulers so any layer can open a child
/// without owning its parent's guard.
#[derive(Debug, Clone)]
pub struct SpanCtx {
    trace: Arc<ActiveTrace>,
    /// Parent for children opened through this handle. `None` at the
    /// trace root, or when the span this handle came from was dropped by
    /// the cap (children then attach to the nearest recorded ancestor).
    span: Option<SpanId>,
}

impl SpanCtx {
    /// A root-level handle: children opened here become root spans.
    pub fn root(trace: Arc<ActiveTrace>) -> Self {
        SpanCtx { trace, span: None }
    }

    /// The trace this handle belongs to.
    pub fn trace(&self) -> &Arc<ActiveTrace> {
        &self.trace
    }

    /// Whether the trace wants fine-grained (per-rule) spans — the check
    /// hot loops make before opening one.
    pub fn detailed(&self) -> bool {
        self.trace.detailed()
    }

    /// Records an already-finished span retroactively: the caller timed
    /// the work itself and decided after the fact that it deserves a span.
    /// This is the speculative tier's row path — fast rows cost two clock
    /// reads and a branch, and only noteworthy rows pay for recording.
    pub fn record_completed(&self, name: &'static str, started: Instant, duration: Duration) {
        let Some(id) = self.trace.alloc() else { return };
        self.trace.push(SpanRecord {
            id,
            parent: self.span,
            name: Cow::Borrowed(name),
            start_nanos: duration_nanos(started.duration_since(self.trace.started)),
            duration_nanos: duration_nanos(duration),
            attrs: Vec::new(),
        });
    }

    /// Opens a child span under this handle's span. Names are `'static`
    /// on purpose: the guard allocates nothing, so an armed-but-discarded
    /// capture stays inside the `exp_trace_overhead` budget.
    pub fn child(&self, name: &'static str) -> Span {
        let id = self.trace.alloc();
        let started = match id {
            Some(_) => Instant::now(),
            // A capped span records nothing — skip the clock read and
            // reuse the trace origin as a placeholder.
            None => self.trace.started,
        };
        Span {
            trace: Arc::clone(&self.trace),
            id,
            parent: self.span,
            name,
            started,
            attrs: Vec::new(),
            finished: false,
        }
    }
}

/// A live span guard: records its duration into the trace when
/// [`finish`](Span::finish)ed or dropped. Dropped-by-cap spans (id
/// `None`) skip all recording but still parent their children correctly.
#[derive(Debug)]
pub struct Span {
    trace: Arc<ActiveTrace>,
    id: Option<SpanId>,
    parent: Option<SpanId>,
    name: &'static str,
    started: Instant,
    attrs: Vec<(Cow<'static, str>, AttrValue)>,
    finished: bool,
}

impl Span {
    /// A handle for opening children of this span.
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx {
            trace: Arc::clone(&self.trace),
            // A capped span re-parents its children onto its own parent,
            // keeping the recorded tree free of dangling ids.
            span: self.id.or(self.parent),
        }
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.ctx().child(name)
    }

    /// Whether this span was dropped by the per-trace cap.
    pub fn is_dropped(&self) -> bool {
        self.id.is_none()
    }

    /// Attaches an owned string attribute (no-op on a capped span).
    pub fn attr(&mut self, key: &'static str, value: &str) {
        if self.id.is_some() {
            self.attrs.push((
                Cow::Borrowed(key),
                AttrValue::Str(Cow::Owned(value.to_owned())),
            ));
        }
    }

    /// Attaches a `'static` string attribute without allocating (no-op on
    /// a capped span).
    pub fn attr_static(&mut self, key: &'static str, value: &'static str) {
        if self.id.is_some() {
            self.attrs
                .push((Cow::Borrowed(key), AttrValue::Str(Cow::Borrowed(value))));
        }
    }

    /// Attaches an integer attribute without allocating (no-op on a
    /// capped span).
    pub fn attr_num(&mut self, key: &'static str, value: u64) {
        if self.id.is_some() {
            self.attrs.push((Cow::Borrowed(key), AttrValue::Num(value)));
        }
    }

    /// Ends the span now, recording its duration. Equivalent to dropping
    /// it, but reads better at call sites that time a phase explicitly.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(id) = self.id else { return };
        // One clock read per edge: the start offset is derived from the
        // trace origin here rather than read separately at open time.
        let now = Instant::now();
        self.trace.push(SpanRecord {
            id,
            parent: self.parent,
            name: Cow::Borrowed(self.name),
            start_nanos: duration_nanos(self.started.duration_since(self.trace.started)),
            duration_nanos: duration_nanos(now.duration_since(self.started)),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_and_parse() {
        let t = TraceId(0xabc);
        assert_eq!(t.to_hex(), format!("{:032x}", 0xabc));
        assert_eq!(TraceId::parse_hex(&t.to_hex()), Some(t));
        assert_eq!(TraceId::parse_hex(&"0".repeat(32)), None, "all-zero");
        assert_eq!(TraceId::parse_hex("abc"), None, "short");
        let s = SpanId(7);
        assert_eq!(SpanId::parse_hex(&s.to_hex()), Some(s));
        assert_eq!(SpanId::parse_hex(&"0".repeat(16)), None);
    }

    #[test]
    fn generated_ids_differ() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_eq!(a.to_hex().len(), 32);
    }

    #[test]
    fn traceparent_grammar() {
        let header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
        let (t, p, f) = parse_traceparent(header).expect("valid header");
        assert_eq!(t.to_hex(), "0af7651916cd43dd8448eb211c80319c");
        assert_eq!(p.to_hex(), "b7ad6b7169203331");
        assert_eq!(f, 1);
        assert!(
            parse_traceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01").is_none()
        );
        assert!(parse_traceparent("00-short-b7ad6b7169203331-01").is_none());
        assert!(parse_traceparent(&format!("00-{}-b7ad6b7169203331-01", "0".repeat(32))).is_none());
        assert!(
            parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x")
                .is_none()
        );
    }

    #[test]
    fn spans_nest_and_record_durations() {
        let trace = Arc::new(ActiveTrace::new(TraceId::generate(), 64, false));
        let mut root = SpanCtx::root(Arc::clone(&trace)).child("request");
        root.attr("route", "repair");
        {
            let mut child = root.child("parse");
            child.attr_num("rows", 3);
            child.finish();
        }
        let inner = root.child("repair");
        let leaf = inner.child("row");
        leaf.finish();
        inner.finish();
        root.finish();

        let spans = trace.take_spans();
        assert_eq!(spans.len(), 4);
        // Children finish before parents, so the root is last.
        let root_rec = spans.last().unwrap();
        assert_eq!(root_rec.name, "request");
        assert_eq!(root_rec.parent, None);
        assert_eq!(
            root_rec.attrs,
            vec![(
                Cow::Borrowed("route"),
                AttrValue::Str(Cow::Borrowed("repair"))
            )]
        );
        // Every non-root parent id exists among the recorded spans.
        for s in &spans {
            if let Some(p) = s.parent {
                assert!(spans.iter().any(|o| o.id == p), "dangling parent {p:?}");
            }
            assert!(
                s.start_nanos + s.duration_nanos
                    <= root_rec.start_nanos + root_rec.duration_nanos + root_rec.duration_nanos,
                "span windows stay near the root's"
            );
        }
        // The row span's parent chain reaches the root.
        let row = spans.iter().find(|s| s.name == "row").unwrap();
        let repair = spans.iter().find(|s| s.name == "repair").unwrap();
        assert_eq!(row.parent, Some(repair.id));
        assert_eq!(repair.parent, Some(root_rec.id));
    }

    #[test]
    fn retroactive_spans_land_under_their_parent() {
        let trace = Arc::new(ActiveTrace::new(TraceId::generate(), 64, false));
        let root = SpanCtx::root(Arc::clone(&trace)).child("request");
        let started = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        root.ctx()
            .record_completed("row", started, started.elapsed());
        root.finish();
        let spans = trace.take_spans();
        assert_eq!(spans.len(), 2);
        let row = spans.iter().find(|s| s.name == "row").expect("row span");
        let root_rec = spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(row.parent, Some(root_rec.id));
        assert!(row.duration_nanos >= 1_000_000, "measured duration kept");
        assert!(row.attrs.is_empty());
        // Past the cap, retroactive recording drops like everything else.
        let capped = Arc::new(ActiveTrace::new(TraceId::generate(), 1, false));
        let r = SpanCtx::root(Arc::clone(&capped)).child("request");
        r.ctx()
            .record_completed("row", Instant::now(), Duration::ZERO);
        r.finish();
        assert_eq!(capped.dropped(), 1);
        assert_eq!(capped.take_spans().len(), 1);
    }

    #[test]
    fn cap_drops_spans_but_never_dangles_parents() {
        let trace = Arc::new(ActiveTrace::new(TraceId::generate(), 2, false));
        let root = SpanCtx::root(Arc::clone(&trace)).child("request");
        let kept_child = root.child("kept");
        // Third allocation exceeds max_spans = 2: dropped.
        let dropped = root.child("dropped");
        assert!(dropped.is_dropped());
        // A child of the dropped span re-parents onto the root.
        let grandchild = dropped.child("grandchild");
        assert!(grandchild.is_dropped(), "cap already reached");
        drop(grandchild);
        drop(dropped);
        kept_child.finish();
        root.finish();

        assert_eq!(trace.dropped(), 2);
        let spans = trace.take_spans();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            if let Some(p) = s.parent {
                assert!(spans.iter().any(|o| o.id == p), "dangling parent {p:?}");
            }
        }
    }

    #[test]
    fn reparenting_through_a_dropped_span_targets_recorded_ancestor() {
        let trace = Arc::new(ActiveTrace::new(TraceId::generate(), 2, false));
        let root = SpanCtx::root(Arc::clone(&trace)).child("root");
        let mid = root.child("mid");
        let capped = mid.child("capped"); // allocation 3 of cap 2 → dropped
        assert!(capped.is_dropped());
        // The dropped span's ctx parents onto `mid`.
        let ctx = capped.ctx();
        drop(capped);
        mid.finish();
        root.finish();
        // `mid` is recorded, so the re-parent target exists even though
        // this child itself is past the cap (it records nothing).
        let late = ctx.child("late");
        assert!(late.is_dropped());
        drop(late);
        let spans = trace.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(trace.dropped(), 2);
    }
}
