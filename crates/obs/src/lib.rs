#![warn(missing_docs)]
//! `dr-obs` — the observability layer for the detective-rules pipeline.
//!
//! Two halves, one handle:
//!
//! * **Metrics** ([`MetricRegistry`]): lock-free monotonic [`Counter`]s
//!   (worker-sharded cells), [`Gauge`]s, and log-bucketed latency
//!   [`Histogram`]s with p50/p95/p99 summaries. Existing subsystem
//!   counters (value cache, cache registry, snapshots) register their
//!   *own* cells into the registry, so the Prometheus dump and the report
//!   columns read the same storage — there is no second bookkeeping path
//!   to drift from.
//! * **Tracing** ([`Tracer`]): per-tuple repair spans emitted as JSONL,
//!   gated by a deterministic seed-driven [`Sampler`] so a trace is
//!   reproducible at any sampling rate and rate-`r1` traces are subsets
//!   of rate-`r2` traces for `r1 <= r2`.
//!
//! An [`Obs`] bundles both and is threaded through the pipeline as an
//! `Option<Arc<Obs>>`; when absent, instrumentation compiles down to a
//! branch per relation and per tuple.
//!
//! A third, request-scoped surface sits beside them: live span trees
//! ([`ActiveTrace`]/[`SpanCtx`]) with monotonic-clock durations, retained
//! by tail sampling into a bounded [`TraceStore`] and rendered by
//! [`render_waterfall`]. Where the JSONL tracer is byte-deterministic by
//! construction (no clocks), the live surface exists to answer "where did
//! *this* request's time go" — see DESIGN.md §11. Sliding-window
//! latency ([`WindowHistogram`]) rounds out the live view on `/metrics`.

pub mod json;
pub mod metrics;
pub mod span;
pub mod store;
pub mod trace;

pub use json::{JsonObj, JsonValue};
pub use metrics::{
    Counter, CounterSample, Gauge, Histogram, HistogramSample, MetricRegistry, MetricsSnapshot,
    WindowHistogram,
};
pub use span::{
    parse_traceparent, ActiveTrace, AttrValue, Span, SpanCtx, SpanId, SpanRecord, TraceId,
    DEFAULT_MAX_SPANS,
};
pub use store::{render_waterfall, StoredTrace, TailPolicy, TraceStore};
pub use trace::{memory_tracer, Sampler, SpanBuf, Tracer};

/// The observability handle: a metric registry plus an optional tracer.
pub struct Obs {
    metrics: MetricRegistry,
    tracer: Option<Tracer>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.tracer.is_some())
            .finish()
    }
}

impl Obs {
    /// Metrics only, no tracing.
    pub fn new() -> Self {
        Obs {
            metrics: MetricRegistry::new(),
            tracer: None,
        }
    }

    /// Metrics plus a JSONL tracer.
    pub fn with_tracer(tracer: Tracer) -> Self {
        Obs {
            metrics: MetricRegistry::new(),
            tracer: Some(tracer),
        }
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The tracer, when tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}
