//! Tail-sampled trace retention (DESIGN.md §11).
//!
//! Every armed request *captures* a span tree; the [`TraceStore`] decides
//! after the fact — when the outcome is known — whether it is worth
//! keeping. A trace is retained when it was explicitly forced
//! (`?trace=1`), when the request errored or degraded, or when it ran
//! longer than the slow threshold. Everything else is discarded at the
//! cost of one branch, which is what keeps the armed-but-unretained path
//! inside the `exp_trace_overhead` budget.
//!
//! Retained traces live in a bounded ring (oldest evicted first) and are
//! served as JSON by `GET /v1/traces` / `GET /v1/traces/{id}`; the
//! [`render_waterfall`] text view is what `dr_traceview` prints.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crate::json::{escape_into, JsonValue};
use crate::span::{ActiveTrace, AttrValue, SpanId, SpanRecord};
use std::borrow::Cow;

/// When a finished trace is worth retaining.
#[derive(Debug, Clone, Copy)]
pub struct TailPolicy {
    /// Keep traces at least this slow; `None` disables the latency rule.
    pub slow: Option<Duration>,
    /// Keep traces whose request errored or degraded.
    pub keep_errors: bool,
}

impl Default for TailPolicy {
    fn default() -> Self {
        TailPolicy {
            slow: Some(Duration::from_millis(500)),
            keep_errors: true,
        }
    }
}

impl TailPolicy {
    /// Why a trace with these outcomes is kept, or `None` to discard.
    /// Precedence: forced > error > slow (the strongest signal wins the
    /// `why` label shown in the trace index).
    pub fn why_keep(&self, forced: bool, error: bool, duration: Duration) -> Option<&'static str> {
        if forced {
            return Some("forced");
        }
        if error && self.keep_errors {
            return Some("error");
        }
        match self.slow {
            Some(slow) if duration >= slow => Some("slow"),
            _ => None,
        }
    }
}

/// A retained trace: index metadata plus the full span tree.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// 32-hex trace id.
    pub trace_id: String,
    /// Route label (e.g. `repair`).
    pub route: String,
    /// Knowledge-base name the request targeted.
    pub kb: String,
    /// End-to-end duration, nanoseconds.
    pub duration_nanos: u64,
    /// Retention reason: `forced`, `error`, or `slow`.
    pub why: String,
    /// Spans dropped by the per-trace cap during capture.
    pub dropped_spans: u64,
    /// The recorded spans (finish order; children precede parents).
    pub spans: Vec<SpanRecord>,
}

impl StoredTrace {
    fn head_fields(&self, out: &mut String) {
        out.push_str("{\"trace_id\":\"");
        escape_into(out, &self.trace_id);
        out.push_str("\",\"route\":\"");
        escape_into(out, &self.route);
        out.push_str("\",\"kb\":\"");
        escape_into(out, &self.kb);
        out.push_str("\",\"duration_nanos\":");
        out.push_str(&self.duration_nanos.to_string());
        out.push_str(",\"why\":\"");
        escape_into(out, &self.why);
        out.push_str("\",\"dropped_spans\":");
        out.push_str(&self.dropped_spans.to_string());
        out.push_str(",\"spans\":");
    }

    /// One-line index entry: metadata plus the span count.
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(160);
        self.head_fields(&mut out);
        out.push_str(&self.spans.len().to_string());
        out.push('}');
        out
    }

    /// Full JSON document including the span tree.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        self.head_fields(&mut out);
        out.push('[');
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":\"");
            out.push_str(&span.id.to_hex());
            out.push_str("\",\"parent\":");
            match span.parent {
                Some(p) => {
                    out.push('"');
                    out.push_str(&p.to_hex());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":\"");
            escape_into(&mut out, &span.name);
            out.push_str("\",\"start_nanos\":");
            out.push_str(&span.start_nanos.to_string());
            out.push_str(",\"duration_nanos\":");
            out.push_str(&span.duration_nanos.to_string());
            out.push_str(",\"attrs\":{");
            for (j, (k, v)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":");
                match v {
                    AttrValue::Num(n) => out.push_str(&n.to_string()),
                    AttrValue::Str(s) => {
                        out.push('"');
                        escape_into(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Rebuilds a trace from its [`to_json`](StoredTrace::to_json)
    /// rendering — the `dr_traceview` entry point.
    pub fn from_json(value: &JsonValue) -> Result<StoredTrace, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let spans_json = value
            .get("spans")
            .and_then(JsonValue::as_array)
            .ok_or("missing `spans` array")?;
        let mut spans = Vec::with_capacity(spans_json.len());
        for (i, s) in spans_json.iter().enumerate() {
            let id = s
                .get("id")
                .and_then(JsonValue::as_str)
                .and_then(SpanId::parse_hex)
                .ok_or_else(|| format!("span {i}: bad `id`"))?;
            let parent = match s.get("parent") {
                None | Some(JsonValue::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .and_then(SpanId::parse_hex)
                        .ok_or_else(|| format!("span {i}: bad `parent`"))?,
                ),
            };
            let name = Cow::Owned(
                s.get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("span {i}: missing `name`"))?
                    .to_owned(),
            );
            let start_nanos = s
                .get("start_nanos")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("span {i}: missing `start_nanos`"))?;
            let duration_nanos = s
                .get("duration_nanos")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("span {i}: missing `duration_nanos`"))?;
            let attrs = match s.get("attrs") {
                Some(JsonValue::Object(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| {
                        let value = match v {
                            JsonValue::Str(s) => AttrValue::Str(Cow::Owned(s.clone())),
                            other => AttrValue::Num(
                                other
                                    .as_u64()
                                    .ok_or_else(|| format!("span {i}: bad attr `{k}`"))?,
                            ),
                        };
                        Ok((Cow::Owned(k.clone()), value))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                _ => Vec::new(),
            };
            spans.push(SpanRecord {
                id,
                parent,
                name,
                start_nanos,
                duration_nanos,
                attrs,
            });
        }
        Ok(StoredTrace {
            trace_id: str_field("trace_id")?,
            route: str_field("route")?,
            kb: str_field("kb")?,
            duration_nanos: num_field("duration_nanos")?,
            why: str_field("why")?,
            dropped_spans: num_field("dropped_spans")?,
            spans,
        })
    }
}

/// Bounded ring of retained traces, newest kept, oldest evicted.
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    policy: TailPolicy,
    ring: Mutex<VecDeque<Arc<StoredTrace>>>,
}

impl TraceStore {
    /// A store holding at most `capacity` traces under `policy`.
    pub fn new(capacity: usize, policy: TailPolicy) -> Self {
        TraceStore {
            capacity: capacity.max(1),
            policy,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The retention policy.
    pub fn policy(&self) -> TailPolicy {
        self.policy
    }

    /// Tail-sampling decision point: retains the finished `trace` when
    /// the policy says so and returns why it was kept, or `None` when the
    /// capture is discarded. `error` is the request-level outcome signal
    /// (any failed or degraded rows).
    pub fn offer(
        &self,
        trace: &ActiveTrace,
        route: &str,
        kb: &str,
        error: bool,
    ) -> Option<&'static str> {
        let duration = trace.elapsed();
        let why = self.policy.why_keep(trace.forced(), error, duration)?;
        let stored = Arc::new(StoredTrace {
            trace_id: trace.id().to_hex(),
            route: route.to_owned(),
            kb: kb.to_owned(),
            duration_nanos: duration.as_nanos().min(u64::MAX as u128) as u64,
            why: why.to_owned(),
            dropped_spans: trace.dropped(),
            spans: trace.take_spans(),
        });
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(stored);
        Some(why)
    }

    /// Retained traces, newest first.
    pub fn recent(&self) -> Vec<Arc<StoredTrace>> {
        self.ring.lock().iter().rev().cloned().collect()
    }

    /// Looks up a retained trace by its 32-hex id.
    pub fn get(&self, trace_id: &str) -> Option<Arc<StoredTrace>> {
        self.ring
            .lock()
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }
}

/// Renders a stored trace as an indented text waterfall: one row per
/// span with a bar showing its window within the root, its duration, and
/// its *self time* (duration minus direct children) — the number that
/// tells you which layer actually spent the time.
pub fn render_waterfall(trace: &StoredTrace) -> String {
    const BAR: usize = 32;
    let mut out = format!(
        "TRACE {}  route={} kb={}  duration={}  why={}  spans={} dropped={}\n",
        trace.trace_id,
        trace.route,
        trace.kb,
        fmt_nanos(trace.duration_nanos),
        trace.why,
        trace.spans.len(),
        trace.dropped_spans,
    );
    if trace.spans.is_empty() {
        return out;
    }
    // Index spans and group children under parents, ordered by start.
    let mut order: Vec<usize> = (0..trace.spans.len()).collect();
    order.sort_by_key(|&i| (trace.spans[i].start_nanos, trace.spans[i].id.0));
    let mut roots = Vec::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); trace.spans.len()];
    let index_of = |id: SpanId| trace.spans.iter().position(|s| s.id == id);
    for &i in &order {
        match trace.spans[i].parent.and_then(index_of) {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let total = trace
        .spans
        .iter()
        .map(|s| s.start_nanos + s.duration_nanos)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let span = &trace.spans[i];
        let child_nanos: u64 = children[i]
            .iter()
            .map(|&c| trace.spans[c].duration_nanos)
            .sum();
        let self_nanos = span.duration_nanos.saturating_sub(child_nanos);
        let lead = ((span.start_nanos as u128 * BAR as u128) / total as u128) as usize;
        let fill = (span.duration_nanos as u128 * BAR as u128).div_ceil(total as u128) as usize;
        let lead = lead.min(BAR);
        let fill = fill.clamp(1, BAR - lead.min(BAR - 1));
        let mut bar = String::with_capacity(BAR);
        bar.push_str(&" ".repeat(lead));
        bar.push_str(&"#".repeat(fill));
        bar.push_str(&" ".repeat(BAR - lead - fill));
        out.push_str(&format!(
            "  [{bar}] {:>10}  {}{}  (self {})",
            fmt_nanos(span.duration_nanos),
            "  ".repeat(depth),
            span.name,
            fmt_nanos(self_nanos),
        ));
        for (k, v) in &span.attrs {
            out.push_str(&format!("  {k}={v}"));
        }
        out.push('\n');
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    out
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.1}us", nanos as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::{SpanCtx, TraceId};

    fn finished_trace(forced: bool) -> ActiveTrace {
        let trace = Arc::new(ActiveTrace::new(TraceId::generate(), 64, forced));
        let root = SpanCtx::root(Arc::clone(&trace)).child("request");
        let child = root.child("repair");
        child.finish();
        root.finish();
        Arc::try_unwrap(trace).expect("sole owner")
    }

    #[test]
    fn policy_precedence_forced_error_slow() {
        let p = TailPolicy {
            slow: Some(Duration::from_millis(100)),
            keep_errors: true,
        };
        let fast = Duration::from_millis(1);
        let slow = Duration::from_millis(100);
        assert_eq!(p.why_keep(true, true, slow), Some("forced"));
        assert_eq!(p.why_keep(false, true, fast), Some("error"));
        assert_eq!(p.why_keep(false, false, slow), Some("slow"));
        assert_eq!(p.why_keep(false, false, fast), None);
        let off = TailPolicy {
            slow: None,
            keep_errors: false,
        };
        assert_eq!(off.why_keep(false, true, slow), None);
    }

    #[test]
    fn offer_retains_forced_and_discards_quiet() {
        let store = TraceStore::new(4, TailPolicy::default());
        let kept = finished_trace(true);
        assert_eq!(store.offer(&kept, "repair", "nobel", false), Some("forced"));
        let quiet = finished_trace(false);
        assert_eq!(store.offer(&quiet, "repair", "nobel", false), None);
        assert_eq!(store.len(), 1);
        let got = store.get(&kept.id().to_hex()).expect("retained");
        assert_eq!(got.why, "forced");
        assert_eq!(got.spans.len(), 2);
        assert!(store.get(&quiet.id().to_hex()).is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = TraceStore::new(2, TailPolicy::default());
        let traces: Vec<_> = (0..3).map(|_| finished_trace(true)).collect();
        for t in &traces {
            store.offer(t, "repair", "kb", false);
        }
        assert_eq!(store.len(), 2);
        assert!(store.get(&traces[0].id().to_hex()).is_none(), "evicted");
        let recent = store.recent();
        assert_eq!(recent[0].trace_id, traces[2].id().to_hex(), "newest first");
        assert_eq!(recent[1].trace_id, traces[1].id().to_hex());
    }

    #[test]
    fn json_round_trips_through_parser() {
        let store = TraceStore::new(2, TailPolicy::default());
        let t = finished_trace(true);
        store.offer(&t, "repair", "nobel", false);
        let stored = store.get(&t.id().to_hex()).unwrap();
        let doc = stored.to_json();
        let parsed = json::parse(&doc).expect("valid json");
        let back = StoredTrace::from_json(&parsed).expect("round trip");
        assert_eq!(back.trace_id, stored.trace_id);
        assert_eq!(back.spans, stored.spans);
        assert_eq!(back.duration_nanos, stored.duration_nanos);
        // Summary json parses too and carries the span count.
        let summary = json::parse(&stored.summary_json()).expect("valid summary");
        assert_eq!(
            summary.get("spans").and_then(JsonValue::as_u64),
            Some(stored.spans.len() as u64)
        );
    }

    #[test]
    fn waterfall_lists_every_span_with_self_time() {
        let store = TraceStore::new(2, TailPolicy::default());
        let t = finished_trace(true);
        store.offer(&t, "repair", "nobel", false);
        let stored = store.get(&t.id().to_hex()).unwrap();
        let text = render_waterfall(&stored);
        assert!(text.contains("why=forced"), "{text}");
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("repair"), "{text}");
        assert_eq!(text.lines().count(), 1 + stored.spans.len());
        assert!(text.contains("(self "), "{text}");
    }
}
