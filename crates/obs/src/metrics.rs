//! Lock-free metric primitives and the registry that exposes them.
//!
//! The hot path never takes a lock: [`Counter`] spreads increments over a
//! small array of cache-padded atomic cells (one picked per thread), and
//! [`Histogram`] records into power-of-two latency buckets with plain
//! `fetch_add`s. The [`MetricRegistry`] mutex guards only *registration*
//! (resolving a name to a handle) and snapshotting — callers resolve
//! handles once and then record through them freely.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of per-counter shards. A power of two so the thread-slot mask is
/// a single AND; 16 comfortably covers the worker counts the scheduler uses.
const COUNTER_SHARDS: usize = 16;

/// `Histogram` bucket count: bucket `i` holds samples whose nanosecond
/// value has `i` significant bits, i.e. `value in [2^(i-1), 2^i)`.
const HISTOGRAM_BUCKETS: usize = 64;

/// One cache line per shard so concurrent workers don't false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonic counter. Cheap to clone (an `Arc` over the shard array);
/// clones share the same cells. Increments hit a per-thread shard, reads
/// sum all shards, so `get()` is exact once writers are quiescent.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<[PaddedCell; COUNTER_SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter {
            cells: Arc::new(Default::default()),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Whether `self` and `other` share the same underlying cells.
    pub fn same_cells(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `value`.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram over nanosecond samples.
///
/// Bucket `i` covers `[2^(i-1), 2^i)` nanoseconds (bucket 0 holds zero).
/// Quantiles walk the cumulative distribution and report the midpoint of
/// the bucket containing the target rank — deterministic and within 2× of
/// the true value, which is all a log-scale latency summary promises.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; HISTOGRAM_BUCKETS]>,
    sum_nanos: Arc<AtomicU64>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Arc::new([(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0))),
            sum_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    fn bucket_of(nanos: u64) -> usize {
        (64 - nanos.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one raw nanosecond sample.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Estimated quantile (`q` in `[0, 1]`) in nanoseconds, or `None` when
    /// empty. Reports the midpoint of the bucket holding the target rank.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_from_counts(&counts, q)
    }

    /// Non-empty buckets as `(upper_bound_nanos, cumulative_count)` pairs,
    /// in ascending bound order — the Prometheus `_bucket{le=..}` shape.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_bound(i), cum));
            }
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantile walk shared by [`Histogram`] and [`WindowHistogram`]: the
/// midpoint of the bucket holding rank `ceil(q * total)`, with the rank
/// clamped into `[1, total]` so q = 1.0 resolves to the highest non-empty
/// bucket and a single-sample histogram answers its own bucket everywhere.
fn quantile_from_counts(counts: &[u64], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    let mut last_nonempty = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            last_nonempty = i;
        }
        seen += c;
        if seen >= rank {
            return Some(bucket_midpoint(i));
        }
    }
    // Unreachable once rank <= total, but if it ever fires it must
    // report the highest *non-empty* bucket, not bucket 63's ~2^62 ns.
    Some(bucket_midpoint(last_nonempty))
}

/// Sliding-window slot geometry: 13 slots of 5 s cover the last ~60 s
/// (the current, partially-filled slot plus 12 full ones).
const WINDOW_SLOTS: usize = 13;
const WINDOW_SLOT_SECS: u64 = 5;

#[derive(Debug, Clone, Copy)]
struct WindowSlot {
    /// Which 5-second epoch this slot currently holds; slots are lazily
    /// reset when a new epoch wraps around onto them.
    epoch: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_nanos: u64,
}

impl WindowSlot {
    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.buckets = [0; HISTOGRAM_BUCKETS];
        self.count = 0;
        self.sum_nanos = 0;
    }
}

#[derive(Debug)]
struct WindowInner {
    origin: Instant,
    slots: [WindowSlot; WINDOW_SLOTS],
}

/// A latency histogram over only the last ~60 seconds of samples, so
/// `/metrics` can expose *live* p95/p99 without cumulative-rate math.
///
/// Time is diced into 5-second epochs over a ring of 13 slots; recording
/// lazily reclaims the slot its epoch maps onto, and reads merge the
/// slots that are still inside the window. Unlike [`Histogram`] the hot
/// path takes a mutex, which is fine for the per-request and per-tuple
/// rates it serves (the lock is held for a few dozen nanoseconds).
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    inner: Arc<Mutex<WindowInner>>,
}

impl WindowHistogram {
    /// A fresh, empty window.
    pub fn new() -> Self {
        let slot = WindowSlot {
            // u64::MAX marks "never used": it can't equal a live epoch, so
            // the first record into a slot always resets it.
            epoch: u64::MAX,
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_nanos: 0,
        };
        WindowHistogram {
            inner: Arc::new(Mutex::new(WindowInner {
                origin: Instant::now(),
                slots: [slot; WINDOW_SLOTS],
            })),
        }
    }

    fn current_epoch(&self) -> u64 {
        self.inner.lock().origin.elapsed().as_secs() / WINDOW_SLOT_SECS
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one raw nanosecond sample.
    pub fn record_nanos(&self, nanos: u64) {
        let epoch = self.current_epoch();
        self.record_at(epoch, nanos);
    }

    fn record_at(&self, epoch: u64, nanos: u64) {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[(epoch % WINDOW_SLOTS as u64) as usize];
        if slot.epoch != epoch {
            slot.reset(epoch);
        }
        slot.buckets[Histogram::bucket_of(nanos)] += 1;
        slot.count += 1;
        slot.sum_nanos += nanos;
    }

    /// Merged in-window state as `(bucket counts, count, sum_nanos)`.
    fn merged_at(&self, epoch: u64) -> ([u64; HISTOGRAM_BUCKETS], u64, u64) {
        let oldest = epoch.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let inner = self.inner.lock();
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for slot in &inner.slots {
            if slot.epoch >= oldest && slot.epoch <= epoch {
                for (acc, b) in buckets.iter_mut().zip(slot.buckets.iter()) {
                    *acc += b;
                }
                count += slot.count;
                sum += slot.sum_nanos;
            }
        }
        (buckets, count, sum)
    }

    /// Samples currently inside the window.
    pub fn count(&self) -> u64 {
        self.merged_at(self.current_epoch()).1
    }

    /// Sum of in-window samples, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.merged_at(self.current_epoch()).2
    }

    /// Estimated in-window quantile, or `None` when the window is empty.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let (buckets, _, _) = self.merged_at(self.current_epoch());
        quantile_from_counts(&buckets, q)
    }
}

impl Default for WindowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Exclusive upper bound of bucket `i`, in nanoseconds.
fn bucket_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Midpoint of bucket `i`, in nanoseconds.
fn bucket_midpoint(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        let lo = 1u64 << (i - 1);
        lo + lo / 2
    }
}

/// `(metric name, rendered label pairs)` — the registry's catalog key.
type MetricKey = (String, String);

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        crate::json::escape_into(&mut out, v);
        out.push('"');
    }
    out
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Vec<Counter>>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Histogram>,
    windows: BTreeMap<MetricKey, WindowHistogram>,
}

/// Catalog of named metrics. Registration and snapshotting lock a mutex;
/// recording through resolved handles is lock-free.
///
/// Several [`Counter`]s may be registered under one key (e.g. each
/// `ValueCache` a registry creates contributes its own `node_hits` cell);
/// snapshots report their sum. Registering the same cells twice under the
/// same key is idempotent, so attach points can re-register freely.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter for `name`/`labels`. Repeated calls with
    /// the same key return handles over the same cells.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), render_labels(labels));
        let mut inner = self.inner.lock();
        let cells = inner.counters.entry(key).or_default();
        if cells.is_empty() {
            cells.push(Counter::new());
        }
        cells[0].clone()
    }

    /// Attach an existing counter's cells under `name`/`labels`, so the
    /// snapshot total includes them. Idempotent per cell identity.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], cell: &Counter) {
        let key = (name.to_string(), render_labels(labels));
        let mut inner = self.inner.lock();
        let cells = inner.counters.entry(key).or_default();
        if !cells.iter().any(|c| c.same_cells(cell)) {
            cells.push(cell.clone());
        }
    }

    /// Get or create the gauge for `name`/`labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), render_labels(labels));
        self.inner.lock().gauges.entry(key).or_default().clone()
    }

    /// Get or create the histogram for `name`/`labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = (name.to_string(), render_labels(labels));
        self.inner.lock().histograms.entry(key).or_default().clone()
    }

    /// Get or create the sliding-window histogram for `name`/`labels`.
    /// Conventionally named `<base>_seconds_window`.
    pub fn window_histogram(&self, name: &str, labels: &[(&str, &str)]) -> WindowHistogram {
        let key = (name.to_string(), render_labels(labels));
        self.inner.lock().windows.entry(key).or_default().clone()
    }

    /// A point-in-time copy of every metric's value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let counters = inner
            .counters
            .iter()
            .map(|((name, labels), cells)| CounterSample {
                name: name.clone(),
                labels: labels.clone(),
                value: cells.iter().map(Counter::get).sum(),
            })
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|((name, labels), g)| CounterSample {
                name: name.clone(),
                labels: labels.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|((name, labels), h)| HistogramSample {
                name: name.clone(),
                labels: labels.clone(),
                count: h.count(),
                sum_nanos: h.sum_nanos(),
                p50: h.quantile_nanos(0.50),
                p95: h.quantile_nanos(0.95),
                p99: h.quantile_nanos(0.99),
                buckets: h.cumulative_buckets(),
            })
            .collect();
        let windows = inner
            .windows
            .iter()
            .map(|((name, labels), w)| HistogramSample {
                name: name.clone(),
                labels: labels.clone(),
                count: w.count(),
                sum_nanos: w.sum_nanos(),
                p50: w.quantile_nanos(0.50),
                p95: w.quantile_nanos(0.95),
                p99: w.quantile_nanos(0.99),
                buckets: Vec::new(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            windows,
        }
    }
}

/// One counter or gauge reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Rendered label pairs (empty when unlabelled).
    pub labels: String,
    /// Summed value.
    pub value: u64,
}

/// One histogram reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Rendered label pairs (empty when unlabelled).
    pub labels: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of samples, nanoseconds.
    pub sum_nanos: u64,
    /// Estimated 50th percentile, nanoseconds.
    pub p50: Option<u64>,
    /// Estimated 95th percentile, nanoseconds.
    pub p95: Option<u64>,
    /// Estimated 99th percentile, nanoseconds.
    pub p99: Option<u64>,
    /// Non-empty cumulative buckets as `(le_nanos, cumulative_count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Deterministically ordered copy of a registry's metrics, renderable as
/// Prometheus exposition text or queried directly by tests and reports.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter readings, sorted by (name, labels).
    pub counters: Vec<CounterSample>,
    /// Gauge readings, sorted by (name, labels).
    pub gauges: Vec<CounterSample>,
    /// Histogram readings, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
    /// Sliding-window histogram readings (rendered as summaries), sorted
    /// by (name, labels); `buckets` is always empty for these.
    pub windows: Vec<HistogramSample>,
}

/// Names ending in `_seconds` (or `_seconds_window` for the sliding
/// windows) store nanoseconds internally and render as fractional seconds
/// in the Prometheus dump.
fn is_seconds(name: &str) -> bool {
    name.ends_with("_seconds") || name.ends_with("_seconds_window")
}

fn nanos_str(nanos: u64) -> String {
    format!("{:.9}", nanos as f64 / 1e9)
}

impl MetricsSnapshot {
    /// Value of the counter with exactly this `name` and rendered `labels`
    /// (e.g. `worker="0"`), if present.
    pub fn counter(&self, name: &str, labels: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
            .map(|c| c.value)
    }

    /// Sum over every labelling of counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The sliding-window reading with exactly this `name` and rendered
    /// `labels`, if present.
    pub fn window(&self, name: &str, labels: &str) -> Option<&HistogramSample> {
        self.windows
            .iter()
            .find(|w| w.name == name && w.labels == labels)
    }

    /// Render as Prometheus text exposition. Deterministic: metrics sort
    /// by name then labels, and no timestamps are emitted.
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for c in &self.counters {
            if c.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", c.name));
                last_name = &c.name;
            }
            let value = if is_seconds(&c.name) {
                nanos_str(c.value)
            } else {
                c.value.to_string()
            };
            if c.labels.is_empty() {
                out.push_str(&format!("{} {}\n", c.name, value));
            } else {
                out.push_str(&format!("{}{{{}}} {}\n", c.name, c.labels, value));
            }
        }
        for g in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n", g.name));
            if g.labels.is_empty() {
                out.push_str(&format!("{} {}\n", g.name, g.value));
            } else {
                out.push_str(&format!("{}{{{}}} {}\n", g.name, g.labels, g.value));
            }
        }
        for h in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let sep = if h.labels.is_empty() { "" } else { "," };
            for (bound, cum) in &h.buckets {
                let le = if *bound == u64::MAX {
                    "+Inf".to_string()
                } else if is_seconds(&h.name) {
                    nanos_str(*bound)
                } else {
                    bound.to_string()
                };
                out.push_str(&format!(
                    "{}_bucket{{{}{}le=\"{}\"}} {}\n",
                    h.name, h.labels, sep, le, cum
                ));
            }
            let sum = if is_seconds(&h.name) {
                nanos_str(h.sum_nanos)
            } else {
                h.sum_nanos.to_string()
            };
            if h.labels.is_empty() {
                out.push_str(&format!("{}_sum {}\n", h.name, sum));
                out.push_str(&format!("{}_count {}\n", h.name, h.count));
            } else {
                out.push_str(&format!("{}_sum{{{}}} {}\n", h.name, h.labels, sum));
                out.push_str(&format!("{}_count{{{}}} {}\n", h.name, h.labels, h.count));
            }
        }
        for w in &self.windows {
            out.push_str(&format!("# TYPE {} summary\n", w.name));
            let sep = if w.labels.is_empty() { "" } else { "," };
            for (q, value) in [("0.5", w.p50), ("0.95", w.p95), ("0.99", w.p99)] {
                let Some(nanos) = value else { continue };
                let rendered = if is_seconds(&w.name) {
                    nanos_str(nanos)
                } else {
                    nanos.to_string()
                };
                out.push_str(&format!(
                    "{}{{{}{}quantile=\"{}\"}} {}\n",
                    w.name, w.labels, sep, q, rendered
                ));
            }
            let sum = if is_seconds(&w.name) {
                nanos_str(w.sum_nanos)
            } else {
                w.sum_nanos.to_string()
            };
            if w.labels.is_empty() {
                out.push_str(&format!("{}_sum {}\n", w.name, sum));
                out.push_str(&format!("{}_count {}\n", w.name, w.count));
            } else {
                out.push_str(&format!("{}_sum{{{}}} {}\n", w.name, w.labels, sum));
                out.push_str(&format!("{}_count{{{}}} {}\n", w.name, w.labels, w.count));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clone_shares_cells() {
        let c = Counter::new();
        let d = c.clone();
        c.add(3);
        d.inc();
        assert_eq!(c.get(), 4);
        assert!(c.same_cells(&d));
        assert!(!c.same_cells(&Counter::new()));
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record_nanos(1_000);
        }
        h.record_nanos(1_000_000);
        assert_eq!(h.count(), 100);
        let p0 = h.quantile_nanos(0.0).unwrap();
        assert!((512..2048).contains(&p0), "p0 sits in the 1µs bucket: {p0}");
        let p50 = h.quantile_nanos(0.50).unwrap();
        assert!((512..2048).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_nanos(0.99).unwrap();
        assert!(p99 < 1_000_000, "p99 should still sit in the 1µs bucket");
        // q = 1.0 must land *in* the highest non-empty bucket (the 1ms
        // sample's), never overflow past it to bucket 63's ~2^62 ns.
        let p100 = h.quantile_nanos(1.0).unwrap();
        assert!(
            (524_288..1_048_576).contains(&p100),
            "max must land in the 1ms bucket: {p100}"
        );
    }

    /// A single-sample histogram answers that sample's bucket for *every*
    /// quantile — q = 0.0 (rank floor), q = 1.0 (rank ceiling), and points
    /// between — and an empty histogram answers `None` everywhere.
    #[test]
    fn histogram_quantile_edge_cases() {
        let empty = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile_nanos(q), None);
        }

        let single = Histogram::new();
        single.record_nanos(10_000); // bucket [8192, 16384)
        assert_eq!(single.count(), 1);
        let expect = single.quantile_nanos(0.5).unwrap();
        assert!((8_192..16_384).contains(&expect), "midpoint: {expect}");
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile_nanos(q), Some(expect), "q = {q}");
        }

        // Out-of-range q clamps instead of panicking or overflowing.
        assert_eq!(single.quantile_nanos(-1.0), Some(expect));
        assert_eq!(single.quantile_nanos(2.0), Some(expect));
    }

    #[test]
    fn registry_dedupes_registered_cells() {
        let reg = MetricRegistry::new();
        let cell = Counter::new();
        cell.add(5);
        reg.register_counter("value_cache_node_hits_total", &[], &cell);
        reg.register_counter("value_cache_node_hits_total", &[], &cell);
        assert_eq!(
            reg.snapshot().counter("value_cache_node_hits_total", ""),
            Some(5)
        );
        // A distinct cell under the same name adds to the total.
        let other = Counter::new();
        other.add(2);
        reg.register_counter("value_cache_node_hits_total", &[], &other);
        assert_eq!(
            reg.snapshot().counter("value_cache_node_hits_total", ""),
            Some(7)
        );
    }

    #[test]
    fn window_histogram_expires_old_epochs() {
        let w = WindowHistogram::new();
        // Epoch 0: three 1µs samples; epoch 1: one 1ms sample.
        w.record_at(0, 1_000);
        w.record_at(0, 1_000);
        w.record_at(0, 1_000);
        w.record_at(1, 1_000_000);
        let (buckets, count, sum) = w.merged_at(1);
        assert_eq!(count, 4);
        assert_eq!(sum, 3_000 + 1_000_000);
        assert_eq!(
            quantile_from_counts(&buckets, 0.5).map(|n| n < 10_000),
            Some(true)
        );
        // 13 epochs later the epoch-0 slot has aged out; epoch 1 remains
        // (1 >= 13 - 12), then one more epoch retires it too.
        let (_, count, sum) = w.merged_at(13);
        assert_eq!(count, 1);
        assert_eq!(sum, 1_000_000);
        let (_, count, _) = w.merged_at(14);
        assert_eq!(count, 0);
        // Recording into a wrapped slot reclaims it rather than merging
        // with the stale epoch's data.
        w.record_at(13, 2_000);
        let (_, count, sum) = w.merged_at(13);
        assert_eq!(count, 2, "epoch 13 sample + epoch 1 still in window");
        assert_eq!(sum, 1_000_000 + 2_000);
    }

    #[test]
    fn window_histogram_live_path_and_render() {
        let reg = MetricRegistry::new();
        let w = reg.window_histogram("lat_seconds_window", &[("route", "repair")]);
        assert_eq!(w.count(), 0);
        assert_eq!(w.quantile_nanos(0.95), None);
        for _ in 0..20 {
            w.record(Duration::from_micros(100));
        }
        // Clones share state, like the other primitives.
        let w2 = reg.window_histogram("lat_seconds_window", &[("route", "repair")]);
        assert_eq!(w2.count(), 20);
        let p95 = w.quantile_nanos(0.95).expect("non-empty");
        assert!((65_536..262_144).contains(&p95), "100µs bucket: {p95}");

        let snap = reg.snapshot();
        let sample = snap
            .window("lat_seconds_window", "route=\"repair\"")
            .expect("window in snapshot");
        assert_eq!(sample.count, 20);
        assert_eq!(sample.p95, Some(p95));
        let text = snap.render_prom();
        assert!(
            text.contains("# TYPE lat_seconds_window summary\n"),
            "got:\n{text}"
        );
        assert!(
            text.contains("lat_seconds_window{route=\"repair\",quantile=\"0.95\"} 0.000"),
            "seconds rendering: \n{text}"
        );
        assert!(text.contains("lat_seconds_window_count{route=\"repair\"} 20\n"));
    }

    #[test]
    fn prom_render_is_deterministic_and_typed() {
        let reg = MetricRegistry::new();
        reg.counter("b_total", &[("worker", "1")]).add(2);
        reg.counter("b_total", &[("worker", "0")]).add(1);
        reg.counter("a_seconds", &[("phase", "repair")])
            .add(1_500_000_000);
        reg.gauge("workers", &[]).set(4);
        let h = reg.histogram("lat_seconds", &[]);
        h.record_nanos(1_000);
        let text = reg.snapshot().render_prom();
        let expect_prefix = "# TYPE a_seconds counter\n\
                             a_seconds{phase=\"repair\"} 1.500000000\n\
                             # TYPE b_total counter\n\
                             b_total{worker=\"0\"} 1\n\
                             b_total{worker=\"1\"} 2\n\
                             # TYPE workers gauge\nworkers 4\n";
        assert!(text.starts_with(expect_prefix), "got:\n{text}");
        assert!(text.contains("lat_seconds_count 1\n"));
        assert_eq!(text, reg.snapshot().render_prom());
    }
}
