//! Minimal JSON object builder for trace events.
//!
//! The build environment is fully offline, so instead of a serde dependency
//! the tracer hand-rolls the one shape it needs: a flat, single-line JSON
//! object with string/number fields, appended in insertion order. Keeping
//! field order caller-controlled makes golden-file tests byte-stable.

/// Escape `s` into `out` as the body of a JSON string literal (no quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Builder for one single-line JSON object. Fields render in insertion
/// order; [`JsonObj::finish`] closes the object and returns the line
/// (without a trailing newline).
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start a new object: `{`.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Append an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Close the object and return the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_insertion_order() {
        let line = JsonObj::new().str("ev", "tuple").num("row", 3).finish();
        assert_eq!(line, r#"{"ev":"tuple","row":3}"#);
    }

    #[test]
    fn escapes_quotes_and_control_chars() {
        let line = JsonObj::new().str("name", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"name\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }
}
