//! Minimal JSON object builder for trace events.
//!
//! The build environment is fully offline, so instead of a serde dependency
//! the tracer hand-rolls the one shape it needs: a flat, single-line JSON
//! object with string/number fields, appended in insertion order. Keeping
//! field order caller-controlled makes golden-file tests byte-stable.

/// Escape `s` into `out` as the body of a JSON string literal (no quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Builder for one single-line JSON object. Fields render in insertion
/// order; [`JsonObj::finish`] closes the object and returns the line
/// (without a trailing newline).
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start a new object: `{`.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Append an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Close the object and return the rendered line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed JSON value. Objects keep their fields in document order (the
/// renderers in this crate are insertion-ordered, so round trips are
/// stable); duplicate keys keep the first occurrence on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Recursive descent over the full grammar;
/// trailing non-whitespace is an error. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected value at byte {pos}")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates (not produced by our renderers) decode
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar: find the char at this byte.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_insertion_order() {
        let line = JsonObj::new().str("ev", "tuple").num("row", 3).finish();
        assert_eq!(line, r#"{"ev":"tuple","row":3}"#);
    }

    #[test]
    fn escapes_quotes_and_control_chars() {
        let line = JsonObj::new().str("name", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"name\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }

    #[test]
    fn parses_builder_output() {
        let line = JsonObj::new().str("ev", "tuple").num("row", 3).finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ev").and_then(JsonValue::as_str), Some("tuple"));
        assert_eq!(v.get("row").and_then(JsonValue::as_u64), Some(3));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\nA"} "#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_u64(), None, "negative is not u64");
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Null));
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("x\nA"));
    }

    #[test]
    fn escaped_strings_round_trip() {
        let original = "a\"b\\c\nd\u{1}é";
        let line = JsonObj::new().str("s", original).finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1e999").is_err(), "non-finite number");
    }
}
