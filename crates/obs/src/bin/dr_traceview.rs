//! `dr_traceview` — text waterfall for retained request traces.
//!
//! Feed it the JSON from `GET /v1/traces/{id}` (a file argument or stdin)
//! and it prints an indented waterfall: one row per span with its window
//! within the request, duration, self time, and attributes. An index
//! document from `GET /v1/traces` prints as a one-line-per-trace table.
//!
//! ```text
//! curl -s host:8080/v1/traces/<id> | dr_traceview
//! dr_traceview trace.json
//! ```

use dr_obs::{render_waterfall, JsonValue, StoredTrace};
use std::io::Read;

fn die(msg: &str) -> ! {
    eprintln!("dr_traceview: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: dr_traceview [trace.json]  (reads stdin when no file is given)");
        println!("input: the JSON body of /v1/traces/<id> (waterfall) or /v1/traces (index)");
        return;
    }
    let text = match args.first() {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    let value =
        dr_obs::json::parse(text.trim()).unwrap_or_else(|e| die(&format!("invalid JSON: {e}")));

    // An index document carries a `traces` array of summaries; a single
    // trace carries a `spans` array.
    if let Some(list) = value.get("traces").and_then(JsonValue::as_array) {
        if list.is_empty() {
            println!("no retained traces");
            return;
        }
        println!(
            "{:<32}  {:>10}  {:<8}  {:<6}  {:>6}  KB",
            "TRACE", "DURATION", "ROUTE", "WHY", "SPANS"
        );
        for t in list {
            let get_str = |k: &str| {
                t.get(k)
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_owned()
            };
            let nanos = t
                .get("duration_nanos")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0);
            println!(
                "{:<32}  {:>9.3}ms  {:<8}  {:<6}  {:>6}  {}",
                get_str("trace_id"),
                nanos as f64 / 1e6,
                get_str("route"),
                get_str("why"),
                t.get("spans").and_then(JsonValue::as_u64).unwrap_or(0),
                get_str("kb"),
            );
        }
        return;
    }

    let trace =
        StoredTrace::from_json(&value).unwrap_or_else(|e| die(&format!("not a trace: {e}")));
    print!("{}", render_waterfall(&trace));
}
