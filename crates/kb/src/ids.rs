//! Typed identifiers for knowledge-base entities.
//!
//! Each id is a `u32` newtype: small enough to keep hot structures compact,
//! and typed so that an instance id cannot be confused with a class id at
//! compile time.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Builds an id from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }

            /// The raw index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies an entity (an RDF instance such as *Avram Hershko*).
    InstanceId,
    "i"
);
define_id!(
    /// Identifies a class (an RDF type such as *city*).
    ClassId,
    "c"
);
define_id!(
    /// Identifies a literal value (a string, date, or number).
    LiteralId,
    "l"
);
define_id!(
    /// Identifies a predicate: a relationship (instance → instance) or a
    /// property (instance → literal).
    PredId,
    "p"
);

/// An edge target in the RDF graph: either another instance or a literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Node {
    /// An entity node.
    Instance(InstanceId),
    /// A literal node.
    Literal(LiteralId),
}

impl Node {
    /// Returns the instance id if this node is an instance.
    #[inline]
    pub fn as_instance(self) -> Option<InstanceId> {
        match self {
            Node::Instance(i) => Some(i),
            Node::Literal(_) => None,
        }
    }

    /// Returns the literal id if this node is a literal.
    #[inline]
    pub fn as_literal(self) -> Option<LiteralId> {
        match self {
            Node::Literal(l) => Some(l),
            Node::Instance(_) => None,
        }
    }

    /// Whether this node is a literal.
    #[inline]
    pub fn is_literal(self) -> bool {
        matches!(self, Node::Literal(_))
    }
}

// Hot-path type-size guards (see the perf-book guidance): `Node` rides in
// adjacency lists and candidate vectors by the million.
const _: () = assert!(std::mem::size_of::<Node>() == 8);
const _: () = assert!(std::mem::size_of::<InstanceId>() == 4);

impl From<InstanceId> for Node {
    fn from(i: InstanceId) -> Self {
        Node::Instance(i)
    }
}

impl From<LiteralId> for Node {
    fn from(l: LiteralId) -> Self {
        Node::Literal(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let i = InstanceId::from_index(7);
        assert_eq!(i.index(), 7);
        let c = ClassId::from_index(0);
        assert_eq!(c.index(), 0);
    }

    #[test]
    fn node_projections() {
        let n: Node = InstanceId::from_index(3).into();
        assert_eq!(n.as_instance(), Some(InstanceId::from_index(3)));
        assert_eq!(n.as_literal(), None);
        assert!(!n.is_literal());

        let l: Node = LiteralId::from_index(9).into();
        assert_eq!(l.as_literal(), Some(LiteralId::from_index(9)));
        assert!(l.is_literal());
    }

    #[test]
    fn debug_tags_distinguish_id_kinds() {
        assert_eq!(format!("{:?}", InstanceId::from_index(1)), "i1");
        assert_eq!(format!("{:?}", ClassId::from_index(1)), "c1");
        assert_eq!(format!("{:?}", LiteralId::from_index(1)), "l1");
        assert_eq!(format!("{:?}", PredId::from_index(1)), "p1");
    }
}
