//! A small, fast, non-cryptographic hasher for interned-id keys.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! tiny integer keys that dominate this workspace (interned symbols, instance
//! ids, `(instance, predicate)` pairs). Knowledge bases and rules are trusted,
//! locally-generated inputs, so HashDoS is not a concern and we trade
//! resistance for speed, following the Fx-hash design used by rustc.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash family (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An Fx-style streaming hasher: fast mix of machine words.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("detective"), hash_of("detective"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        for i in 0..1000u32 {
            m.entry((i % 37, i % 11)).or_default().push(i);
        }
        // 37 and 11 are coprime, and 1000 > 37 * 11, so every residue pair appears.
        assert_eq!(m.len(), 37 * 11);
        assert!(m.contains_key(&(0, 0)));
    }

    #[test]
    fn uneven_tail_bytes_hash_differently() {
        assert_ne!(hash_of("abcdefghi"), hash_of("abcdefghj"));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
    }
}
