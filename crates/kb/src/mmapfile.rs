//! A minimal read-only memory map, the one `unsafe` boundary of the
//! out-of-core KB path (DESIGN.md §8).
//!
//! We stay dependency-free, so instead of the `memmap2` crate this module
//! declares the two libc symbols it needs (`mmap`/`munmap` — std already
//! links libc on every unix target) and wraps them in an RAII handle that
//! derefs to `&[u8]`. On non-unix targets — and for empty files, where
//! `mmap` with length 0 is unspecified — it falls back to reading the whole
//! file into a `Vec<u8>`; callers only ever see a byte slice, so the
//! fallback is behaviorally identical, just not zero-copy.
//!
//! Safety argument for the `Send + Sync` impls and the `Deref`: the mapping
//! is `PROT_READ | MAP_PRIVATE`, so the kernel never lets us write through
//! it and other processes' writes to the file are not required to be
//! visible (private copy-on-write semantics). The image format layered on
//! top additionally verifies a whole-file checksum at open, so a file
//! swapped mid-read surfaces as a checksum/shape error, not UB: we never
//! unmap until `Drop`, and the slice we hand out lives exactly as long as
//! the mapping.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

/// A read-only view of a file's bytes: an `mmap` on unix, a heap copy
/// elsewhere (and for empty files).
pub struct MmapFile {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `MAP_FAILED` is `(void *) -1` on every unix libc.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

impl MmapFile {
    /// Maps `path` read-only. Falls back to an owned buffer for empty
    /// files and on targets without `mmap`.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len)
            .map_err(|_| std::io::Error::other("file larger than address space"))?;

        #[cfg(unix)]
        if len_usize > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file descriptor for the duration
            // of the call; we request a fresh address (addr = null), a
            // read-only private mapping, and a length we just measured.
            // The kernel either returns a mapping of exactly `len_usize`
            // bytes or MAP_FAILED.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len_usize,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::map_failed() || ptr.is_null() {
                return Err(std::io::Error::last_os_error());
            }
            return Ok(Self {
                inner: Inner::Mapped {
                    ptr,
                    len: len_usize,
                },
            });
        }

        let mut buf = Vec::with_capacity(len_usize);
        file.read_to_end(&mut buf)?;
        Ok(Self {
            inner: Inner::Owned(buf),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: `ptr` came from a successful PROT_READ mmap of
                // exactly `len` bytes and stays mapped until Drop; the
                // mapping is private, so the slice contents are stable for
                // its lifetime.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            Inner::Owned(buf) => buf,
        }
    }
}

impl Deref for MmapFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: exactly one munmap of the region mmap gave us;
                // no slice borrowed from it can outlive `self`.
                unsafe {
                    sys::munmap(*ptr, *len);
                }
            }
            Inner::Owned(_) => {}
        }
    }
}

// SAFETY: the mapping is read-only and private; sharing `&[u8]` views
// across threads involves no mutation or interior mutability.
unsafe impl Send for MmapFile {}
// SAFETY: as above — concurrent reads of an immutable mapping are safe.
unsafe impl Sync for MmapFile {}

impl std::fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapFile")
            .field("len", &self.bytes().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("dr-mmapfile-{}-{}", std::process::id(), name));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = scratch("basic", b"hello mapped world");
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        drop(map);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = scratch("empty", b"");
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = MmapFile::open(Path::new("/nonexistent/dr-mmap-missing")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
