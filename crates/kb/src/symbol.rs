//! String interning.
//!
//! Every name in a knowledge base — instance labels, class names, predicate
//! names, literal values — is interned into a 4-byte [`Symbol`]. All
//! downstream structures (adjacency indexes, rule nodes, signature indexes)
//! key on symbols instead of strings, which keeps hot maps small and hashing
//! cheap (see the type-sizes and hashing guidance in the Rust perf book).

use crate::hash::FxHashMap;
use std::fmt;

/// An interned string handle. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol inside its [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An append-only intern table mapping strings to [`Symbol`]s and back.
///
/// Lookups by string use a fast hash map; lookups by symbol are a direct
/// vector index. Interning the same string twice returns the same symbol.
#[derive(Default, Clone)]
pub struct SymbolTable {
    strings: Vec<Box<str>>,
    index: FxHashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with room for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            strings: Vec::with_capacity(cap),
            index: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("more than u32::MAX symbols"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// Returns the symbol for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different table and is out of range.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(symbol, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Haifa");
        let b = t.intern("Haifa");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("Haifa");
        let b = t.intern("Karcag");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "Haifa");
        assert_eq!(t.resolve(b), "Karcag");
    }

    #[test]
    fn get_without_interning() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(a, "a"), (b, "b")]);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut t = SymbolTable::new();
        let e = t.intern("");
        assert_eq!(t.resolve(e), "");
        assert!(!t.is_empty());
    }
}
