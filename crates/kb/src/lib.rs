//! # dr-kb — RDF knowledge-base substrate
//!
//! The knowledge-base layer of the *detective rules* reproduction
//! (Hao et al., *Cleaning Relations using Knowledge Bases*, ICDE 2017).
//!
//! A KB (§II-A of the paper) is a set of triples `(s, p, o)`:
//! `s` an **instance**, `p` a **relationship** (instance → instance) or a
//! **property** (instance → literal), `o` an instance or a **literal**.
//! Instances are typed with **classes**, arranged in a `subClassOf`
//! [`Taxonomy`]. Detective rules match relation tuples against this graph, so
//! the store is optimized for the queries that dominate rule evaluation:
//!
//! * `instances_of(class)` with taxonomy closure — the candidate set for a
//!   rule node;
//! * `objects(s, p)` / `subjects(o, p)` — the structural constraints of rule
//!   edges and the source of corrections;
//! * `has_edge(s, p, o)` — O(log n) edge membership;
//! * `instances_labeled(v)` — exact-match (`sim: =`) node matching.
//!
//! Construction goes through [`KbBuilder`]; once
//! [`finalized`](KbBuilder::finalize) the KB is immutable and cheap to share
//! across threads.
//!
//! ```
//! use dr_kb::{KbBuilder, Node};
//!
//! let mut b = KbBuilder::new();
//! let city = b.class("city");
//! let country = b.class("country");
//! let located_in = b.pred("locatedIn");
//! let haifa = b.instance("Haifa");
//! let israel = b.instance("Israel");
//! b.set_type(haifa, city);
//! b.set_type(israel, country);
//! b.edge(haifa, located_in, israel);
//! let kb = b.finalize().unwrap();
//!
//! assert!(kb.has_edge(haifa, located_in, Node::Instance(israel)));
//! assert_eq!(kb.instances_of(city), &[haifa]);
//! ```

#![warn(missing_docs)]
// Resilience hygiene (DESIGN.md §4c): library code must surface failures as
// typed errors, not panics. `.expect()` stays available for genuine
// invariants — the message documents why the panic cannot fire.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod content_hash;
pub mod delta;
pub mod fixtures;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod image;
pub mod mapped;
pub mod mmapfile;
pub mod ntriples;
pub mod quarantine;
pub mod stats;
pub mod symbol;
pub mod taxonomy;
pub mod view;

pub use content_hash::content_hash_of;
pub use delta::{DeltaNode, DeltaOp, DeltaParseError, KbDelta, KbFootprint};
pub use graph::{KbBuilder, KbError, KnowledgeBase};
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{ClassId, InstanceId, LiteralId, Node, PredId};
pub use image::{pack, write_image, KbImageError};
pub use mapped::MappedKb;
pub use quarantine::{strip_bom, Diagnostic, LenientOptions, Quarantine};
pub use stats::{pred_kind, stats, KbStats, PredKind};
pub use symbol::{Symbol, SymbolTable};
pub use taxonomy::Taxonomy;
pub use view::{KbQuery, KbRef};
