//! A plain-text triple exchange format, modeled on N-Triples.
//!
//! Lines look like:
//!
//! ```text
//! <Avram_Hershko> <rdf:type> <class:Nobel_laureates_in_Chemistry> .
//! <class:Nobel_laureates_in_Chemistry> <rdfs:subClassOf> <class:person> .
//! <Avram_Hershko> <worksAt> <Israel_Institute_of_Technology> .
//! <Avram_Hershko> <bornOnDate> "1937-12-31" .
//! # comment
//! ```
//!
//! * IRIs in `<…>` name instances, except those with the `class:` prefix,
//!   which name classes. Underscores in local names render as spaces in
//!   labels.
//! * `"…"` objects are literals (with `\"` and `\\` escapes).
//! * The reserved predicates `rdf:type` and `rdfs:subClassOf` populate the
//!   type assignments and the taxonomy.
//!
//! The format exists so synthetic KBs can be persisted, diffed, and reloaded
//! deterministically; it is not a full RDF parser.

use crate::graph::{KbBuilder, KbError, KnowledgeBase};
use crate::ids::Node;
use crate::quarantine::{Diagnostic, LenientOptions, Quarantine};
use std::fmt;

/// Prefix distinguishing class IRIs from instance IRIs.
const CLASS_PREFIX: &str = "class:";
/// Reserved predicate for type assignment.
const RDF_TYPE: &str = "rdf:type";
/// Reserved predicate for taxonomy edges.
const RDFS_SUBCLASS: &str = "rdfs:subClassOf";

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`parse`] and [`load_file`].
#[derive(Debug)]
pub enum LoadError {
    /// The text failed to parse.
    Parse(ParseError),
    /// Parsing succeeded but the KB failed to finalize.
    Kb(KbError),
    /// The file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::Kb(e) => write!(f, "kb error: {e}"),
            LoadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ParseError> for LoadError {
    fn from(e: ParseError) -> Self {
        LoadError::Parse(e)
    }
}

impl From<KbError> for LoadError {
    fn from(e: KbError) -> Self {
        LoadError::Kb(e)
    }
}

/// One parsed term.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    Iri(String),
    Literal(String),
}

/// Decodes an IRI local name back to a label: underscores become spaces,
/// then percent-escapes decode.
fn local_to_label(local: &str) -> String {
    let spaced = local.replace('_', " ");
    let mut out = String::with_capacity(spaced.len());
    let mut chars = spaced.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '%' {
            let hi = chars.next();
            let lo = chars.next();
            let decoded = match (hi, lo) {
                (Some(h), Some(l)) => u8::from_str_radix(&format!("{h}{l}"), 16).ok(),
                _ => None,
            };
            match decoded {
                Some(byte) => out.push(byte as char),
                None => out.push('%'), // tolerate stray '%'
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Encodes a label as an IRI local name: characters that would collide with
/// the syntax (`_ % < > " #` and control characters) are percent-escaped,
/// then spaces become underscores.
fn label_to_local(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        match ch {
            '_' | '%' | '<' | '>' | '"' | '#' => {
                out.push_str(&format!("%{:02X}", ch as u32));
            }
            c if c.is_control() => out.push_str(&format!("%{:02X}", c as u32 & 0xff)),
            ' ' => out.push('_'),
            c => out.push(c),
        }
    }
    out
}

fn escape_literal(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out
}

/// Parses one term starting at `chars` and returns it with the rest.
fn parse_term(s: &str, line: usize) -> Result<(Term, &str), ParseError> {
    let s = s.trim_start();
    let err = |message: &str| ParseError {
        line,
        message: message.to_owned(),
    };
    if let Some(rest) = s.strip_prefix('<') {
        let end = rest
            .find('>')
            .ok_or_else(|| err("unterminated IRI (missing `>`)"))?;
        Ok((Term::Iri(rest[..end].to_owned()), &rest[end + 1..]))
    } else if let Some(rest) = s.strip_prefix('"') {
        let mut value = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, ch)) = chars.next() {
            match ch {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, 'r')) => value.push('\r'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err(err("dangling escape in literal")),
                },
                '"' => return Ok((Term::Literal(value), &rest[i + 1..])),
                _ => value.push(ch),
            }
        }
        Err(err("unterminated literal (missing closing quote)"))
    } else {
        Err(err("expected `<iri>` or `\"literal\"`"))
    }
}

/// Parses one non-blank, non-comment line into `builder`.
///
/// All grammar checks run *before* the first builder mutation, so a line
/// either contributes its whole triple or contributes nothing — the
/// invariant that lets [`parse_lenient_into`] skip bad lines without
/// leaving half a triple behind.
fn parse_line(builder: &mut KbBuilder, trimmed: &str, line: usize) -> Result<(), ParseError> {
    let (subject, rest) = parse_term(trimmed, line)?;
    let (pred, rest) = parse_term(rest, line)?;
    let (object, rest) = parse_term(rest, line)?;
    let tail = rest.trim();
    if tail != "." {
        return Err(ParseError {
            line,
            message: format!("expected trailing `.`, found `{tail}`"),
        });
    }
    let Term::Iri(subj_iri) = subject else {
        return Err(ParseError {
            line,
            message: "subject must be an IRI".into(),
        });
    };
    let Term::Iri(pred_iri) = pred else {
        return Err(ParseError {
            line,
            message: "predicate must be an IRI".into(),
        });
    };

    match pred_iri.as_str() {
        RDF_TYPE => {
            let Term::Iri(obj_iri) = object else {
                return Err(ParseError {
                    line,
                    message: "rdf:type object must be a class IRI".into(),
                });
            };
            let Some(class_local) = obj_iri.strip_prefix(CLASS_PREFIX) else {
                return Err(ParseError {
                    line,
                    message: format!("rdf:type object must have `{CLASS_PREFIX}` prefix"),
                });
            };
            let c = builder.class(&local_to_label(class_local));
            let i = builder.instance(&local_to_label(&subj_iri));
            builder.set_type(i, c);
        }
        RDFS_SUBCLASS => {
            let Term::Iri(obj_iri) = object else {
                return Err(ParseError {
                    line,
                    message: "subClassOf object must be a class IRI".into(),
                });
            };
            let (Some(sub_local), Some(sup_local)) = (
                subj_iri.strip_prefix(CLASS_PREFIX),
                obj_iri.strip_prefix(CLASS_PREFIX),
            ) else {
                return Err(ParseError {
                    line,
                    message: format!("subClassOf requires `{CLASS_PREFIX}` on both sides"),
                });
            };
            let sub = builder.class(&local_to_label(sub_local));
            let sup = builder.class(&local_to_label(sup_local));
            builder.subclass(sub, sup);
        }
        _ => {
            let s = builder.instance(&local_to_label(&subj_iri));
            let p = builder.pred(&local_to_label(&pred_iri));
            match object {
                Term::Iri(obj_iri) => {
                    let o = builder.instance(&local_to_label(&obj_iri));
                    builder.edge(s, p, o);
                }
                Term::Literal(value) => {
                    let l = builder.literal(&value);
                    builder.edge(s, p, l);
                }
            }
        }
    }
    Ok(())
}

/// Lines carrying content: `(1-based line number, trimmed text)` with a
/// leading BOM, blanks, and comments skipped. `str::lines` already treats
/// `\r\n` as a line break and `trim` removes the leftover `\r`, so CRLF
/// input parses identically to LF input.
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    crate::quarantine::strip_bom(text)
        .lines()
        .enumerate()
        .map(|(lineno, raw)| (lineno + 1, raw.trim()))
        .filter(|(_, trimmed)| !trimmed.is_empty() && !trimmed.starts_with('#'))
}

/// Parses triple text into a [`KbBuilder`].
///
/// # Errors
/// Returns the first malformed line.
pub fn parse_into(builder: &mut KbBuilder, text: &str) -> Result<(), ParseError> {
    for (line, trimmed) in content_lines(text) {
        parse_line(builder, trimmed, line)?;
    }
    Ok(())
}

/// Parses triple text into a [`KbBuilder`] leniently: malformed lines are
/// quarantined (skipped, with a [`Diagnostic`] recorded) instead of
/// aborting the load. Well-formed lines load exactly as under
/// [`parse_into`]; each skipped line carries the same message the strict
/// parser would have raised.
pub fn parse_lenient_into(
    builder: &mut KbBuilder,
    text: &str,
    opts: &LenientOptions,
) -> Quarantine {
    let mut quarantine = Quarantine::new();
    for (line, trimmed) in content_lines(text) {
        if let Err(e) = parse_line(builder, trimmed, line) {
            quarantine.record(
                Diagnostic {
                    line: e.line,
                    message: e.message,
                },
                opts,
            );
        }
    }
    quarantine
}

/// Parses triple text into a finalized [`KnowledgeBase`].
///
/// # Errors
/// Fails on malformed lines or a cyclic taxonomy.
pub fn parse(text: &str) -> Result<KnowledgeBase, LoadError> {
    let mut builder = KbBuilder::new();
    parse_into(&mut builder, text)?;
    Ok(builder.finalize()?)
}

/// Parses triple text leniently into a finalized [`KnowledgeBase`],
/// returning the KB together with the [`Quarantine`] of skipped lines.
///
/// # Errors
/// Only finalization failures (e.g. a cyclic taxonomy) abort the load —
/// those are structural, not line-local, so there is no record to skip.
pub fn parse_lenient(
    text: &str,
    opts: &LenientOptions,
) -> Result<(KnowledgeBase, Quarantine), LoadError> {
    let mut builder = KbBuilder::new();
    let quarantine = parse_lenient_into(&mut builder, text, opts);
    Ok((builder.finalize()?, quarantine))
}

/// Parses raw triple-text bytes (an upload body, a pipe) leniently into a
/// finalized [`KnowledgeBase`] — the byte-level twin of [`parse_lenient`],
/// for callers that never had a path or a `&str` to begin with.
///
/// # Errors
/// Invalid UTF-8 is wrapped as [`LoadError::Io`] (`InvalidData`);
/// finalization failures as in [`parse_lenient`].
pub fn parse_lenient_bytes(
    bytes: &[u8],
    opts: &LenientOptions,
) -> Result<(KnowledgeBase, Quarantine), LoadError> {
    let text = std::str::from_utf8(bytes).map_err(|e| {
        LoadError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("input is not UTF-8: {e}"),
        ))
    })?;
    parse_lenient(text, opts)
}

/// Loads a KB from a triple-text file.
///
/// # Errors
/// I/O errors are wrapped in [`LoadError::Io`]; parse and taxonomy failures
/// as in [`parse`].
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<KnowledgeBase, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    parse(&text)
}

/// Loads a KB from a triple-text file leniently (see [`parse_lenient`]).
///
/// # Errors
/// I/O and finalization failures only; malformed lines are quarantined.
pub fn load_file_lenient(
    path: impl AsRef<std::path::Path>,
    opts: &LenientOptions,
) -> Result<(KnowledgeBase, Quarantine), LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    parse_lenient(&text, opts)
}

/// Writes a KB to a triple-text file (see [`serialize`]).
///
/// # Errors
/// Propagates I/O failures.
pub fn save_file(kb: &KnowledgeBase, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, serialize(kb))
}

/// Serializes a KB back to triple text. Deterministic: type assignments,
/// taxonomy edges, then data triples, each block sorted.
pub fn serialize(kb: &KnowledgeBase) -> String {
    let mut lines: Vec<String> = Vec::new();

    for i in kb.instances() {
        let label = label_to_local(kb.instance_label(i));
        for &c in kb.instance_classes(i) {
            lines.push(format!(
                "<{label}> <{RDF_TYPE}> <{CLASS_PREFIX}{}> .",
                label_to_local(kb.class_name(c))
            ));
        }
    }
    for c in kb.classes() {
        for &sup in kb.taxonomy().parents(c) {
            lines.push(format!(
                "<{CLASS_PREFIX}{}> <{RDFS_SUBCLASS}> <{CLASS_PREFIX}{}> .",
                label_to_local(kb.class_name(c)),
                label_to_local(kb.class_name(sup))
            ));
        }
    }
    let mut data: Vec<String> = kb
        .triples()
        .map(|(s, p, o)| {
            let subj = label_to_local(kb.instance_label(s));
            let pred = label_to_local(kb.pred_name(p));
            match o {
                Node::Instance(i) => {
                    format!(
                        "<{subj}> <{pred}> <{}> .",
                        label_to_local(kb.instance_label(i))
                    )
                }
                Node::Literal(l) => {
                    format!(
                        "<{subj}> <{pred}> \"{}\" .",
                        escape_literal(kb.literal_value(l))
                    )
                }
            }
        })
        .collect();
    lines.sort();
    data.sort();
    lines.extend(data);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_kb;

    #[test]
    fn parse_small_kb() {
        let text = r#"
            # the Hershko excerpt, abridged
            <Avram_Hershko> <rdf:type> <class:Nobel_laureates_in_Chemistry> .
            <class:Nobel_laureates_in_Chemistry> <rdfs:subClassOf> <class:person> .
            <Avram_Hershko> <worksAt> <Israel_Institute_of_Technology> .
            <Avram_Hershko> <bornOnDate> "1937-12-31" .
        "#;
        let kb = parse(text).unwrap();
        assert_eq!(kb.num_instances(), 2);
        assert_eq!(kb.num_classes(), 2);
        let person = kb.class_named("person").unwrap();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        assert!(kb.has_type(hershko, person));
        let born_on = kb.pred_named("bornOnDate").unwrap();
        assert_eq!(kb.node_value(kb.objects(hershko, born_on)[0]), "1937-12-31");
    }

    #[test]
    fn roundtrip_figure1() {
        let kb = figure1_kb();
        let text = serialize(&kb);
        let kb2 = parse(&text).unwrap();
        assert_eq!(kb.num_instances(), kb2.num_instances());
        assert_eq!(kb.num_classes(), kb2.num_classes());
        assert_eq!(kb.num_preds(), kb2.num_preds());
        assert_eq!(kb.num_edges(), kb2.num_edges());
        // Serialization is canonical: a second roundtrip is byte-identical.
        assert_eq!(text, serialize(&kb2));
    }

    #[test]
    fn literal_escapes_roundtrip() {
        let mut b = KbBuilder::new();
        let p = b.pred("quote");
        let i = b.instance("speaker");
        let l = b.literal("she said \"hi\\there\"\nnewline");
        b.edge(i, p, l);
        let kb = b.finalize().unwrap();
        let kb2 = parse(&serialize(&kb)).unwrap();
        assert_eq!(kb2.num_literals(), 1);
        let i2 = kb2.instances_labeled("speaker")[0];
        let p2 = kb2.pred_named("quote").unwrap();
        assert_eq!(
            kb2.node_value(kb2.objects(i2, p2)[0]),
            "she said \"hi\\there\"\nnewline"
        );
    }

    #[test]
    fn reports_line_numbers() {
        let text = "<a> <r> <b> .\n<a> <r> oops .";
        let err = parse(text).unwrap_err();
        match err {
            LoadError::Parse(p) => assert_eq!(p.line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse("<a> <r> <b>").unwrap_err();
        assert!(matches!(err, LoadError::Parse(_)));
    }

    #[test]
    fn rejects_literal_subject() {
        let err = parse("\"a\" <r> <b> .").unwrap_err();
        assert!(matches!(err, LoadError::Parse(_)));
    }

    #[test]
    fn hostile_labels_roundtrip() {
        let mut b = KbBuilder::new();
        let c = b.class("weird class_name % with <brackets>");
        let p = b.pred("rel with space_and_underscore");
        let a = b.instance("label_with_underscores and spaces");
        let o = b.instance("100% \"quoted\" # comment-ish");
        b.set_type(a, c);
        b.set_type(o, c);
        b.edge(a, p, o);
        let kb = b.finalize().unwrap();
        let text = serialize(&kb);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_instances(), 2);
        assert_eq!(
            back.instances_labeled("label_with_underscores and spaces")
                .len(),
            1
        );
        assert_eq!(
            back.instances_labeled("100% \"quoted\" # comment-ish")
                .len(),
            1
        );
        let p2 = back.pred_named("rel with space_and_underscore").unwrap();
        let a2 = back.instances_labeled("label_with_underscores and spaces")[0];
        assert_eq!(back.objects(a2, p2).len(), 1);
        assert_eq!(text, serialize(&back), "canonical");
    }

    #[test]
    fn carriage_return_literal_roundtrips() {
        let mut b = KbBuilder::new();
        let p = b.pred("note");
        let i = b.instance("x");
        let l = b.literal("line1\r\nline2");
        b.edge(i, p, l);
        let kb = b.finalize().unwrap();
        let back = parse(&serialize(&kb)).unwrap();
        let i2 = back.instances_labeled("x")[0];
        let p2 = back.pred_named("note").unwrap();
        assert_eq!(back.node_value(back.objects(i2, p2)[0]), "line1\r\nline2");
    }

    #[test]
    fn file_roundtrip() {
        let kb = figure1_kb();
        let path = std::env::temp_dir().join("dr_kb_roundtrip_test.nt");
        save_file(&kb, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(kb.num_edges(), back.num_edges());
        assert_eq!(kb.num_instances(), back.num_instances());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_file("/nonexistent/definitely/missing.nt").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]
        /// Arbitrary printable labels and literal values survive the text
        /// roundtrip.
        #[test]
        fn arbitrary_kb_roundtrips(
            labels in proptest::collection::vec("\\PC{1,16}", 2..6),
            literal in "\\PC{0,16}",
        ) {
            let mut b = KbBuilder::new();
            let class = b.class("thing");
            let p = b.pred("linksTo");
            let note = b.pred("note");
            let ids: Vec<_> = labels
                .iter()
                .map(|l| {
                    let i = b.instance(l);
                    b.set_type(i, class);
                    i
                })
                .collect();
            for w in ids.windows(2) {
                b.edge(w[0], p, w[1]);
            }
            let lit = b.literal(&literal);
            b.edge(ids[0], note, lit);
            let kb = b.finalize().unwrap();

            let text = serialize(&kb);
            let back = parse(&text).unwrap();
            proptest::prop_assert_eq!(kb.num_instances(), back.num_instances());
            proptest::prop_assert_eq!(kb.num_edges(), back.num_edges());
            for l in &labels {
                proptest::prop_assert!(
                    !back.instances_labeled(l).is_empty(),
                    "label {:?} lost in roundtrip", l
                );
            }
            let i0 = back.instances_labeled(&labels[0])[0];
            let note2 = back.pred_named("note").unwrap();
            proptest::prop_assert_eq!(
                back.node_value(back.objects(i0, note2)[0]),
                literal.as_str()
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let kb = parse("\n# nothing\n\n<a> <r> <b> .\n").unwrap();
        assert_eq!(kb.num_edges(), 1);
    }

    /// Interleaved garbage: the lenient parse loads every good line, skips
    /// every bad one with its line number and the strict parser's message —
    /// and the strict parser still rejects the same input at the first bad
    /// line.
    #[test]
    fn lenient_parse_quarantines_interleaved_garbage() {
        let text = "\
<a> <r> <b> .
<a> <r> oops .
# comment survives
<c> <rdf:type> <class:thing> .
\"lit\" <r> <b> .
<c> <r> \"unterminated .
<d> <r> <e>
<a> <worksAt> <e> .
";
        let opts = LenientOptions::default();
        let (kb, quarantine) = parse_lenient(text, &opts).unwrap();

        // Good lines all loaded (1, 4, 8 → 2 data edges + 1 typed instance).
        assert_eq!(kb.num_edges(), 2);
        let thing = kb.class_named("thing").unwrap();
        assert_eq!(kb.instances_of(thing).len(), 1);

        // Bad lines all quarantined, with the strict messages.
        assert_eq!(quarantine.quarantined(), 4);
        let lines: Vec<usize> = quarantine.diagnostics().iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 5, 6, 7]);
        let messages: Vec<&str> = quarantine
            .diagnostics()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(messages[0], "expected `<iri>` or `\"literal\"`");
        assert_eq!(messages[1], "subject must be an IRI");
        assert_eq!(messages[2], "unterminated literal (missing closing quote)");
        assert_eq!(messages[3], "expected trailing `.`, found ``");

        // The strict parser rejects the same input at the first bad line.
        match parse(text).unwrap_err() {
            LoadError::Parse(p) => {
                assert_eq!(p.line, 2);
                assert_eq!(p.message, messages[0]);
            }
            other => panic!("strict parse must fail: {other}"),
        }
    }

    /// Lenient and strict agree exactly on clean input.
    #[test]
    fn lenient_parse_is_strict_on_clean_input() {
        let text = serialize(&figure1_kb());
        let strict = parse(&text).unwrap();
        let (lenient, quarantine) = parse_lenient(&text, &LenientOptions::default()).unwrap();
        assert!(quarantine.is_empty());
        assert_eq!(serialize(&strict), serialize(&lenient));
    }

    /// The diagnostic cap bounds memory but not the count.
    #[test]
    fn lenient_parse_enforces_diagnostic_cap() {
        let mut text = String::new();
        for _ in 0..10 {
            text.push_str("garbage\n");
        }
        text.push_str("<a> <r> <b> .\n");
        let opts = LenientOptions { max_diagnostics: 3 };
        let (kb, quarantine) = parse_lenient(&text, &opts).unwrap();
        assert_eq!(kb.num_edges(), 1);
        assert_eq!(quarantine.quarantined(), 10);
        assert_eq!(quarantine.diagnostics().len(), 3);
        assert_eq!(quarantine.dropped(), 7);
    }

    /// Structural failures (a cyclic taxonomy) still abort the lenient
    /// load: they are not line-local, so there is nothing to skip.
    #[test]
    fn lenient_parse_still_rejects_cyclic_taxonomy() {
        let text = "\
<class:a> <rdfs:subClassOf> <class:b> .
<class:b> <rdfs:subClassOf> <class:a> .
";
        let err = parse_lenient(text, &LenientOptions::default()).unwrap_err();
        assert!(matches!(err, LoadError::Kb(_)), "{err}");
    }

    #[test]
    fn lenient_file_roundtrip() {
        let path = std::env::temp_dir().join("dr_kb_lenient_test.nt");
        std::fs::write(&path, "<a> <r> <b> .\nbroken\n").unwrap();
        let (kb, quarantine) = load_file_lenient(&path, &LenientOptions::default()).unwrap();
        assert_eq!(kb.num_edges(), 1);
        assert_eq!(quarantine.quarantined(), 1);
        assert_eq!(quarantine.diagnostics()[0].line, 2);
        std::fs::remove_file(&path).ok();
    }
}
