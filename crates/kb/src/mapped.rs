//! [`MappedKb`]: the out-of-core knowledge base backend.
//!
//! Opens a `.drkb` image (see [`crate::image`]) via [`MmapFile`] and
//! answers the same query surface as the in-memory
//! [`KnowledgeBase`](crate::graph::KnowledgeBase) by binary-searching the
//! image's sorted runs in place. Nothing proportional to the KB is ever
//! allocated at open — only the class taxonomy (tiny next to the triples)
//! is materialized, so `subsumes`/`descendants` behave identically across
//! backends and callers can hold a real [`Taxonomy`] reference.
//!
//! All validation happens in [`ImageLayout::parse`] at open time; the
//! query methods below index into the mapping without further checks,
//! which is sound because every offset, id, and sort invariant they rely
//! on was proven there. Corrupt files fail `open` with a typed
//! [`KbImageError`] — they never reach a query.

use std::path::{Path, PathBuf};

use crate::graph;
use crate::ids::{ClassId, InstanceId, LiteralId, Node, PredId};
use crate::image::{decode_node, encode_node, section, u32_at, u64_at, ImageLayout, KbImageError};
use crate::mmapfile::MmapFile;
use crate::taxonomy::Taxonomy;

/// A knowledge base served from a memory-mapped `.drkb` image.
///
/// Queries return owned vectors where the in-memory KB returns slices
/// (the image stores encoded u64 nodes, not `Node` structs); the
/// [`KbRef`](crate::view::KbRef) dispatch layer papers over the
/// difference with `Cow`.
#[derive(Debug)]
pub struct MappedKb {
    data: MmapFile,
    layout: ImageLayout,
    taxonomy: Taxonomy,
    generation: u64,
    path: PathBuf,
}

impl MappedKb {
    /// Opens and fully validates an image. Every corruption mode — short
    /// file, flipped bit, foreign magic, future version, inconsistent
    /// structure — comes back as a [`KbImageError`].
    pub fn open(path: &Path) -> Result<Self, KbImageError> {
        let data = MmapFile::open(path)?;
        let layout = ImageLayout::parse(&data)?;

        // Materialize the taxonomy by replaying the packed parent edges in
        // order — the same calls the original builder made, so `parents`,
        // `descendants`, and `depth` come out identical to the oracle.
        let mut taxonomy = Taxonomy::new();
        let sec = layout.section(&data, section::TAX_PARENTS);
        let n = layout.num_classes;
        for c in 0..n {
            taxonomy.ensure(ClassId::from_index(c));
        }
        for c in 0..n {
            let start = u32_at(sec, c * 4) as usize;
            let end = u32_at(sec, (c + 1) * 4) as usize;
            for j in start..end {
                let p = u32_at(sec, (n + 1 + j) * 4) as usize;
                taxonomy.add_subclass(ClassId::from_index(c), ClassId::from_index(p));
            }
        }
        if taxonomy.finalize().is_err() {
            return Err(KbImageError::Malformed("taxonomy has a cycle"));
        }

        Ok(MappedKb {
            layout,
            taxonomy,
            generation: graph::alloc_generation(),
            path: path.to_path_buf(),
            data,
        })
    }

    /// Opens an image and additionally demands it packs the KB with the
    /// given `content_hash`, the image equivalent of the `.drsnap` key
    /// check. Fails with [`KbImageError::KeyMismatch`] otherwise.
    pub fn open_expecting(path: &Path, content_hash: u64) -> Result<Self, KbImageError> {
        let kb = Self::open(path)?;
        if kb.content_hash() != content_hash {
            return Err(KbImageError::KeyMismatch {
                found: kb.content_hash(),
                expected: content_hash,
            });
        }
        Ok(kb)
    }

    /// The image path this KB was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Process-unique generation, drawn from the same counter as in-memory
    /// KBs so cache-registry keys never collide across backends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The packed KB's deterministic content hash (read from the header).
    pub fn content_hash(&self) -> u64 {
        self.layout.content_hash
    }

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.layout.num_instances
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.layout.num_classes
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.layout.num_preds
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.layout.num_literals
    }

    /// Number of distinct triples.
    pub fn num_edges(&self) -> usize {
        self.layout.num_edges as usize
    }

    /// The class taxonomy (materialized and finalized at open).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    // ---- string reads ------------------------------------------------

    fn table_str(&self, table: usize, i: usize) -> &str {
        let sec = self.layout.section(&self.data, table);
        let heap = self.layout.section(&self.data, section::STRINGS);
        let start = u64_at(sec, i * 8) as usize;
        let end = u64_at(sec, (i + 1) * 8) as usize;
        // Validated as UTF-8 at open.
        std::str::from_utf8(&heap[start..end]).expect("validated at open")
    }

    /// The interned name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        self.table_str(section::CLASS_STR, c.index())
    }

    /// The interned name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        self.table_str(section::PRED_STR, p.index())
    }

    /// The label of an instance.
    pub fn instance_label(&self, i: InstanceId) -> &str {
        self.table_str(section::INST_STR, i.index())
    }

    /// The value of a literal.
    pub fn literal_value(&self, l: LiteralId) -> &str {
        self.table_str(section::LIT_STR, l.index())
    }

    /// The textual value behind either node kind.
    pub fn node_value(&self, n: Node) -> &str {
        match n {
            Node::Instance(i) => self.instance_label(i),
            Node::Literal(l) => self.literal_value(l),
        }
    }

    // ---- sorted-run lookups ------------------------------------------

    /// First index in `0..n` where `pred` is false (`pred` monotone
    /// true→false) — `partition_point` over image records.
    fn partition(&self, n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn named_id(&self, lookup: usize, strs: usize, n: usize, want: &str) -> Option<u32> {
        let sec = self.layout.section(&self.data, lookup);
        let at = |i: usize| u32_at(sec, i * 4);
        let lo = self.partition(n, |i| self.table_str(strs, at(i) as usize) < want);
        (lo < n && self.table_str(strs, at(lo) as usize) == want).then(|| at(lo))
    }

    /// The class with this exact name, if interned.
    pub fn class_named(&self, name: &str) -> Option<ClassId> {
        self.named_id(
            section::CLASS_BY_NAME,
            section::CLASS_STR,
            self.num_classes(),
            name,
        )
        .map(|id| ClassId::from_index(id as usize))
    }

    /// The predicate with this exact name, if interned.
    pub fn pred_named(&self, name: &str) -> Option<PredId> {
        self.named_id(
            section::PRED_BY_NAME,
            section::PRED_STR,
            self.num_preds(),
            name,
        )
        .map(|id| PredId::from_index(id as usize))
    }

    /// The literal with this exact value, if interned.
    pub fn literal_with_value(&self, value: &str) -> Option<LiteralId> {
        self.named_id(
            section::LIT_BY_VALUE,
            section::LIT_STR,
            self.num_literals(),
            value,
        )
        .map(|id| LiteralId::from_index(id as usize))
    }

    /// All instances labeled exactly `label`, ascending by id (homonyms
    /// are real: two cities named "Springfield" are two instances).
    pub fn instances_labeled(&self, label: &str) -> Vec<InstanceId> {
        let n = self.num_instances();
        let sec = self.layout.section(&self.data, section::INST_BY_LABEL);
        let at = |i: usize| u32_at(sec, i * 4);
        let label_at = |i: usize| self.table_str(section::INST_STR, at(i) as usize);
        let lo = self.partition(n, |i| label_at(i) < label);
        let hi = self.partition(n, |i| label_at(i) <= label);
        (lo..hi)
            .map(|i| InstanceId::from_index(at(i) as usize))
            .collect()
    }

    // ---- CSR reads ---------------------------------------------------

    fn csr_row(&self, idx: usize, n: usize, i: usize) -> impl Iterator<Item = u32> + '_ {
        let sec = self.layout.section(&self.data, idx);
        let start = u32_at(sec, i * 4) as usize;
        let end = u32_at(sec, (i + 1) * 4) as usize;
        (start..end).map(move |j| u32_at(sec, (n + 1 + j) * 4))
    }

    /// The classes this instance was directly declared with, in
    /// declaration order.
    pub fn instance_classes(&self, i: InstanceId) -> Vec<ClassId> {
        self.csr_row(section::INST_CLASSES, self.num_instances(), i.index())
            .map(|c| ClassId::from_index(c as usize))
            .collect()
    }

    /// Whether `i` is an instance of `c`, honoring the taxonomy.
    pub fn has_type(&self, i: InstanceId, c: ClassId) -> bool {
        self.csr_row(section::INST_CLASSES, self.num_instances(), i.index())
            .any(|d| self.taxonomy.subsumes(c, ClassId::from_index(d as usize)))
    }

    /// All instances of `c`, including instances of its subclasses,
    /// ascending by id.
    pub fn instances_of(&self, c: ClassId) -> Vec<InstanceId> {
        self.csr_row(section::CLOSED_INST, self.num_classes(), c.index())
            .map(|i| InstanceId::from_index(i as usize))
            .collect()
    }

    /// Instances directly declared with class `c`, ascending by id.
    pub fn direct_instances_of(&self, c: ClassId) -> Vec<InstanceId> {
        self.csr_row(section::DIRECT_INST, self.num_classes(), c.index())
            .map(|i| InstanceId::from_index(i as usize))
            .collect()
    }

    /// The predicates on outgoing edges of `s`, ascending.
    pub fn preds_of(&self, s: InstanceId) -> Vec<PredId> {
        self.csr_row(section::PREDS_OF, self.num_instances(), s.index())
            .map(|p| PredId::from_index(p as usize))
            .collect()
    }

    // ---- triple runs -------------------------------------------------

    /// The SPO run index for `(s, p)`, if any triples exist.
    fn spo_run(&self, s: InstanceId, p: PredId) -> Option<usize> {
        let keys = self.layout.section(&self.data, section::SPO_KEYS);
        let want = (s.index() as u64) << 32 | p.index() as u64;
        let key_at = |r: usize| (u32_at(keys, r * 8) as u64) << 32 | u32_at(keys, r * 8 + 4) as u64;
        let lo = self.partition(self.layout.num_spo, |r| key_at(r) < want);
        (lo < self.layout.num_spo && key_at(lo) == want).then_some(lo)
    }

    fn spo_run_bounds(&self, r: usize) -> (usize, usize) {
        let offs = self.layout.section(&self.data, section::SPO_OFFS);
        (
            u32_at(offs, r * 4) as usize,
            u32_at(offs, (r + 1) * 4) as usize,
        )
    }

    /// All objects of `(s, p)` triples, in `Node` order.
    pub fn objects(&self, s: InstanceId, p: PredId) -> Vec<Node> {
        let Some(r) = self.spo_run(s, p) else {
            return Vec::new();
        };
        let (start, end) = self.spo_run_bounds(r);
        let nodes = self.layout.section(&self.data, section::SPO_NODES);
        (start..end)
            .map(|j| decode_node(u64_at(nodes, j * 8)).expect("validated at open"))
            .collect()
    }

    /// Whether the triple `(s, p, o)` is in the KB.
    pub fn has_edge(&self, s: InstanceId, p: PredId, o: Node) -> bool {
        let Some(r) = self.spo_run(s, p) else {
            return false;
        };
        let (start, end) = self.spo_run_bounds(r);
        let nodes = self.layout.section(&self.data, section::SPO_NODES);
        let want = encode_node(o);
        let at = |j: usize| u64_at(nodes, (start + j) * 8);
        let lo = self.partition(end - start, |j| at(j) < want);
        lo < end - start && at(lo) == want
    }

    /// All subjects with a `(s, p, o)` triple, ascending by id.
    pub fn subjects(&self, o: Node, p: PredId) -> Vec<InstanceId> {
        let keys = self.layout.section(&self.data, section::OSP_KEYS);
        let want = (encode_node(o), p.index() as u32);
        let key_at = |r: usize| (u64_at(keys, r * 12), u32_at(keys, r * 12 + 8));
        let lo = self.partition(self.layout.num_osp, |r| key_at(r) < want);
        if lo >= self.layout.num_osp || key_at(lo) != want {
            return Vec::new();
        }
        let offs = self.layout.section(&self.data, section::OSP_OFFS);
        let subs = self.layout.section(&self.data, section::OSP_SUBJS);
        let start = u32_at(offs, lo * 4) as usize;
        let end = u32_at(offs, (lo + 1) * 4) as usize;
        (start..end)
            .map(|j| InstanceId::from_index(u32_at(subs, j * 4) as usize))
            .collect()
    }

    /// All class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.num_classes()).map(ClassId::from_index)
    }

    /// All predicate ids.
    pub fn preds(&self) -> impl Iterator<Item = PredId> {
        (0..self.num_preds()).map(PredId::from_index)
    }

    /// All instance ids.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> {
        (0..self.num_instances()).map(InstanceId::from_index)
    }

    /// Every triple, iterated in SPO-run order.
    pub fn triples(&self) -> impl Iterator<Item = (InstanceId, PredId, Node)> + '_ {
        let keys = self.layout.section(&self.data, section::SPO_KEYS);
        let nodes = self.layout.section(&self.data, section::SPO_NODES);
        (0..self.layout.num_spo).flat_map(move |r| {
            let s = InstanceId::from_index(u32_at(keys, r * 8) as usize);
            let p = PredId::from_index(u32_at(keys, r * 8 + 4) as usize);
            let (start, end) = self.spo_run_bounds(r);
            (start..end).map(move |j| {
                (
                    s,
                    p,
                    decode_node(u64_at(nodes, j * 8)).expect("validated at open"),
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{names, nobel_mini_kb};
    use crate::image::write_image;

    fn scratch_image(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dr-mapped-{}-{tag}.drkb", std::process::id()))
    }

    #[test]
    fn roundtrip_matches_oracle_on_nobel_mini() {
        let kb = nobel_mini_kb();
        let path = scratch_image("roundtrip");
        write_image(&path, &kb).unwrap();
        let mapped = MappedKb::open(&path).unwrap();

        assert_eq!(mapped.content_hash(), kb.content_hash());
        assert_ne!(mapped.generation(), kb.generation());
        assert_eq!(mapped.num_instances(), kb.num_instances());
        assert_eq!(mapped.num_edges(), kb.num_edges());

        let laureate = kb.class_named(names::LAUREATE).unwrap();
        assert_eq!(mapped.class_named(names::LAUREATE), Some(laureate));
        assert_eq!(mapped.class_named("NoSuchClass"), None);
        assert_eq!(mapped.instances_of(laureate), kb.instances_of(laureate));

        for i in kb.instances() {
            assert_eq!(mapped.instance_label(i), kb.instance_label(i));
            assert_eq!(mapped.preds_of(i), kb.preds_of(i));
            for &p in kb.preds_of(i) {
                assert_eq!(mapped.objects(i, p), kb.objects(i, p));
            }
        }
        let mut mem: Vec<_> = kb.triples().collect();
        let mut img: Vec<_> = mapped.triples().collect();
        mem.sort_unstable();
        img.sort_unstable();
        assert_eq!(mem, img);

        for (s, p, o) in kb.triples() {
            assert!(mapped.has_edge(s, p, o));
            assert!(mapped.subjects(o, p).contains(&s));
        }

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_expecting_rejects_wrong_key() {
        let kb = nobel_mini_kb();
        let path = scratch_image("key");
        write_image(&path, &kb).unwrap();
        assert!(MappedKb::open_expecting(&path, kb.content_hash()).is_ok());
        let err = MappedKb::open_expecting(&path, kb.content_hash() ^ 1).unwrap_err();
        assert!(matches!(err, KbImageError::KeyMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_image_is_absence() {
        let err = MappedKb::open(Path::new("/nonexistent/dr.drkb")).unwrap_err();
        assert!(err.is_absence(), "{err}");
    }

    #[test]
    fn packing_is_deterministic() {
        let a = crate::image::pack(&nobel_mini_kb());
        let b = crate::image::pack(&nobel_mini_kb());
        assert_eq!(a, b, "same triples must pack byte-identically");
    }
}
