//! Shared KB fixtures mirroring the paper's running example.
//!
//! [`figure1_kb`] reproduces the Yago excerpt of Figure 1 (Avram Hershko);
//! [`nobel_mini_kb`] extends it with the other three tuples of Table I
//! (Marie Curie, Roald Hoffmann, Melvin Calvin), which downstream crates use
//! to exercise every rule of Figure 4 — including Melvin Calvin's
//! two-institution multi-version repair.

use crate::graph::{KbBuilder, KnowledgeBase};

/// The class/predicate names used by the running-example fixtures.
pub mod names {
    /// Class of Chemistry Nobel laureates.
    pub const LAUREATE: &str = "Nobel laureates in Chemistry";
    /// Class of organizations (institutes, universities).
    pub const ORGANIZATION: &str = "organization";
    /// Class of chemistry awards.
    pub const CHEM_AWARDS: &str = "Chemistry awards";
    /// Class of American awards.
    pub const US_AWARDS: &str = "American awards";
    /// Class of countries.
    pub const COUNTRY: &str = "country";
    /// Class of cities.
    pub const CITY: &str = "city";
    /// person worksAt organization.
    pub const WORKS_AT: &str = "worksAt";
    /// organization/city locatedIn city/country.
    pub const LOCATED_IN: &str = "locatedIn";
    /// person isCitizenOf country.
    pub const CITIZEN_OF: &str = "isCitizenOf";
    /// person wasBornIn city.
    pub const BORN_IN: &str = "wasBornIn";
    /// person wonPrize award.
    pub const WON_PRIZE: &str = "wonPrize";
    /// person graduatedFrom organization.
    pub const GRADUATED_FROM: &str = "graduatedFrom";
    /// person bornOnDate literal.
    pub const BORN_ON_DATE: &str = "bornOnDate";
    /// person bornAt country (the negative semantics of ϕ3).
    pub const BORN_AT: &str = "bornAt";
}

/// Builds the Figure-1 excerpt: the Avram Hershko neighbourhood only.
pub fn figure1_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    add_hershko(&mut b);
    b.finalize().expect("fixture taxonomy is acyclic")
}

/// Builds a KB covering all four tuples of Table I, sufficient to apply all
/// four detective rules of Figure 4 to every row.
pub fn nobel_mini_kb() -> KnowledgeBase {
    nobel_mini_builder()
        .finalize()
        .expect("fixture taxonomy is acyclic")
}

/// The builder behind [`nobel_mini_kb`], still open for edits. Delta-vs-
/// rebuild oracles replay the original construction plus a
/// [`crate::delta::KbDelta`]'s ops through this builder and compare the
/// result against [`KnowledgeBase::apply_delta`] applied in place.
pub fn nobel_mini_builder() -> KbBuilder {
    let mut b = KbBuilder::new();
    add_hershko(&mut b);
    add_curie(&mut b);
    add_hoffmann(&mut b);
    add_calvin(&mut b);
    b
}

fn add_hershko(b: &mut KbBuilder) {
    use names::*;
    let laureate = b.class(LAUREATE);
    let organization = b.class(ORGANIZATION);
    let chem_awards = b.class(CHEM_AWARDS);
    let us_awards = b.class(US_AWARDS);
    let country = b.class(COUNTRY);
    let city = b.class(CITY);

    let works_at = b.pred(WORKS_AT);
    let located_in = b.pred(LOCATED_IN);
    let citizen_of = b.pred(CITIZEN_OF);
    let born_in = b.pred(BORN_IN);
    let won_prize = b.pred(WON_PRIZE);
    let born_on = b.pred(BORN_ON_DATE);

    let hershko = b.instance("Avram Hershko");
    let technion = b.instance("Israel Institute of Technology");
    let nobel_chem = b.instance("Nobel Prize in Chemistry");
    let lasker = b.instance("Albert Lasker Award for Medicine");
    let karcag = b.instance("Karcag");
    let israel = b.instance("Israel");
    let haifa = b.instance("Haifa");
    let dob = b.literal("1937-12-31");

    b.set_type(hershko, laureate);
    b.set_type(technion, organization);
    b.set_type(nobel_chem, chem_awards);
    b.set_type(lasker, us_awards);
    b.set_type(karcag, city);
    b.set_type(israel, country);
    b.set_type(haifa, city);

    b.edge(hershko, works_at, technion);
    b.edge(hershko, citizen_of, israel);
    b.edge(hershko, born_in, karcag);
    b.edge(hershko, won_prize, nobel_chem);
    b.edge(hershko, won_prize, lasker);
    b.edge(hershko, born_on, dob);
    b.edge(technion, located_in, haifa);
    b.edge(haifa, located_in, israel);

    let born_at = b.pred(BORN_AT);
    let hungary = b.instance("Hungary");
    b.set_type(hungary, country);
    b.edge(hershko, born_at, hungary);
    b.edge(karcag, located_in, hungary);
}

fn add_curie(b: &mut KbBuilder) {
    use names::*;
    let laureate = b.class(LAUREATE);
    let organization = b.class(ORGANIZATION);
    let country = b.class(COUNTRY);
    let city = b.class(CITY);
    let chem_awards = b.class(CHEM_AWARDS);

    let works_at = b.pred(WORKS_AT);
    let located_in = b.pred(LOCATED_IN);
    let citizen_of = b.pred(CITIZEN_OF);
    let born_in = b.pred(BORN_IN);
    let won_prize = b.pred(WON_PRIZE);
    let born_on = b.pred(BORN_ON_DATE);

    let curie = b.instance("Marie Curie");
    let pasteur = b.instance("Pasteur Institute");
    let paris = b.instance("Paris");
    let warsaw = b.instance("Warsaw");
    let france = b.instance("France");
    let nobel_chem = b.instance("Nobel Prize in Chemistry");
    let dob = b.literal("1867-11-07");

    b.set_type(curie, laureate);
    b.set_type(pasteur, organization);
    b.set_type(paris, city);
    b.set_type(warsaw, city);
    b.set_type(france, country);
    b.set_type(nobel_chem, chem_awards);

    b.edge(curie, works_at, pasteur);
    b.edge(curie, citizen_of, france);
    b.edge(curie, born_in, warsaw);
    b.edge(curie, won_prize, nobel_chem);
    b.edge(curie, born_on, dob);
    b.edge(pasteur, located_in, paris);
    b.edge(paris, located_in, france);

    let born_at = b.pred(BORN_AT);
    let poland = b.instance("Poland");
    b.set_type(poland, country);
    b.edge(curie, born_at, poland);
    b.edge(warsaw, located_in, poland);
}

fn add_hoffmann(b: &mut KbBuilder) {
    use names::*;
    let laureate = b.class(LAUREATE);
    let organization = b.class(ORGANIZATION);
    let country = b.class(COUNTRY);
    let city = b.class(CITY);
    let chem_awards = b.class(CHEM_AWARDS);
    let us_awards = b.class(US_AWARDS);

    let works_at = b.pred(WORKS_AT);
    let located_in = b.pred(LOCATED_IN);
    let citizen_of = b.pred(CITIZEN_OF);
    let born_in = b.pred(BORN_IN);
    let won_prize = b.pred(WON_PRIZE);
    let born_on = b.pred(BORN_ON_DATE);

    let hoffmann = b.instance("Roald Hoffmann");
    let cornell = b.instance("Cornell University");
    let ithaca = b.instance("Ithaca");
    let zloczow = b.instance("Zloczow");
    let usa = b.instance("United States");
    let nobel_chem = b.instance("Nobel Prize in Chemistry");
    let medal = b.instance("National Medal of Science");
    let dob = b.literal("1937-07-18");

    b.set_type(hoffmann, laureate);
    b.set_type(cornell, organization);
    b.set_type(ithaca, city);
    b.set_type(zloczow, city);
    b.set_type(usa, country);
    b.set_type(nobel_chem, chem_awards);
    b.set_type(medal, us_awards);

    b.edge(hoffmann, works_at, cornell);
    b.edge(hoffmann, citizen_of, usa);
    b.edge(hoffmann, born_in, zloczow);
    b.edge(hoffmann, won_prize, nobel_chem);
    b.edge(hoffmann, won_prize, medal);
    b.edge(hoffmann, born_on, dob);
    b.edge(cornell, located_in, ithaca);
    b.edge(ithaca, located_in, usa);

    let born_at = b.pred(BORN_AT);
    let ukraine = b.instance("Ukraine");
    b.set_type(ukraine, country);
    b.edge(hoffmann, born_at, ukraine);
    b.edge(zloczow, located_in, ukraine);
}

fn add_calvin(b: &mut KbBuilder) {
    use names::*;
    let laureate = b.class(LAUREATE);
    let organization = b.class(ORGANIZATION);
    let country = b.class(COUNTRY);
    let city = b.class(CITY);
    let chem_awards = b.class(CHEM_AWARDS);

    let works_at = b.pred(WORKS_AT);
    let located_in = b.pred(LOCATED_IN);
    let citizen_of = b.pred(CITIZEN_OF);
    let born_in = b.pred(BORN_IN);
    let won_prize = b.pred(WON_PRIZE);
    let born_on = b.pred(BORN_ON_DATE);
    let graduated = b.pred(GRADUATED_FROM);

    let calvin = b.instance("Melvin Calvin");
    let berkeley_u = b.instance("UC Berkeley");
    let manchester_u = b.instance("University of Manchester");
    let minnesota_u = b.instance("University of Minnesota");
    let berkeley = b.instance("Berkeley");
    let manchester = b.instance("Manchester");
    let st_paul = b.instance("St. Paul");
    let usa = b.instance("United States");
    let nobel_chem = b.instance("Nobel Prize in Chemistry");
    let dob = b.literal("1911-04-08");

    b.set_type(calvin, laureate);
    b.set_type(berkeley_u, organization);
    b.set_type(manchester_u, organization);
    b.set_type(minnesota_u, organization);
    b.set_type(berkeley, city);
    b.set_type(manchester, city);
    b.set_type(st_paul, city);
    b.set_type(usa, country);
    b.set_type(nobel_chem, chem_awards);

    // Calvin worked at two institutions (paper Example 10): the source of
    // multi-version repairs.
    b.edge(calvin, works_at, berkeley_u);
    b.edge(calvin, works_at, manchester_u);
    b.edge(calvin, graduated, minnesota_u);
    b.edge(calvin, citizen_of, usa);
    b.edge(calvin, born_in, st_paul);
    b.edge(calvin, won_prize, nobel_chem);
    b.edge(calvin, born_on, dob);
    b.edge(berkeley_u, located_in, berkeley);
    b.edge(manchester_u, located_in, manchester);
    b.edge(minnesota_u, located_in, st_paul);
    b.edge(berkeley, located_in, usa);
    b.edge(manchester, located_in, usa);
    b.edge(st_paul, located_in, usa);

    let born_at = b.pred(BORN_AT);
    b.edge(calvin, born_at, usa);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Node;

    #[test]
    fn mini_kb_has_all_four_laureates() {
        let kb = nobel_mini_kb();
        let laureate = kb.class_named(names::LAUREATE).unwrap();
        assert_eq!(kb.instances_of(laureate).len(), 4);
    }

    #[test]
    fn calvin_has_two_workplaces() {
        let kb = nobel_mini_kb();
        let calvin = kb.instances_labeled("Melvin Calvin")[0];
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        assert_eq!(kb.objects(calvin, works_at).len(), 2);
    }

    #[test]
    fn shared_entities_are_merged() {
        // "Nobel Prize in Chemistry" and "United States" appear in several
        // neighbourhoods and must intern to single instances.
        let kb = nobel_mini_kb();
        assert_eq!(kb.instances_labeled("Nobel Prize in Chemistry").len(), 1);
        assert_eq!(kb.instances_labeled("United States").len(), 1);
        let nobel = kb.instances_labeled("Nobel Prize in Chemistry")[0];
        let won = kb.pred_named(names::WON_PRIZE).unwrap();
        assert_eq!(kb.subjects(Node::Instance(nobel), won).len(), 4);
    }
}
