//! The class taxonomy: `subClassOf` edges and their transitive closure.
//!
//! Yago-style KBs have deep taxonomies (e.g. *Nobel laureates in Chemistry*
//! ⊑ *chemist* ⊑ *scientist* ⊑ *person*), while DBpedia-style KBs are flat.
//! Detective-rule nodes name a class and must match any instance typed with
//! that class **or any of its subclasses**, so subsumption queries are on the
//! hot path of instance matching and are precomputed here.

use crate::hash::FxHashSet;
use crate::ids::ClassId;

/// A directed acyclic `subClassOf` hierarchy over classes.
///
/// Built incrementally while loading a KB, then [`Taxonomy::finalize`]d into
/// reachability sets for O(1) amortized subsumption checks.
#[derive(Debug, Default, Clone)]
pub struct Taxonomy {
    /// `parents[c]` = direct superclasses of `c`.
    parents: Vec<Vec<ClassId>>,
    /// `children[c]` = direct subclasses of `c`.
    children: Vec<Vec<ClassId>>,
    /// `descendants[c]` = every class `d` with `d ⊑ c` (including `c`),
    /// populated by `finalize`.
    descendants: Vec<Vec<ClassId>>,
    finalized: bool,
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures internal vectors can index class `c`.
    pub(crate) fn ensure(&mut self, c: ClassId) {
        let need = c.index() + 1;
        if self.parents.len() < need {
            self.parents.resize_with(need, Vec::new);
            self.children.resize_with(need, Vec::new);
        }
    }

    /// Records `sub ⊑ sup` (a direct `subClassOf` edge).
    ///
    /// # Panics
    /// Panics if called after [`Taxonomy::finalize`].
    pub fn add_subclass(&mut self, sub: ClassId, sup: ClassId) {
        assert!(!self.finalized, "taxonomy already finalized");
        self.ensure(sub);
        self.ensure(sup);
        if !self.parents[sub.index()].contains(&sup) {
            self.parents[sub.index()].push(sup);
            self.children[sup.index()].push(sub);
        }
    }

    /// Removes the direct `subClassOf` edge `sub ⊑ sup`, if present.
    /// Transitive subsumption through other paths is unaffected.
    ///
    /// # Panics
    /// Panics if called after [`Taxonomy::finalize`].
    pub fn remove_subclass(&mut self, sub: ClassId, sup: ClassId) {
        assert!(!self.finalized, "taxonomy already finalized");
        if sub.index() >= self.parents.len() || sup.index() >= self.parents.len() {
            return;
        }
        self.parents[sub.index()].retain(|&p| p != sup);
        self.children[sup.index()].retain(|&c| c != sub);
    }

    /// Number of classes known to the taxonomy.
    pub fn num_classes(&self) -> usize {
        self.parents.len()
    }

    /// Direct superclasses of `c`.
    pub fn parents(&self, c: ClassId) -> &[ClassId] {
        self.parents
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Direct subclasses of `c`.
    pub fn children(&self, c: ClassId) -> &[ClassId] {
        self.children
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Computes descendant sets. Must be called once, after all
    /// `add_subclass` calls; cycles are rejected.
    ///
    /// # Errors
    /// Returns the offending class if the hierarchy contains a cycle.
    pub fn finalize(&mut self) -> Result<(), ClassId> {
        assert!(!self.finalized, "taxonomy already finalized");
        let n = self.parents.len();
        // Topological sort (Kahn) over child -> parent edges.
        let mut out_degree: Vec<usize> = (0..n).map(|c| self.parents[c].len()).collect();
        let mut stack: Vec<usize> = (0..n).filter(|&c| out_degree[c] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(c) = stack.pop() {
            order.push(c);
            for &ch in &self.children[c] {
                out_degree[ch.index()] -= 1;
                if out_degree[ch.index()] == 0 {
                    stack.push(ch.index());
                }
            }
        }
        if order.len() != n {
            let cyclic = (0..n)
                .find(|&c| out_degree[c] > 0)
                .expect("cycle implies positive out-degree");
            return Err(ClassId::from_index(cyclic));
        }
        // Accumulate descendants bottom-up: roots are processed first in
        // `order`, so iterate in reverse (leaves first).
        self.descendants = vec![Vec::new(); n];
        let mut seen: FxHashSet<ClassId> = FxHashSet::default();
        for &c in order.iter().rev() {
            seen.clear();
            let mut acc = vec![ClassId::from_index(c)];
            seen.insert(ClassId::from_index(c));
            for &ch in &self.children[c] {
                for &d in &self.descendants[ch.index()] {
                    if seen.insert(d) {
                        acc.push(d);
                    }
                }
            }
            acc.sort_unstable();
            self.descendants[c] = acc;
        }
        self.finalized = true;
        Ok(())
    }

    /// Every class `d` with `d ⊑ c`, including `c` itself. Sorted.
    ///
    /// # Panics
    /// Panics if the taxonomy has not been finalized.
    pub fn descendants(&self, c: ClassId) -> &[ClassId] {
        assert!(self.finalized, "taxonomy not finalized");
        self.descendants
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `sub ⊑ sup` holds (reflexive, transitive).
    pub fn subsumes(&self, sup: ClassId, sub: ClassId) -> bool {
        if sup == sub {
            return true;
        }
        if self.finalized {
            return self.descendants(sup).binary_search(&sub).is_ok();
        }
        // Fallback BFS for un-finalized taxonomies (used by validators).
        let mut stack = vec![sub];
        let mut seen: FxHashSet<ClassId> = FxHashSet::default();
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            for &p in self.parents(c) {
                if seen.insert(p) {
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Maximum depth of the hierarchy (a root-only taxonomy has depth 1).
    pub fn depth(&self) -> usize {
        let n = self.parents.len();
        if n == 0 {
            return 0;
        }
        let mut memo = vec![0usize; n];
        fn depth_of(c: usize, parents: &[Vec<ClassId>], memo: &mut [usize]) -> usize {
            if memo[c] != 0 {
                return memo[c];
            }
            let d = 1 + parents[c]
                .iter()
                .map(|p| depth_of(p.index(), parents, memo))
                .max()
                .unwrap_or(0);
            memo[c] = d;
            d
        }
        (0..n)
            .map(|c| depth_of(c, &self.parents, &mut memo))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> ClassId {
        ClassId::from_index(i)
    }

    fn chain() -> Taxonomy {
        // 0 = person, 1 = scientist, 2 = chemist, 3 = nobel-chemist
        let mut t = Taxonomy::new();
        t.add_subclass(c(1), c(0));
        t.add_subclass(c(2), c(1));
        t.add_subclass(c(3), c(2));
        t.finalize().unwrap();
        t
    }

    #[test]
    fn descendants_include_self_and_transitive() {
        let t = chain();
        assert_eq!(t.descendants(c(0)), &[c(0), c(1), c(2), c(3)]);
        assert_eq!(t.descendants(c(3)), &[c(3)]);
    }

    #[test]
    fn subsumes_is_reflexive_and_transitive() {
        let t = chain();
        assert!(t.subsumes(c(0), c(0)));
        assert!(t.subsumes(c(0), c(3)));
        assert!(t.subsumes(c(1), c(2)));
        assert!(!t.subsumes(c(3), c(0)));
        assert!(!t.subsumes(c(2), c(1)));
    }

    #[test]
    fn diamond_hierarchy() {
        // 3 ⊑ 1, 3 ⊑ 2, 1 ⊑ 0, 2 ⊑ 0
        let mut t = Taxonomy::new();
        t.add_subclass(c(1), c(0));
        t.add_subclass(c(2), c(0));
        t.add_subclass(c(3), c(1));
        t.add_subclass(c(3), c(2));
        t.finalize().unwrap();
        assert_eq!(t.descendants(c(0)), &[c(0), c(1), c(2), c(3)]);
        assert!(t.subsumes(c(0), c(3)));
        assert!(t.subsumes(c(1), c(3)));
        assert!(t.subsumes(c(2), c(3)));
    }

    #[test]
    fn cycle_is_rejected() {
        let mut t = Taxonomy::new();
        t.add_subclass(c(0), c(1));
        t.add_subclass(c(1), c(0));
        assert!(t.finalize().is_err());
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut t = Taxonomy::new();
        t.add_subclass(c(1), c(0));
        t.add_subclass(c(1), c(0));
        assert_eq!(t.parents(c(1)), &[c(0)]);
        assert_eq!(t.children(c(0)), &[c(1)]);
    }

    #[test]
    fn depth_of_chain_and_flat() {
        assert_eq!(chain().depth(), 4);
        let mut flat = Taxonomy::new();
        flat.add_subclass(c(1), c(0));
        flat.add_subclass(c(2), c(0));
        flat.finalize().unwrap();
        assert_eq!(flat.depth(), 2);
    }

    #[test]
    fn subsumes_before_finalize_uses_bfs() {
        let mut t = Taxonomy::new();
        t.add_subclass(c(1), c(0));
        t.add_subclass(c(2), c(1));
        assert!(t.subsumes(c(0), c(2)));
        assert!(!t.subsumes(c(2), c(0)));
    }
}
