//! `dr_kbpack` — packs a knowledge base into a `.drkb` mmap image.
//!
//! ```text
//! dr_kbpack [--strict] <input.nt> <out.drkb>
//! dr_kbpack --fixture <nobel-mini|figure1> <out.drkb>
//! ```
//!
//! The input is loaded with the lenient N-Triples parser by default —
//! malformed lines are quarantined and reported on stderr, exactly like
//! the other lenient loaders — and packed deterministically: the same
//! triples always produce a byte-identical image, keyed by the KB's
//! `content_hash`. `--strict` aborts on the first malformed line instead.
//! After writing, the image is re-opened through the mmap reader and
//! checked against the source KB's `content_hash`, so a reported success
//! means a bootable image.

use std::path::Path;
use std::process::ExitCode;

use dr_kb::ntriples;
use dr_kb::{KnowledgeBase, LenientOptions, MappedKb};

fn fail(message: &str) -> ExitCode {
    eprintln!("dr_kbpack: {message}");
    ExitCode::from(2)
}

fn usage() -> ExitCode {
    fail("usage: dr_kbpack [--strict] <input.nt> <out.drkb> | dr_kbpack --fixture <nobel-mini|figure1> <out.drkb>")
}

fn load(args: &[String]) -> Result<(KnowledgeBase, String), String> {
    match args {
        [fixture_flag, name, _out] if fixture_flag == "--fixture" => {
            let kb = match name.as_str() {
                "nobel-mini" => dr_kb::fixtures::nobel_mini_kb(),
                "figure1" => dr_kb::fixtures::figure1_kb(),
                other => return Err(format!("unknown fixture {other:?}")),
            };
            Ok((kb, format!("fixture {name}")))
        }
        [strict_flag, input, _out] if strict_flag == "--strict" => {
            let kb = ntriples::load_file(input).map_err(|e| format!("{input}: {e}"))?;
            Ok((kb, input.clone()))
        }
        [input, _out] => {
            let (kb, quarantine) = ntriples::load_file_lenient(input, &LenientOptions::default())
                .map_err(|e| format!("{input}: {e}"))?;
            if !quarantine.is_empty() {
                eprintln!("dr_kbpack: {input}: {quarantine}");
                for d in quarantine.diagnostics() {
                    eprintln!("dr_kbpack:   {d}");
                }
            }
            Ok((kb, input.clone()))
        }
        _ => Err("bad arguments".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args.len() > 3 {
        return usage();
    }
    let out = Path::new(args.last().map(String::as_str).unwrap_or_default()).to_path_buf();

    let (kb, source) = match load(&args) {
        Ok(loaded) => loaded,
        Err(e) => return fail(&e),
    };

    if let Err(e) = dr_kb::write_image(&out, &kb) {
        return fail(&format!("{}: {e}", out.display()));
    }
    // Prove the image boots: reopen through the mmap path and demand the
    // packed content hash.
    if let Err(e) = MappedKb::open_expecting(&out, kb.content_hash()) {
        return fail(&format!(
            "{}: written image failed to open: {e}",
            out.display()
        ));
    }
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "kbpack: {} -> {} ({} bytes, content_hash={:#018x}, {} instances, {} edges)",
        source,
        out.display(),
        bytes,
        kb.content_hash(),
        kb.num_instances(),
        kb.num_edges()
    );
    ExitCode::SUCCESS
}
