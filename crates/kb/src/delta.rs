//! KB deltas: incremental edits to a finalized [`KnowledgeBase`] and the
//! **footprint** of KB regions they touch.
//!
//! The paper assumes a frozen KB, but a live service curates its KB in
//! place (DESIGN.md §10). A [`KbDelta`] is an ordered batch of edits —
//! insert/retract triples, add/remove `rdf:type` edges, add/remove
//! `subClassOf` edges — that [`KnowledgeBase::apply_delta`] applies
//! in place, bumping the KB generation and returning a [`KbFootprint`]
//! describing exactly which classes, adjacency pairs, and literal state
//! changed. Cache layers record the footprint they *read* during matching
//! and invalidate only entries whose read footprint intersects a delta's
//! write footprint.
//!
//! Every delta op names entities **by label/value**, with the same
//! resolution semantics as [`KbBuilder`]: an instance label resolves to
//! the first instance carrying it, or creates a fresh one. This makes
//! "apply the delta in place" and "rebuild the KB from scratch with the
//! ops appended" produce byte-identical KBs — the property the
//! `kb_delta_differential` suite pins.
//!
//! [`KnowledgeBase`]: crate::KnowledgeBase
//! [`KnowledgeBase::apply_delta`]: crate::KnowledgeBase::apply_delta
//! [`KbBuilder`]: crate::KbBuilder

use crate::hash::FxHashSet;
use crate::ids::{ClassId, InstanceId, Node, PredId};
use std::fmt;

/// An edge target named by content: an instance label or a literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaNode {
    /// An instance, by label (resolved like [`crate::KbBuilder::instance`]).
    Instance(String),
    /// A literal, by value (interned if new).
    Literal(String),
}

/// One KB edit. All names resolve against the target KB at apply time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Adds the triple `(subject, pred, object)`; a duplicate is a no-op.
    InsertTriple {
        /// Subject instance label.
        subject: String,
        /// Predicate name.
        pred: String,
        /// Object node.
        object: DeltaNode,
    },
    /// Removes the triple `(subject, pred, object)` if present. The named
    /// entities are still interned (so retracting against a rebuilt KB
    /// assigns the same ids), but no edge change happens on a miss.
    RetractTriple {
        /// Subject instance label.
        subject: String,
        /// Predicate name.
        pred: String,
        /// Object node.
        object: DeltaNode,
    },
    /// Types `instance` with `class` (an `rdf:type` insert).
    AddType {
        /// Instance label.
        instance: String,
        /// Class name.
        class: String,
    },
    /// Removes the direct `rdf:type` edge `instance → class`, if present.
    RemoveType {
        /// Instance label.
        instance: String,
        /// Class name.
        class: String,
    },
    /// Declares `sub ⊑ sup` in the taxonomy.
    AddSubclass {
        /// Subclass name.
        sub: String,
        /// Superclass name.
        sup: String,
    },
    /// Removes the direct `sub ⊑ sup` taxonomy edge, if present.
    RemoveSubclass {
        /// Subclass name.
        sub: String,
        /// Superclass name.
        sup: String,
    },
}

/// An ordered batch of KB edits, applied atomically by
/// [`KnowledgeBase::apply_delta`](crate::KnowledgeBase::apply_delta):
/// either every op lands and the generation bumps, or (on a taxonomy
/// cycle) nothing changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KbDelta {
    ops: Vec<DeltaOp>,
}

impl KbDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: DeltaOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Appends an [`DeltaOp::InsertTriple`].
    pub fn insert(&mut self, subject: &str, pred: &str, object: DeltaNode) -> &mut Self {
        self.push(DeltaOp::InsertTriple {
            subject: subject.to_owned(),
            pred: pred.to_owned(),
            object,
        })
    }

    /// Appends a [`DeltaOp::RetractTriple`].
    pub fn retract(&mut self, subject: &str, pred: &str, object: DeltaNode) -> &mut Self {
        self.push(DeltaOp::RetractTriple {
            subject: subject.to_owned(),
            pred: pred.to_owned(),
            object,
        })
    }

    /// Appends an [`DeltaOp::AddType`].
    pub fn add_type(&mut self, instance: &str, class: &str) -> &mut Self {
        self.push(DeltaOp::AddType {
            instance: instance.to_owned(),
            class: class.to_owned(),
        })
    }

    /// Appends a [`DeltaOp::RemoveType`].
    pub fn remove_type(&mut self, instance: &str, class: &str) -> &mut Self {
        self.push(DeltaOp::RemoveType {
            instance: instance.to_owned(),
            class: class.to_owned(),
        })
    }

    /// Appends an [`DeltaOp::AddSubclass`].
    pub fn add_subclass(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.push(DeltaOp::AddSubclass {
            sub: sub.to_owned(),
            sup: sup.to_owned(),
        })
    }

    /// Appends a [`DeltaOp::RemoveSubclass`].
    pub fn remove_subclass(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.push(DeltaOp::RemoveSubclass {
            sub: sub.to_owned(),
            sup: sup.to_owned(),
        })
    }

    /// The ops, in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses the TSV wire format (one op per line, tab-separated because
    /// labels routinely contain spaces):
    ///
    /// ```text
    /// insert \t <subject> \t <pred> \t i:<label> | l:<value>
    /// retract\t <subject> \t <pred> \t i:<label> | l:<value>
    /// type+  \t <instance> \t <class>
    /// type-  \t <instance> \t <class>
    /// sub+   \t <sub> \t <sup>
    /// sub-   \t <sub> \t <sup>
    /// ```
    ///
    /// Blank lines and lines starting with `#` are skipped; a trailing
    /// `\r` is tolerated.
    ///
    /// # Errors
    /// Returns the 1-based line and a message for the first malformed line.
    pub fn parse_tsv(text: &str) -> Result<KbDelta, DeltaParseError> {
        let mut delta = KbDelta::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.strip_suffix('\r').unwrap_or(raw);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| DeltaParseError {
                line: idx + 1,
                message,
            };
            let fields: Vec<&str> = line.split('\t').collect();
            let expect = |n: usize| -> Result<(), DeltaParseError> {
                if fields.len() != n {
                    return Err(err(format!(
                        "op `{}` takes {} fields, got {}",
                        fields[0],
                        n - 1,
                        fields.len() - 1
                    )));
                }
                if fields[1..].iter().any(|f| f.is_empty()) {
                    return Err(err(format!("op `{}` has an empty field", fields[0])));
                }
                Ok(())
            };
            match fields[0] {
                "insert" | "retract" => {
                    expect(4)?;
                    let object = DeltaNode::parse(fields[3]).ok_or_else(|| {
                        err(format!(
                            "bad object `{}`: want i:<label> or l:<value>",
                            fields[3]
                        ))
                    })?;
                    let (subject, pred) = (fields[1].to_owned(), fields[2].to_owned());
                    delta.push(if fields[0] == "insert" {
                        DeltaOp::InsertTriple {
                            subject,
                            pred,
                            object,
                        }
                    } else {
                        DeltaOp::RetractTriple {
                            subject,
                            pred,
                            object,
                        }
                    });
                }
                "type+" | "type-" => {
                    expect(3)?;
                    let (instance, class) = (fields[1].to_owned(), fields[2].to_owned());
                    delta.push(if fields[0] == "type+" {
                        DeltaOp::AddType { instance, class }
                    } else {
                        DeltaOp::RemoveType { instance, class }
                    });
                }
                "sub+" | "sub-" => {
                    expect(3)?;
                    let (sub, sup) = (fields[1].to_owned(), fields[2].to_owned());
                    delta.push(if fields[0] == "sub+" {
                        DeltaOp::AddSubclass { sub, sup }
                    } else {
                        DeltaOp::RemoveSubclass { sub, sup }
                    });
                }
                other => return Err(err(format!("unknown op `{other}`"))),
            }
        }
        Ok(delta)
    }

    /// Renders the delta back to the TSV wire format parsed by
    /// [`KbDelta::parse_tsv`].
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                DeltaOp::InsertTriple {
                    subject,
                    pred,
                    object,
                } => {
                    out.push_str(&format!("insert\t{subject}\t{pred}\t{}\n", object.render()));
                }
                DeltaOp::RetractTriple {
                    subject,
                    pred,
                    object,
                } => {
                    out.push_str(&format!(
                        "retract\t{subject}\t{pred}\t{}\n",
                        object.render()
                    ));
                }
                DeltaOp::AddType { instance, class } => {
                    out.push_str(&format!("type+\t{instance}\t{class}\n"));
                }
                DeltaOp::RemoveType { instance, class } => {
                    out.push_str(&format!("type-\t{instance}\t{class}\n"));
                }
                DeltaOp::AddSubclass { sub, sup } => {
                    out.push_str(&format!("sub+\t{sub}\t{sup}\n"));
                }
                DeltaOp::RemoveSubclass { sub, sup } => {
                    out.push_str(&format!("sub-\t{sub}\t{sup}\n"));
                }
            }
        }
        out
    }
}

impl DeltaNode {
    fn parse(field: &str) -> Option<DeltaNode> {
        if let Some(label) = field.strip_prefix("i:") {
            Some(DeltaNode::Instance(label.to_owned()))
        } else {
            field
                .strip_prefix("l:")
                .map(|value| DeltaNode::Literal(value.to_owned()))
        }
    }

    fn render(&self) -> String {
        match self {
            DeltaNode::Instance(label) => format!("i:{label}"),
            DeltaNode::Literal(value) => format!("l:{value}"),
        }
    }
}

/// A malformed line in the TSV delta wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DeltaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DeltaParseError {}

/// The set of KB regions a delta **wrote** — or, symmetrically, the set of
/// regions a cache entry / repaired tuple **read** while matching.
///
/// Granularity (DESIGN.md §10):
/// * `classes` — classes whose *closed extent* (`instances_of`) or typing
///   answer may have changed. A type edit on class `c` lands here together
///   with every ancestor of `c`; readers record the class a rule node
///   names, so ancestor expansion on the write side makes the overlap
///   check a plain set intersection.
/// * `out_pairs` / `in_pairs` — forward/backward adjacency keys touched by
///   an edge insert or retract; readers record the `(subject, pred)` /
///   `(object, pred)` keys they probed.
/// * `literals` — set by a writer when a **new** literal value is interned
///   (a reader that looked a literal up by value and missed could now
///   hit); readers set it when they resolve literals by value.
/// * `all_classes` — a taxonomy edit moved subsumption itself; every
///   class-dependent reader intersects.
#[derive(Debug, Clone, Default)]
pub struct KbFootprint {
    /// Classes whose extent or typing answers changed / were read.
    pub classes: FxHashSet<ClassId>,
    /// Forward-adjacency keys `(subject, pred)` changed / probed.
    pub out_pairs: FxHashSet<(InstanceId, PredId)>,
    /// Backward-adjacency keys `(object, pred)` changed / probed.
    pub in_pairs: FxHashSet<(Node, PredId)>,
    /// A new literal value was interned / literals were resolved by value.
    pub literals: bool,
    /// The taxonomy itself changed; subsumes every class reader.
    pub all_classes: bool,
}

impl KbFootprint {
    /// Creates an empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the footprint touches nothing.
    pub fn is_empty(&self) -> bool {
        !self.all_classes
            && !self.literals
            && self.classes.is_empty()
            && self.out_pairs.is_empty()
            && self.in_pairs.is_empty()
    }

    /// Whether the footprint covers class `c`.
    pub fn touches_class(&self, c: ClassId) -> bool {
        self.all_classes || self.classes.contains(&c)
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &KbFootprint) {
        self.classes.extend(other.classes.iter().copied());
        self.out_pairs.extend(other.out_pairs.iter().copied());
        self.in_pairs.extend(other.in_pairs.iter().copied());
        self.literals |= other.literals;
        self.all_classes |= other.all_classes;
    }

    /// Whether two footprints overlap — the staleness test between a
    /// reader's recorded footprint and a delta's write footprint.
    /// Symmetric.
    pub fn intersects(&self, other: &KbFootprint) -> bool {
        if self.literals && other.literals {
            return true;
        }
        let classes_overlap = if self.all_classes {
            other.all_classes || !other.classes.is_empty()
        } else if other.all_classes {
            !self.classes.is_empty()
        } else {
            intersect_sets(&self.classes, &other.classes)
        };
        classes_overlap
            || intersect_sets(&self.out_pairs, &other.out_pairs)
            || intersect_sets(&self.in_pairs, &other.in_pairs)
    }
}

fn intersect_sets<T: Eq + std::hash::Hash>(a: &FxHashSet<T>, b: &FxHashSet<T>) -> bool {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|x| big.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_roundtrip() {
        let mut d = KbDelta::new();
        d.insert(
            "Avram Hershko",
            "worksAt",
            DeltaNode::Instance("Technion".into()),
        )
        .retract(
            "Avram Hershko",
            "bornOnDate",
            DeltaNode::Literal("1937-12-31".into()),
        )
        .add_type("Haifa", "city")
        .remove_type("Haifa", "village")
        .add_subclass("city", "place")
        .remove_subclass("city", "region");
        let tsv = d.to_tsv();
        let back = KbDelta::parse_tsv(&tsv).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn parse_skips_blanks_comments_and_crlf() {
        let d = KbDelta::parse_tsv("# comment\n\ninsert\ta\tp\ti:b\r\n").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.ops()[0],
            DeltaOp::InsertTriple {
                subject: "a".into(),
                pred: "p".into(),
                object: DeltaNode::Instance("b".into()),
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, want_line) in [
            ("frobnicate\ta\tb", 1),
            ("insert\ta\tp", 1),
            ("insert\ta\tp\tb", 1),
            ("insert\ta\tp\tx:b", 1),
            ("type+\ta", 1),
            ("# fine\nsub+\ta\tb\tc", 2),
            ("insert\t\tp\ti:b", 1),
        ] {
            let err = KbDelta::parse_tsv(text).unwrap_err();
            assert_eq!(err.line, want_line, "for {text:?}: {err}");
        }
    }

    #[test]
    fn footprint_intersection_rules() {
        let mut read = KbFootprint::new();
        read.classes.insert(ClassId::from_index(3));
        read.out_pairs
            .insert((InstanceId::from_index(1), PredId::from_index(0)));

        let mut write = KbFootprint::new();
        assert!(!read.intersects(&write));
        write.classes.insert(ClassId::from_index(2));
        assert!(!read.intersects(&write));
        write.classes.insert(ClassId::from_index(3));
        assert!(read.intersects(&write));

        let mut tax = KbFootprint::new();
        tax.all_classes = true;
        assert!(read.intersects(&tax));
        assert!(tax.intersects(&read));
        let pure_edges = KbFootprint {
            out_pairs: [(InstanceId::from_index(9), PredId::from_index(9))]
                .into_iter()
                .collect(),
            ..KbFootprint::new()
        };
        assert!(
            !pure_edges.intersects(&tax),
            "taxonomy edits leave adjacency readers alone"
        );

        let mut lit_read = KbFootprint::new();
        lit_read.literals = true;
        let mut lit_write = KbFootprint::new();
        assert!(!lit_read.intersects(&lit_write));
        lit_write.literals = true;
        assert!(lit_read.intersects(&lit_write));
    }

    #[test]
    fn footprint_merge_and_empty() {
        let mut a = KbFootprint::new();
        assert!(a.is_empty());
        let mut b = KbFootprint::new();
        b.classes.insert(ClassId::from_index(1));
        b.literals = true;
        a.merge(&b);
        assert!(!a.is_empty());
        assert!(a.touches_class(ClassId::from_index(1)));
        assert!(a.literals);
    }
}
