//! Backend dispatch: one lightweight handle over either KB backend.
//!
//! [`KbRef`] is a `Copy` two-variant enum over the in-memory
//! [`KnowledgeBase`] and the memory-mapped [`MappedKb`]. Consumers
//! (`MatchContext`, the repairers, `dr-serve`) hold a `KbRef` and stay
//! backend-agnostic; `From` impls keep every existing `&kb` call site
//! compiling through `impl Into<KbRef<'_>>` parameters. Methods that
//! return borrowed slices from the in-memory KB return [`Cow`] here — the
//! mapped backend has to decode its compact image records into owned
//! vectors, the in-memory backend keeps lending slices at zero cost.
//!
//! [`KbQuery`] is the same surface as a trait, for code that wants to be
//! generic over a backend it owns (the differential test harness) rather
//! than dispatch through an enum it copies.

use std::borrow::Cow;

use crate::graph::KnowledgeBase;
use crate::ids::{ClassId, InstanceId, LiteralId, Node, PredId};
use crate::mapped::MappedKb;
use crate::taxonomy::Taxonomy;

/// A copyable reference to either KB backend. All query methods take
/// `self` by value and return data borrowed for the underlying KB's
/// lifetime `'a`, so a `KbRef` behaves exactly like the `&'a
/// KnowledgeBase` it replaced.
#[derive(Debug, Clone, Copy)]
pub enum KbRef<'a> {
    /// The in-memory, builder-finalized KB.
    Mem(&'a KnowledgeBase),
    /// A KB served from a memory-mapped `.drkb` image.
    Mapped(&'a MappedKb),
}

impl<'a> From<&'a KnowledgeBase> for KbRef<'a> {
    fn from(kb: &'a KnowledgeBase) -> Self {
        KbRef::Mem(kb)
    }
}

impl<'a> From<&'a MappedKb> for KbRef<'a> {
    fn from(kb: &'a MappedKb) -> Self {
        KbRef::Mapped(kb)
    }
}

impl<'a> KbRef<'a> {
    /// Which backend serves this KB: `"mem"` or `"mmap"` (the label used
    /// by the `kb_load_seconds` metric).
    pub fn backend(self) -> &'static str {
        match self {
            KbRef::Mem(_) => "mem",
            KbRef::Mapped(_) => "mmap",
        }
    }

    /// Process-unique generation (cache-registry key component).
    pub fn generation(self) -> u64 {
        match self {
            KbRef::Mem(kb) => kb.generation(),
            KbRef::Mapped(kb) => kb.generation(),
        }
    }

    /// Deterministic content hash of the KB's triples.
    pub fn content_hash(self) -> u64 {
        match self {
            KbRef::Mem(kb) => kb.content_hash(),
            KbRef::Mapped(kb) => kb.content_hash(),
        }
    }

    /// Number of instances.
    pub fn num_instances(self) -> usize {
        match self {
            KbRef::Mem(kb) => kb.num_instances(),
            KbRef::Mapped(kb) => kb.num_instances(),
        }
    }

    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            KbRef::Mem(kb) => kb.num_classes(),
            KbRef::Mapped(kb) => kb.num_classes(),
        }
    }

    /// Number of predicates.
    pub fn num_preds(self) -> usize {
        match self {
            KbRef::Mem(kb) => kb.num_preds(),
            KbRef::Mapped(kb) => kb.num_preds(),
        }
    }

    /// Number of literals.
    pub fn num_literals(self) -> usize {
        match self {
            KbRef::Mem(kb) => kb.num_literals(),
            KbRef::Mapped(kb) => kb.num_literals(),
        }
    }

    /// Number of distinct triples.
    pub fn num_edges(self) -> usize {
        match self {
            KbRef::Mem(kb) => kb.num_edges(),
            KbRef::Mapped(kb) => kb.num_edges(),
        }
    }

    /// The class taxonomy (both backends hold a real, finalized one).
    pub fn taxonomy(self) -> &'a Taxonomy {
        match self {
            KbRef::Mem(kb) => kb.taxonomy(),
            KbRef::Mapped(kb) => kb.taxonomy(),
        }
    }

    /// The class with this exact name, if interned.
    pub fn class_named(self, name: &str) -> Option<ClassId> {
        match self {
            KbRef::Mem(kb) => kb.class_named(name),
            KbRef::Mapped(kb) => kb.class_named(name),
        }
    }

    /// The predicate with this exact name, if interned.
    pub fn pred_named(self, name: &str) -> Option<PredId> {
        match self {
            KbRef::Mem(kb) => kb.pred_named(name),
            KbRef::Mapped(kb) => kb.pred_named(name),
        }
    }

    /// The interned name of a class.
    pub fn class_name(self, c: ClassId) -> &'a str {
        match self {
            KbRef::Mem(kb) => kb.class_name(c),
            KbRef::Mapped(kb) => kb.class_name(c),
        }
    }

    /// The interned name of a predicate.
    pub fn pred_name(self, p: PredId) -> &'a str {
        match self {
            KbRef::Mem(kb) => kb.pred_name(p),
            KbRef::Mapped(kb) => kb.pred_name(p),
        }
    }

    /// The label of an instance.
    pub fn instance_label(self, i: InstanceId) -> &'a str {
        match self {
            KbRef::Mem(kb) => kb.instance_label(i),
            KbRef::Mapped(kb) => kb.instance_label(i),
        }
    }

    /// The value of a literal.
    pub fn literal_value(self, l: LiteralId) -> &'a str {
        match self {
            KbRef::Mem(kb) => kb.literal_value(l),
            KbRef::Mapped(kb) => kb.literal_value(l),
        }
    }

    /// The textual value behind either node kind.
    pub fn node_value(self, n: Node) -> &'a str {
        match self {
            KbRef::Mem(kb) => kb.node_value(n),
            KbRef::Mapped(kb) => kb.node_value(n),
        }
    }

    /// The literal with this exact value, if interned.
    pub fn literal_with_value(self, value: &str) -> Option<LiteralId> {
        match self {
            KbRef::Mem(kb) => kb.literal_with_value(value),
            KbRef::Mapped(kb) => kb.literal_with_value(value),
        }
    }

    /// All instances labeled exactly `label`, ascending by id.
    pub fn instances_labeled(self, label: &str) -> Cow<'a, [InstanceId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.instances_labeled(label)),
            KbRef::Mapped(kb) => Cow::Owned(kb.instances_labeled(label)),
        }
    }

    /// The classes this instance was directly declared with.
    pub fn instance_classes(self, i: InstanceId) -> Cow<'a, [ClassId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.instance_classes(i)),
            KbRef::Mapped(kb) => Cow::Owned(kb.instance_classes(i)),
        }
    }

    /// Whether `i` is an instance of `c`, honoring the taxonomy.
    pub fn has_type(self, i: InstanceId, c: ClassId) -> bool {
        match self {
            KbRef::Mem(kb) => kb.has_type(i, c),
            KbRef::Mapped(kb) => kb.has_type(i, c),
        }
    }

    /// All instances of `c` including subclass instances, ascending.
    pub fn instances_of(self, c: ClassId) -> Cow<'a, [InstanceId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.instances_of(c)),
            KbRef::Mapped(kb) => Cow::Owned(kb.instances_of(c)),
        }
    }

    /// Instances directly declared with class `c`, ascending.
    pub fn direct_instances_of(self, c: ClassId) -> Cow<'a, [InstanceId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.direct_instances_of(c)),
            KbRef::Mapped(kb) => Cow::Owned(kb.direct_instances_of(c)),
        }
    }

    /// All objects of `(s, p)` triples, in `Node` order.
    pub fn objects(self, s: InstanceId, p: PredId) -> Cow<'a, [Node]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.objects(s, p)),
            KbRef::Mapped(kb) => Cow::Owned(kb.objects(s, p)),
        }
    }

    /// All subjects with an `(s, p, o)` triple, ascending by id.
    pub fn subjects(self, o: Node, p: PredId) -> Cow<'a, [InstanceId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.subjects(o, p)),
            KbRef::Mapped(kb) => Cow::Owned(kb.subjects(o, p)),
        }
    }

    /// Whether the triple `(s, p, o)` is in the KB.
    pub fn has_edge(self, s: InstanceId, p: PredId, o: Node) -> bool {
        match self {
            KbRef::Mem(kb) => kb.has_edge(s, p, o),
            KbRef::Mapped(kb) => kb.has_edge(s, p, o),
        }
    }

    /// The predicates on outgoing edges of `s`, ascending.
    pub fn preds_of(self, s: InstanceId) -> Cow<'a, [PredId]> {
        match self {
            KbRef::Mem(kb) => Cow::Borrowed(kb.preds_of(s)),
            KbRef::Mapped(kb) => Cow::Owned(kb.preds_of(s)),
        }
    }

    /// All class ids.
    pub fn classes(self) -> impl Iterator<Item = ClassId> {
        (0..self.num_classes()).map(ClassId::from_index)
    }

    /// All predicate ids.
    pub fn preds(self) -> impl Iterator<Item = PredId> {
        (0..self.num_preds()).map(PredId::from_index)
    }

    /// All instance ids.
    pub fn instances(self) -> impl Iterator<Item = InstanceId> {
        (0..self.num_instances()).map(InstanceId::from_index)
    }

    /// Every triple. Order is backend-specific (unspecified, as for the
    /// in-memory KB); compare as sets.
    pub fn triples(self) -> Vec<(InstanceId, PredId, Node)> {
        match self {
            KbRef::Mem(kb) => kb.triples().collect(),
            KbRef::Mapped(kb) => kb.triples().collect(),
        }
    }
}

/// The shared KB query surface as a trait: implemented by both backends
/// (and by [`KbRef`] itself), with every method provided via
/// [`KbQuery::kb_ref`]. Code generic over `K: KbQuery` — like the
/// differential-oracle harness — runs the exact same dispatch path on
/// either backend.
pub trait KbQuery {
    /// A [`KbRef`] view of this KB.
    fn kb_ref(&self) -> KbRef<'_>;

    /// See [`KbRef::generation`].
    fn generation(&self) -> u64 {
        self.kb_ref().generation()
    }

    /// See [`KbRef::content_hash`].
    fn content_hash(&self) -> u64 {
        self.kb_ref().content_hash()
    }

    /// See [`KbRef::num_instances`].
    fn num_instances(&self) -> usize {
        self.kb_ref().num_instances()
    }

    /// See [`KbRef::num_classes`].
    fn num_classes(&self) -> usize {
        self.kb_ref().num_classes()
    }

    /// See [`KbRef::num_preds`].
    fn num_preds(&self) -> usize {
        self.kb_ref().num_preds()
    }

    /// See [`KbRef::num_literals`].
    fn num_literals(&self) -> usize {
        self.kb_ref().num_literals()
    }

    /// See [`KbRef::num_edges`].
    fn num_edges(&self) -> usize {
        self.kb_ref().num_edges()
    }

    /// See [`KbRef::taxonomy`].
    fn taxonomy(&self) -> &Taxonomy;

    /// See [`KbRef::class_named`].
    fn class_named(&self, name: &str) -> Option<ClassId> {
        self.kb_ref().class_named(name)
    }

    /// See [`KbRef::pred_named`].
    fn pred_named(&self, name: &str) -> Option<PredId> {
        self.kb_ref().pred_named(name)
    }

    /// See [`KbRef::class_name`].
    fn class_name(&self, c: ClassId) -> &str {
        self.kb_ref().class_name(c)
    }

    /// See [`KbRef::pred_name`].
    fn pred_name(&self, p: PredId) -> &str {
        self.kb_ref().pred_name(p)
    }

    /// See [`KbRef::instance_label`].
    fn instance_label(&self, i: InstanceId) -> &str {
        self.kb_ref().instance_label(i)
    }

    /// See [`KbRef::literal_value`].
    fn literal_value(&self, l: LiteralId) -> &str {
        self.kb_ref().literal_value(l)
    }

    /// See [`KbRef::node_value`].
    fn node_value(&self, n: Node) -> &str {
        self.kb_ref().node_value(n)
    }

    /// See [`KbRef::literal_with_value`].
    fn literal_with_value(&self, value: &str) -> Option<LiteralId> {
        self.kb_ref().literal_with_value(value)
    }

    /// See [`KbRef::instances_labeled`].
    fn instances_labeled(&self, label: &str) -> Cow<'_, [InstanceId]> {
        self.kb_ref().instances_labeled(label)
    }

    /// See [`KbRef::instance_classes`].
    fn instance_classes(&self, i: InstanceId) -> Cow<'_, [ClassId]> {
        self.kb_ref().instance_classes(i)
    }

    /// See [`KbRef::has_type`].
    fn has_type(&self, i: InstanceId, c: ClassId) -> bool {
        self.kb_ref().has_type(i, c)
    }

    /// See [`KbRef::instances_of`].
    fn instances_of(&self, c: ClassId) -> Cow<'_, [InstanceId]> {
        self.kb_ref().instances_of(c)
    }

    /// See [`KbRef::direct_instances_of`].
    fn direct_instances_of(&self, c: ClassId) -> Cow<'_, [InstanceId]> {
        self.kb_ref().direct_instances_of(c)
    }

    /// See [`KbRef::objects`].
    fn objects(&self, s: InstanceId, p: PredId) -> Cow<'_, [Node]> {
        self.kb_ref().objects(s, p)
    }

    /// See [`KbRef::subjects`].
    fn subjects(&self, o: Node, p: PredId) -> Cow<'_, [InstanceId]> {
        self.kb_ref().subjects(o, p)
    }

    /// See [`KbRef::has_edge`].
    fn has_edge(&self, s: InstanceId, p: PredId, o: Node) -> bool {
        self.kb_ref().has_edge(s, p, o)
    }

    /// See [`KbRef::preds_of`].
    fn preds_of(&self, s: InstanceId) -> Cow<'_, [PredId]> {
        self.kb_ref().preds_of(s)
    }

    /// See [`KbRef::triples`].
    fn all_triples(&self) -> Vec<(InstanceId, PredId, Node)> {
        self.kb_ref().triples()
    }
}

impl KbQuery for KnowledgeBase {
    fn kb_ref(&self) -> KbRef<'_> {
        KbRef::Mem(self)
    }

    fn taxonomy(&self) -> &Taxonomy {
        KnowledgeBase::taxonomy(self)
    }
}

impl KbQuery for MappedKb {
    fn kb_ref(&self) -> KbRef<'_> {
        KbRef::Mapped(self)
    }

    fn taxonomy(&self) -> &Taxonomy {
        MappedKb::taxonomy(self)
    }
}

impl KbQuery for KbRef<'_> {
    fn kb_ref(&self) -> KbRef<'_> {
        *self
    }

    fn taxonomy(&self) -> &Taxonomy {
        KbRef::taxonomy(*self)
    }
}
