//! Deterministic content hash of a finalized [`KnowledgeBase`].
//!
//! [`KnowledgeBase::generation`] is deliberately process-local: it changes on
//! every rebuild, which makes it a safe cache key *within* one process but
//! useless for cross-process cache persistence. The content hash fills that
//! gap: two KBs built by replaying the **same construction sequence** (same
//! classes, predicates, instances, literals, taxonomy edges, and triples, in
//! the same interning order) hash to the same value — in any process, on any
//! run.
//!
//! The hash is intentionally **representation-dependent**, not merely
//! set-semantic: it folds names in id order, so it pins down the exact id
//! assignment of the KB. That is the property the snapshot layer needs —
//! persisted cache entries carry raw [`Node`] ids, and those ids are only
//! meaningful under the identical id assignment. A KB with the same triples
//! but a different interning order hashes differently and simply misses the
//! snapshot (a cold start, never a wrong answer).
//!
//! Built on the workspace [`FxHasher`](crate::hash::FxHasher); triples are
//! collected and sorted before hashing because [`KnowledgeBase::triples`]
//! iterates in hash-map order.

use crate::graph::KnowledgeBase;
use crate::hash::FxHasher;
use crate::ids::Node;
use std::hash::Hasher;

/// Domain/version tag folded into every content hash. Bump when the hash
/// recipe changes so stale snapshot files stop matching instead of being
/// misread.
const CONTENT_HASH_VERSION: u64 = 0xD12C_0001;

/// Sentinel separating hash sections so adjacent variable-length sections
/// cannot alias (e.g. moving a name from the class list to the pred list).
const SECTION: u64 = 0x5EC7_1040_F00D_CAFE;

fn put_str(h: &mut FxHasher, s: &str) {
    h.write_u64(s.len() as u64);
    h.write(s.as_bytes());
}

fn put_node(h: &mut FxHasher, n: Node) {
    match n {
        Node::Instance(i) => {
            h.write_u8(0);
            h.write_u32(i.index() as u32);
        }
        Node::Literal(l) => {
            h.write_u8(1);
            h.write_u32(l.index() as u32);
        }
    }
}

/// Computes the canonical content hash of `kb`.
///
/// Covers, in canonical order: class names (by id), predicate names (by id),
/// instance labels plus their direct class lists (by id), literal values (by
/// id), taxonomy parent lists (by class id), and all triples sorted by
/// `(subject, predicate, object)`.
///
/// Prefer the cached [`KnowledgeBase::content_hash`] accessor; this free
/// function recomputes from scratch (O(edges log edges)).
pub fn content_hash_of(kb: &KnowledgeBase) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(CONTENT_HASH_VERSION);

    h.write_u64(SECTION);
    h.write_u64(kb.num_classes() as u64);
    for c in kb.classes() {
        put_str(&mut h, kb.class_name(c));
    }

    h.write_u64(SECTION);
    h.write_u64(kb.num_preds() as u64);
    for p in kb.preds() {
        put_str(&mut h, kb.pred_name(p));
    }

    h.write_u64(SECTION);
    h.write_u64(kb.num_instances() as u64);
    for i in kb.instances() {
        put_str(&mut h, kb.instance_label(i));
        let mut classes: Vec<u32> = kb
            .instance_classes(i)
            .iter()
            .map(|c| c.index() as u32)
            .collect();
        classes.sort_unstable();
        h.write_u64(classes.len() as u64);
        for c in classes {
            h.write_u32(c);
        }
    }

    h.write_u64(SECTION);
    h.write_u64(kb.num_literals() as u64);
    for idx in 0..kb.num_literals() {
        put_str(
            &mut h,
            kb.literal_value(crate::ids::LiteralId::from_index(idx)),
        );
    }

    h.write_u64(SECTION);
    for c in kb.classes() {
        let mut parents: Vec<u32> = kb
            .taxonomy()
            .parents(c)
            .iter()
            .map(|p| p.index() as u32)
            .collect();
        parents.sort_unstable();
        h.write_u64(parents.len() as u64);
        for p in parents {
            h.write_u32(p);
        }
    }

    h.write_u64(SECTION);
    let mut triples: Vec<(u32, u32, Node)> = kb
        .triples()
        .map(|(s, p, o)| (s.index() as u32, p.index() as u32, o))
        .collect();
    triples.sort_unstable();
    h.write_u64(triples.len() as u64);
    for (s, p, o) in triples {
        h.write_u32(s);
        h.write_u32(p);
        put_node(&mut h, o);
    }

    h.finish()
}

#[cfg(test)]
mod tests {
    use crate::fixtures::figure1_kb;
    use crate::graph::KbBuilder;
    use crate::KnowledgeBase;

    fn small_kb(extra_edge: bool, extra_type: bool, extra_parent: bool) -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let city = b.class("city");
        let place = b.class("place");
        let located_in = b.pred("locatedIn");
        let haifa = b.instance("Haifa");
        let israel = b.instance("Israel");
        b.set_type(haifa, city);
        if extra_type {
            b.set_type(israel, place);
        }
        if extra_parent {
            b.subclass(city, place);
        }
        b.edge(haifa, located_in, israel);
        if extra_edge {
            b.edge(israel, located_in, haifa);
        }
        b.finalize().unwrap()
    }

    #[test]
    fn identical_construction_sequences_hash_equal() {
        let a = figure1_kb();
        let b = figure1_kb();
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn cached_accessor_matches_free_function() {
        let kb = figure1_kb();
        assert_eq!(kb.content_hash(), super::content_hash_of(&kb));
        // Second call hits the cached value and must agree.
        assert_eq!(kb.content_hash(), kb.content_hash());
    }

    #[test]
    fn any_content_change_changes_the_hash() {
        let base = small_kb(false, false, false).content_hash();
        assert_ne!(base, small_kb(true, false, false).content_hash(), "edge");
        assert_ne!(base, small_kb(false, true, false).content_hash(), "type");
        assert_ne!(
            base,
            small_kb(false, false, true).content_hash(),
            "taxonomy"
        );
    }

    #[test]
    fn renaming_changes_the_hash() {
        let mut b1 = KbBuilder::new();
        let c = b1.class("city");
        let i = b1.instance("Haifa");
        b1.set_type(i, c);
        let mut b2 = KbBuilder::new();
        let c = b2.class("town");
        let i = b2.instance("Haifa");
        b2.set_type(i, c);
        assert_ne!(
            b1.finalize().unwrap().content_hash(),
            b2.finalize().unwrap().content_hash()
        );
    }

    #[test]
    fn section_swaps_do_not_alias() {
        // One KB with the name interned as a class, one as a predicate.
        let mut b1 = KbBuilder::new();
        b1.class("locatedIn");
        let mut b2 = KbBuilder::new();
        b2.pred("locatedIn");
        assert_ne!(
            b1.finalize().unwrap().content_hash(),
            b2.finalize().unwrap().content_hash()
        );
    }

    #[test]
    fn hash_is_independent_of_generation() {
        // Interleave other finalizations to perturb the generation counter.
        let a = small_kb(false, false, false);
        let _noise = figure1_kb();
        let b = small_kb(false, false, false);
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a.content_hash(), b.content_hash());
    }
}
