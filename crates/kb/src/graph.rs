//! The knowledge-base graph: a finalized, index-backed RDF triple store.
//!
//! A KB is a set of triples `(s, p, o)` where `s` is an instance, `p` is a
//! relationship or property, and `o` is an instance or literal (§II-A of the
//! paper). Construction goes through [`KbBuilder`]; [`KbBuilder::finalize`]
//! produces an immutable [`KnowledgeBase`] with all the indexes detective
//! rules need on the hot path:
//!
//! * type index with taxonomy closure (`instances_of`),
//! * forward adjacency (`objects`), backward adjacency (`subjects`),
//! * O(log n) membership (`has_edge`),
//! * exact-label lookup (`instances_labeled`).

use crate::hash::FxHashMap;
use crate::ids::{ClassId, InstanceId, LiteralId, Node, PredId};
use crate::symbol::{Symbol, SymbolTable};
use crate::taxonomy::Taxonomy;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide counter behind [`KnowledgeBase::generation`]. Starts at 1 so
/// generation 0 can act as a "no KB" sentinel in cache keys.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Draws the next process-unique KB generation. Shared by
/// [`KbBuilder::finalize`] and `MappedKb::open` so every live KB — in-memory
/// or mapped — gets a distinct cache-registry key.
pub(crate) fn alloc_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Errors raised while finalizing a KB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// The `subClassOf` hierarchy contains a cycle through this class.
    TaxonomyCycle(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::TaxonomyCycle(c) => write!(f, "subClassOf cycle through class `{c}`"),
        }
    }
}

impl std::error::Error for KbError {}

#[derive(Debug, Clone)]
struct InstanceMeta {
    label: Symbol,
    classes: Vec<ClassId>,
}

/// Incremental constructor for a [`KnowledgeBase`].
///
/// All `add_*`/lookup methods are idempotent on names: asking for the class
/// `"city"` twice yields the same [`ClassId`].
#[derive(Default)]
pub struct KbBuilder {
    symbols: SymbolTable,
    class_names: Vec<Symbol>,
    class_by_name: FxHashMap<Symbol, ClassId>,
    pred_names: Vec<Symbol>,
    pred_by_name: FxHashMap<Symbol, PredId>,
    instances: Vec<InstanceMeta>,
    instance_by_label: FxHashMap<Symbol, Vec<InstanceId>>,
    literal_values: Vec<Symbol>,
    literal_by_value: FxHashMap<Symbol, LiteralId>,
    taxonomy: Taxonomy,
    edges: Vec<(InstanceId, PredId, Node)>,
}

impl KbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a class by name.
    pub fn class(&mut self, name: &str) -> ClassId {
        let sym = self.symbols.intern(name);
        if let Some(&c) = self.class_by_name.get(&sym) {
            return c;
        }
        let id = ClassId::from_index(self.class_names.len());
        self.class_names.push(sym);
        self.class_by_name.insert(sym, id);
        self.taxonomy.ensure(id);
        id
    }

    /// Interns a predicate (relationship or property) by name.
    pub fn pred(&mut self, name: &str) -> PredId {
        let sym = self.symbols.intern(name);
        if let Some(&p) = self.pred_by_name.get(&sym) {
            return p;
        }
        let id = PredId::from_index(self.pred_names.len());
        self.pred_names.push(sym);
        self.pred_by_name.insert(sym, id);
        id
    }

    /// Returns the instance labeled `label`, creating it if absent.
    ///
    /// Labels are treated as entity keys by this convenience constructor; use
    /// [`KbBuilder::new_instance`] to create homonymous entities.
    pub fn instance(&mut self, label: &str) -> InstanceId {
        let sym = self.symbols.intern(label);
        if let Some(ids) = self.instance_by_label.get(&sym) {
            if let Some(&first) = ids.first() {
                return first;
            }
        }
        self.push_instance(sym)
    }

    /// Creates a fresh instance with `label`, even if the label already names
    /// another entity.
    pub fn new_instance(&mut self, label: &str) -> InstanceId {
        let sym = self.symbols.intern(label);
        self.push_instance(sym)
    }

    fn push_instance(&mut self, sym: Symbol) -> InstanceId {
        let id = InstanceId::from_index(self.instances.len());
        self.instances.push(InstanceMeta {
            label: sym,
            classes: Vec::new(),
        });
        self.instance_by_label.entry(sym).or_default().push(id);
        id
    }

    /// Interns a literal by value.
    pub fn literal(&mut self, value: &str) -> LiteralId {
        let sym = self.symbols.intern(value);
        if let Some(&l) = self.literal_by_value.get(&sym) {
            return l;
        }
        let id = LiteralId::from_index(self.literal_values.len());
        self.literal_values.push(sym);
        self.literal_by_value.insert(sym, id);
        id
    }

    /// Types instance `i` with class `c` (an `rdf:type` edge).
    pub fn set_type(&mut self, i: InstanceId, c: ClassId) {
        let meta = &mut self.instances[i.index()];
        if !meta.classes.contains(&c) {
            meta.classes.push(c);
        }
    }

    /// Declares `sub ⊑ sup` in the taxonomy.
    pub fn subclass(&mut self, sub: ClassId, sup: ClassId) {
        self.taxonomy.add_subclass(sub, sup);
    }

    /// Adds a triple `(s, p, o)`.
    pub fn edge(&mut self, s: InstanceId, p: PredId, o: impl Into<Node>) {
        self.edges.push((s, p, o.into()));
    }

    /// Number of instances created so far.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Seals the builder into an immutable, fully indexed KB.
    ///
    /// # Errors
    /// Fails if the taxonomy is cyclic.
    pub fn finalize(mut self) -> Result<KnowledgeBase, KbError> {
        self.taxonomy.finalize().map_err(|c| {
            KbError::TaxonomyCycle(
                self.class_names
                    .get(c.index())
                    .map(|&s| self.symbols.resolve(s).to_owned())
                    .unwrap_or_else(|| format!("{c:?}")),
            )
        })?;

        // Forward and backward adjacency, sorted + deduped for binary search.
        let mut out: FxHashMap<(InstanceId, PredId), Vec<Node>> = FxHashMap::default();
        let mut inn: FxHashMap<(Node, PredId), Vec<InstanceId>> = FxHashMap::default();
        for &(s, p, o) in &self.edges {
            out.entry((s, p)).or_default().push(o);
            inn.entry((o, p)).or_default().push(s);
        }
        for v in out.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in inn.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        let edge_count = out.values().map(Vec::len).sum();

        // Per-instance predicate lists: which predicates have out-edges from
        // each instance (for neighbourhood enumeration without scanning the
        // whole predicate vocabulary).
        let mut preds_of: Vec<Vec<PredId>> = vec![Vec::new(); self.instances.len()];
        for &(s, p) in out.keys() {
            preds_of[s.index()].push(p);
        }
        for v in &mut preds_of {
            v.sort_unstable();
            v.dedup();
        }

        // Per-class instance lists, direct and with taxonomy closure.
        let num_classes = self.class_names.len().max(self.taxonomy.num_classes());
        let mut direct: Vec<Vec<InstanceId>> = vec![Vec::new(); num_classes];
        for (idx, meta) in self.instances.iter().enumerate() {
            for &c in &meta.classes {
                direct[c.index()].push(InstanceId::from_index(idx));
            }
        }
        let mut closed: Vec<Vec<InstanceId>> = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let class = ClassId::from_index(c);
            let mut acc: Vec<InstanceId> = Vec::new();
            for &d in self.taxonomy.descendants(class) {
                acc.extend_from_slice(&direct[d.index()]);
            }
            acc.sort_unstable();
            acc.dedup();
            closed.push(acc);
        }
        for v in &mut direct {
            v.sort_unstable();
        }

        for v in self.instance_by_label.values_mut() {
            v.sort_unstable();
        }

        Ok(KnowledgeBase {
            symbols: self.symbols,
            class_names: self.class_names,
            class_by_name: self.class_by_name,
            pred_names: self.pred_names,
            pred_by_name: self.pred_by_name,
            instances: self.instances,
            instance_by_label: self.instance_by_label,
            literal_values: self.literal_values,
            literal_by_value: self.literal_by_value,
            taxonomy: self.taxonomy,
            out,
            inn,
            preds_of,
            direct_instances: direct,
            closed_instances: closed,
            edge_count,
            generation: alloc_generation(),
            content_hash: OnceLock::new(),
        })
    }
}

/// An immutable RDF knowledge base with matching-oriented indexes.
pub struct KnowledgeBase {
    symbols: SymbolTable,
    class_names: Vec<Symbol>,
    class_by_name: FxHashMap<Symbol, ClassId>,
    pred_names: Vec<Symbol>,
    pred_by_name: FxHashMap<Symbol, PredId>,
    instances: Vec<InstanceMeta>,
    instance_by_label: FxHashMap<Symbol, Vec<InstanceId>>,
    literal_values: Vec<Symbol>,
    literal_by_value: FxHashMap<Symbol, LiteralId>,
    taxonomy: Taxonomy,
    out: FxHashMap<(InstanceId, PredId), Vec<Node>>,
    inn: FxHashMap<(Node, PredId), Vec<InstanceId>>,
    preds_of: Vec<Vec<PredId>>,
    direct_instances: Vec<Vec<InstanceId>>,
    closed_instances: Vec<Vec<InstanceId>>,
    edge_count: usize,
    generation: u64,
    content_hash: OnceLock<u64>,
}

impl KnowledgeBase {
    /// A process-unique id assigned at [`KbBuilder::finalize`]. Two
    /// `KnowledgeBase` values never share a generation, so derived state
    /// (e.g. cached KB lookups keyed by generation) can never be served
    /// against a different — or rebuilt — KB.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A deterministic hash of the KB's full content **and** id assignment
    /// (see [`crate::content_hash`]). Unlike [`KnowledgeBase::generation`],
    /// two KBs built by replaying the same construction sequence share a
    /// content hash across processes, which makes it the right key for
    /// on-disk cache snapshots. Computed lazily on first use, then cached.
    pub fn content_hash(&self) -> u64 {
        *self
            .content_hash
            .get_or_init(|| crate::content_hash::content_hash_of(self))
    }

    // ----- name lookups ------------------------------------------------

    /// Resolves a class by name.
    pub fn class_named(&self, name: &str) -> Option<ClassId> {
        self.symbols
            .get(name)
            .and_then(|s| self.class_by_name.get(&s).copied())
    }

    /// Resolves a predicate by name.
    pub fn pred_named(&self, name: &str) -> Option<PredId> {
        self.symbols
            .get(name)
            .and_then(|s| self.pred_by_name.get(&s).copied())
    }

    /// The name of class `c`.
    pub fn class_name(&self, c: ClassId) -> &str {
        self.symbols.resolve(self.class_names[c.index()])
    }

    /// The name of predicate `p`.
    pub fn pred_name(&self, p: PredId) -> &str {
        self.symbols.resolve(self.pred_names[p.index()])
    }

    /// The human-readable label of instance `i`.
    pub fn instance_label(&self, i: InstanceId) -> &str {
        self.symbols.resolve(self.instances[i.index()].label)
    }

    /// The value of literal `l`.
    pub fn literal_value(&self, l: LiteralId) -> &str {
        self.symbols.resolve(self.literal_values[l.index()])
    }

    /// The textual value of any node (instance label or literal value).
    pub fn node_value(&self, n: Node) -> &str {
        match n {
            Node::Instance(i) => self.instance_label(i),
            Node::Literal(l) => self.literal_value(l),
        }
    }

    /// Instances whose label is exactly `label` (sorted by id).
    pub fn instances_labeled(&self, label: &str) -> &[InstanceId] {
        self.symbols
            .get(label)
            .and_then(|s| self.instance_by_label.get(&s))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The literal with exactly this value, if present.
    pub fn literal_with_value(&self, value: &str) -> Option<LiteralId> {
        self.symbols
            .get(value)
            .and_then(|s| self.literal_by_value.get(&s).copied())
    }

    // ----- typing -------------------------------------------------------

    /// Direct classes of instance `i` (no taxonomy closure).
    pub fn instance_classes(&self, i: InstanceId) -> &[ClassId] {
        &self.instances[i.index()].classes
    }

    /// Whether `i` is typed with `c` or any subclass of `c`.
    pub fn has_type(&self, i: InstanceId, c: ClassId) -> bool {
        self.instances[i.index()]
            .classes
            .iter()
            .any(|&d| self.taxonomy.subsumes(c, d))
    }

    /// All instances of class `c`, **including** instances of subclasses.
    /// Sorted by id.
    pub fn instances_of(&self, c: ClassId) -> &[InstanceId] {
        self.closed_instances
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Instances typed directly with `c` (no closure). Sorted by id.
    pub fn direct_instances_of(&self, c: ClassId) -> &[InstanceId] {
        self.direct_instances
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    // ----- adjacency ------------------------------------------------------

    /// Objects `o` with a triple `(s, p, o)`. Sorted.
    pub fn objects(&self, s: InstanceId, p: PredId) -> &[Node] {
        self.out.get(&(s, p)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Subjects `s` with a triple `(s, p, o)`. Sorted.
    pub fn subjects(&self, o: Node, p: PredId) -> &[InstanceId] {
        self.inn.get(&(o, p)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the triple `(s, p, o)` is in the KB.
    pub fn has_edge(&self, s: InstanceId, p: PredId, o: Node) -> bool {
        self.objects(s, p).binary_search(&o).is_ok()
    }

    /// The predicates with at least one out-edge from `s`. Sorted.
    pub fn preds_of(&self, s: InstanceId) -> &[PredId] {
        self.preds_of
            .get(s.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all out-edges of `s` as `(pred, object)` pairs.
    pub fn edges_from(&self, s: InstanceId) -> impl Iterator<Item = (PredId, Node)> + '_ {
        self.preds_of(s)
            .iter()
            .flat_map(move |&p| self.objects(s, p).iter().map(move |&o| (p, o)))
    }

    // ----- sizes ----------------------------------------------------------

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.pred_names.len()
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.literal_values.len()
    }

    /// Number of distinct triples.
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// The class taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Iterates over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.class_names.len()).map(ClassId::from_index)
    }

    /// Iterates over all predicate ids.
    pub fn preds(&self) -> impl Iterator<Item = PredId> {
        (0..self.pred_names.len()).map(PredId::from_index)
    }

    /// Iterates over all instance ids.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> {
        (0..self.instances.len()).map(InstanceId::from_index)
    }

    /// Iterates over all triples `(s, p, o)` in unspecified order.
    pub fn triples(&self) -> impl Iterator<Item = (InstanceId, PredId, Node)> + '_ {
        self.out
            .iter()
            .flat_map(|(&(s, p), objs)| objs.iter().map(move |&o| (s, p, o)))
    }
}

impl fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("instances", &self.num_instances())
            .field("classes", &self.num_classes())
            .field("preds", &self.num_preds())
            .field("literals", &self.num_literals())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_kb;

    #[test]
    fn figure1_basic_lookups() {
        let kb = figure1_kb();
        assert_eq!(kb.num_classes(), 6);
        assert_eq!(kb.num_preds(), 7);
        assert_eq!(kb.num_instances(), 8);
        assert_eq!(kb.num_literals(), 1);
        assert_eq!(kb.num_edges(), 10);

        let city = kb.class_named("city").unwrap();
        let haifa = kb.instances_labeled("Haifa")[0];
        assert!(kb.has_type(haifa, city));
        assert_eq!(kb.instances_of(city).len(), 2); // Karcag + Haifa
    }

    #[test]
    fn adjacency_queries() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let technion = kb.instances_labeled("Israel Institute of Technology")[0];
        let haifa = kb.instances_labeled("Haifa")[0];
        let works_at = kb.pred_named("worksAt").unwrap();
        let located_in = kb.pred_named("locatedIn").unwrap();

        assert_eq!(kb.objects(hershko, works_at), &[Node::Instance(technion)]);
        assert!(kb.has_edge(technion, located_in, Node::Instance(haifa)));
        assert_eq!(kb.subjects(Node::Instance(technion), works_at), &[hershko]);
    }

    #[test]
    fn two_hop_lives_at_semantics() {
        // worksAt ∘ locatedIn reaches Haifa, while wasBornIn reaches Karcag.
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let works_at = kb.pred_named("worksAt").unwrap();
        let located_in = kb.pred_named("locatedIn").unwrap();
        let born_in = kb.pred_named("wasBornIn").unwrap();

        let inst = kb.objects(hershko, works_at)[0].as_instance().unwrap();
        let lives = kb.objects(inst, located_in)[0];
        assert_eq!(kb.node_value(lives), "Haifa");
        let born = kb.objects(hershko, born_in)[0];
        assert_eq!(kb.node_value(born), "Karcag");
        assert_ne!(lives, born);
    }

    #[test]
    fn property_edges_reach_literals() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let born_on = kb.pred_named("bornOnDate").unwrap();
        let objs = kb.objects(hershko, born_on);
        assert_eq!(objs.len(), 1);
        assert!(objs[0].is_literal());
        assert_eq!(kb.node_value(objs[0]), "1937-12-31");
        let lit = kb.literal_with_value("1937-12-31").unwrap();
        assert_eq!(kb.subjects(Node::Literal(lit), born_on), &[hershko]);
    }

    #[test]
    fn duplicate_edges_count_once() {
        let mut b = KbBuilder::new();
        let p = b.pred("r");
        let a = b.instance("a");
        let bb = b.instance("b");
        b.edge(a, p, bb);
        b.edge(a, p, bb);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.num_edges(), 1);
        assert_eq!(kb.objects(a, p).len(), 1);
    }

    #[test]
    fn taxonomy_closure_in_instances_of() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let chemist = b.class("chemist");
        b.subclass(chemist, person);
        let i = b.instance("Marie Curie");
        b.set_type(i, chemist);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.instances_of(person), &[i]);
        assert!(kb.direct_instances_of(person).is_empty());
        assert!(kb.has_type(i, person));
    }

    #[test]
    fn homonymous_instances() {
        let mut b = KbBuilder::new();
        let c = b.class("city");
        let paris_fr = b.new_instance("Paris");
        let paris_tx = b.new_instance("Paris");
        b.set_type(paris_fr, c);
        b.set_type(paris_tx, c);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.instances_labeled("Paris").len(), 2);
    }

    #[test]
    fn cyclic_taxonomy_reported_by_name() {
        let mut b = KbBuilder::new();
        let a = b.class("alpha");
        let bb = b.class("beta");
        b.subclass(a, bb);
        b.subclass(bb, a);
        match b.finalize() {
            Err(KbError::TaxonomyCycle(name)) => {
                assert!(name == "alpha" || name == "beta");
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn per_instance_neighbourhood() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        // worksAt, isCitizenOf, wasBornIn, wonPrize, bornOnDate, bornAt.
        assert_eq!(kb.preds_of(hershko).len(), 6);
        let edges: Vec<_> = kb.edges_from(hershko).collect();
        assert_eq!(edges.len(), 7); // wonPrize has two objects
        for (p, o) in edges {
            assert!(kb.has_edge(hershko, p, o));
        }
        // A leaf node (literal target) has no out-edges.
        let karcag = kb.instances_labeled("Karcag")[0];
        assert_eq!(kb.preds_of(karcag).len(), 1); // locatedIn Hungary
    }

    #[test]
    fn triples_iterator_covers_all_edges() {
        let kb = figure1_kb();
        let mut n = 0;
        for (s, p, o) in kb.triples() {
            assert!(kb.has_edge(s, p, o));
            n += 1;
        }
        assert_eq!(n, kb.num_edges());
    }

    #[test]
    fn generations_are_unique_even_for_identical_content() {
        let a = figure1_kb();
        let b = figure1_kb();
        assert_ne!(a.generation(), b.generation());
        assert_ne!(a.generation(), 0, "generation 0 is the `no KB` sentinel");
    }
}
