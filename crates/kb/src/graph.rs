//! The knowledge-base graph: a finalized, index-backed RDF triple store.
//!
//! A KB is a set of triples `(s, p, o)` where `s` is an instance, `p` is a
//! relationship or property, and `o` is an instance or literal (§II-A of the
//! paper). Construction goes through [`KbBuilder`]; [`KbBuilder::finalize`]
//! produces an immutable [`KnowledgeBase`] with all the indexes detective
//! rules need on the hot path:
//!
//! * type index with taxonomy closure (`instances_of`),
//! * forward adjacency (`objects`), backward adjacency (`subjects`),
//! * O(log n) membership (`has_edge`),
//! * exact-label lookup (`instances_labeled`).

use crate::delta::{DeltaNode, DeltaOp, KbDelta, KbFootprint};
use crate::hash::FxHashMap;
use crate::ids::{ClassId, InstanceId, LiteralId, Node, PredId};
use crate::symbol::{Symbol, SymbolTable};
use crate::taxonomy::Taxonomy;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide counter behind [`KnowledgeBase::generation`]. Starts at 1 so
/// generation 0 can act as a "no KB" sentinel in cache keys.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Draws the next process-unique KB generation. Shared by
/// [`KbBuilder::finalize`] and `MappedKb::open` so every live KB — in-memory
/// or mapped — gets a distinct cache-registry key.
pub(crate) fn alloc_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Errors raised while finalizing a KB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// The `subClassOf` hierarchy contains a cycle through this class.
    TaxonomyCycle(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::TaxonomyCycle(c) => write!(f, "subClassOf cycle through class `{c}`"),
        }
    }
}

impl std::error::Error for KbError {}

#[derive(Debug, Clone)]
struct InstanceMeta {
    label: Symbol,
    classes: Vec<ClassId>,
}

/// Incremental constructor for a [`KnowledgeBase`].
///
/// All `add_*`/lookup methods are idempotent on names: asking for the class
/// `"city"` twice yields the same [`ClassId`].
#[derive(Default)]
pub struct KbBuilder {
    symbols: SymbolTable,
    class_names: Vec<Symbol>,
    class_by_name: FxHashMap<Symbol, ClassId>,
    pred_names: Vec<Symbol>,
    pred_by_name: FxHashMap<Symbol, PredId>,
    instances: Vec<InstanceMeta>,
    instance_by_label: FxHashMap<Symbol, Vec<InstanceId>>,
    literal_values: Vec<Symbol>,
    literal_by_value: FxHashMap<Symbol, LiteralId>,
    taxonomy: Taxonomy,
    edges: Vec<(InstanceId, PredId, Node)>,
}

impl KbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a class by name.
    pub fn class(&mut self, name: &str) -> ClassId {
        let sym = self.symbols.intern(name);
        if let Some(&c) = self.class_by_name.get(&sym) {
            return c;
        }
        let id = ClassId::from_index(self.class_names.len());
        self.class_names.push(sym);
        self.class_by_name.insert(sym, id);
        self.taxonomy.ensure(id);
        id
    }

    /// Interns a predicate (relationship or property) by name.
    pub fn pred(&mut self, name: &str) -> PredId {
        let sym = self.symbols.intern(name);
        if let Some(&p) = self.pred_by_name.get(&sym) {
            return p;
        }
        let id = PredId::from_index(self.pred_names.len());
        self.pred_names.push(sym);
        self.pred_by_name.insert(sym, id);
        id
    }

    /// Returns the instance labeled `label`, creating it if absent.
    ///
    /// Labels are treated as entity keys by this convenience constructor; use
    /// [`KbBuilder::new_instance`] to create homonymous entities.
    pub fn instance(&mut self, label: &str) -> InstanceId {
        let sym = self.symbols.intern(label);
        if let Some(ids) = self.instance_by_label.get(&sym) {
            if let Some(&first) = ids.first() {
                return first;
            }
        }
        self.push_instance(sym)
    }

    /// Creates a fresh instance with `label`, even if the label already names
    /// another entity.
    pub fn new_instance(&mut self, label: &str) -> InstanceId {
        let sym = self.symbols.intern(label);
        self.push_instance(sym)
    }

    fn push_instance(&mut self, sym: Symbol) -> InstanceId {
        let id = InstanceId::from_index(self.instances.len());
        self.instances.push(InstanceMeta {
            label: sym,
            classes: Vec::new(),
        });
        self.instance_by_label.entry(sym).or_default().push(id);
        id
    }

    /// Interns a literal by value.
    pub fn literal(&mut self, value: &str) -> LiteralId {
        let sym = self.symbols.intern(value);
        if let Some(&l) = self.literal_by_value.get(&sym) {
            return l;
        }
        let id = LiteralId::from_index(self.literal_values.len());
        self.literal_values.push(sym);
        self.literal_by_value.insert(sym, id);
        id
    }

    /// Types instance `i` with class `c` (an `rdf:type` edge).
    pub fn set_type(&mut self, i: InstanceId, c: ClassId) {
        let meta = &mut self.instances[i.index()];
        if !meta.classes.contains(&c) {
            meta.classes.push(c);
        }
    }

    /// Declares `sub ⊑ sup` in the taxonomy.
    pub fn subclass(&mut self, sub: ClassId, sup: ClassId) {
        self.taxonomy.add_subclass(sub, sup);
    }

    /// Adds a triple `(s, p, o)`.
    pub fn edge(&mut self, s: InstanceId, p: PredId, o: impl Into<Node>) {
        self.edges.push((s, p, o.into()));
    }

    /// Removes every copy of the triple `(s, p, o)` added so far. The
    /// rebuild-oracle counterpart of [`crate::delta::DeltaOp::RetractTriple`].
    pub fn retract_edge(&mut self, s: InstanceId, p: PredId, o: impl Into<Node>) {
        let o = o.into();
        self.edges.retain(|&(es, ep, eo)| (es, ep, eo) != (s, p, o));
    }

    /// Removes the `rdf:type` edge typing `i` with `c`, if present. Other
    /// classes of `i` keep their relative order.
    pub fn remove_type(&mut self, i: InstanceId, c: ClassId) {
        self.instances[i.index()].classes.retain(|&d| d != c);
    }

    /// Retracts the direct `sub ⊑ sup` taxonomy edge, if present.
    pub fn remove_subclass(&mut self, sub: ClassId, sup: ClassId) {
        self.taxonomy.remove_subclass(sub, sup);
    }

    /// Number of instances created so far.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Seals the builder into an immutable, fully indexed KB.
    ///
    /// # Errors
    /// Fails if the taxonomy is cyclic.
    pub fn finalize(mut self) -> Result<KnowledgeBase, KbError> {
        self.taxonomy.finalize().map_err(|c| {
            KbError::TaxonomyCycle(
                self.class_names
                    .get(c.index())
                    .map(|&s| self.symbols.resolve(s).to_owned())
                    .unwrap_or_else(|| format!("{c:?}")),
            )
        })?;

        // Forward and backward adjacency, sorted + deduped for binary search.
        let mut out: FxHashMap<(InstanceId, PredId), Vec<Node>> = FxHashMap::default();
        let mut inn: FxHashMap<(Node, PredId), Vec<InstanceId>> = FxHashMap::default();
        for &(s, p, o) in &self.edges {
            out.entry((s, p)).or_default().push(o);
            inn.entry((o, p)).or_default().push(s);
        }
        for v in out.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in inn.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        let edge_count = out.values().map(Vec::len).sum();

        // Per-instance predicate lists: which predicates have out-edges from
        // each instance (for neighbourhood enumeration without scanning the
        // whole predicate vocabulary).
        let mut preds_of: Vec<Vec<PredId>> = vec![Vec::new(); self.instances.len()];
        for &(s, p) in out.keys() {
            preds_of[s.index()].push(p);
        }
        for v in &mut preds_of {
            v.sort_unstable();
            v.dedup();
        }

        // Per-class instance lists, direct and with taxonomy closure.
        let num_classes = self.class_names.len().max(self.taxonomy.num_classes());
        let mut direct: Vec<Vec<InstanceId>> = vec![Vec::new(); num_classes];
        for (idx, meta) in self.instances.iter().enumerate() {
            for &c in &meta.classes {
                direct[c.index()].push(InstanceId::from_index(idx));
            }
        }
        let mut closed: Vec<Vec<InstanceId>> = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            let class = ClassId::from_index(c);
            let mut acc: Vec<InstanceId> = Vec::new();
            for &d in self.taxonomy.descendants(class) {
                acc.extend_from_slice(&direct[d.index()]);
            }
            acc.sort_unstable();
            acc.dedup();
            closed.push(acc);
        }
        for v in &mut direct {
            v.sort_unstable();
        }

        for v in self.instance_by_label.values_mut() {
            v.sort_unstable();
        }

        Ok(KnowledgeBase {
            symbols: self.symbols,
            class_names: self.class_names,
            class_by_name: self.class_by_name,
            pred_names: self.pred_names,
            pred_by_name: self.pred_by_name,
            instances: self.instances,
            instance_by_label: self.instance_by_label,
            literal_values: self.literal_values,
            literal_by_value: self.literal_by_value,
            taxonomy: self.taxonomy,
            out,
            inn,
            preds_of,
            direct_instances: direct,
            closed_instances: closed,
            edge_count,
            generation: alloc_generation(),
            content_hash: OnceLock::new(),
        })
    }
}

/// An immutable RDF knowledge base with matching-oriented indexes.
pub struct KnowledgeBase {
    symbols: SymbolTable,
    class_names: Vec<Symbol>,
    class_by_name: FxHashMap<Symbol, ClassId>,
    pred_names: Vec<Symbol>,
    pred_by_name: FxHashMap<Symbol, PredId>,
    instances: Vec<InstanceMeta>,
    instance_by_label: FxHashMap<Symbol, Vec<InstanceId>>,
    literal_values: Vec<Symbol>,
    literal_by_value: FxHashMap<Symbol, LiteralId>,
    taxonomy: Taxonomy,
    out: FxHashMap<(InstanceId, PredId), Vec<Node>>,
    inn: FxHashMap<(Node, PredId), Vec<InstanceId>>,
    preds_of: Vec<Vec<PredId>>,
    direct_instances: Vec<Vec<InstanceId>>,
    closed_instances: Vec<Vec<InstanceId>>,
    edge_count: usize,
    generation: u64,
    content_hash: OnceLock<u64>,
}

impl KnowledgeBase {
    /// A process-unique id assigned at [`KbBuilder::finalize`]. Two
    /// `KnowledgeBase` values never share a generation, so derived state
    /// (e.g. cached KB lookups keyed by generation) can never be served
    /// against a different — or rebuilt — KB.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A deterministic hash of the KB's full content **and** id assignment
    /// (see [`crate::content_hash`]). Unlike [`KnowledgeBase::generation`],
    /// two KBs built by replaying the same construction sequence share a
    /// content hash across processes, which makes it the right key for
    /// on-disk cache snapshots. Computed lazily on first use, then cached.
    pub fn content_hash(&self) -> u64 {
        *self
            .content_hash
            .get_or_init(|| crate::content_hash::content_hash_of(self))
    }

    // ----- name lookups ------------------------------------------------

    /// Resolves a class by name.
    pub fn class_named(&self, name: &str) -> Option<ClassId> {
        self.symbols
            .get(name)
            .and_then(|s| self.class_by_name.get(&s).copied())
    }

    /// Resolves a predicate by name.
    pub fn pred_named(&self, name: &str) -> Option<PredId> {
        self.symbols
            .get(name)
            .and_then(|s| self.pred_by_name.get(&s).copied())
    }

    /// The name of class `c`.
    pub fn class_name(&self, c: ClassId) -> &str {
        self.symbols.resolve(self.class_names[c.index()])
    }

    /// The name of predicate `p`.
    pub fn pred_name(&self, p: PredId) -> &str {
        self.symbols.resolve(self.pred_names[p.index()])
    }

    /// The human-readable label of instance `i`.
    pub fn instance_label(&self, i: InstanceId) -> &str {
        self.symbols.resolve(self.instances[i.index()].label)
    }

    /// The value of literal `l`.
    pub fn literal_value(&self, l: LiteralId) -> &str {
        self.symbols.resolve(self.literal_values[l.index()])
    }

    /// The textual value of any node (instance label or literal value).
    pub fn node_value(&self, n: Node) -> &str {
        match n {
            Node::Instance(i) => self.instance_label(i),
            Node::Literal(l) => self.literal_value(l),
        }
    }

    /// Instances whose label is exactly `label` (sorted by id).
    pub fn instances_labeled(&self, label: &str) -> &[InstanceId] {
        self.symbols
            .get(label)
            .and_then(|s| self.instance_by_label.get(&s))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The literal with exactly this value, if present.
    pub fn literal_with_value(&self, value: &str) -> Option<LiteralId> {
        self.symbols
            .get(value)
            .and_then(|s| self.literal_by_value.get(&s).copied())
    }

    // ----- typing -------------------------------------------------------

    /// Direct classes of instance `i` (no taxonomy closure).
    pub fn instance_classes(&self, i: InstanceId) -> &[ClassId] {
        &self.instances[i.index()].classes
    }

    /// Whether `i` is typed with `c` or any subclass of `c`.
    pub fn has_type(&self, i: InstanceId, c: ClassId) -> bool {
        self.instances[i.index()]
            .classes
            .iter()
            .any(|&d| self.taxonomy.subsumes(c, d))
    }

    /// All instances of class `c`, **including** instances of subclasses.
    /// Sorted by id.
    pub fn instances_of(&self, c: ClassId) -> &[InstanceId] {
        self.closed_instances
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Instances typed directly with `c` (no closure). Sorted by id.
    pub fn direct_instances_of(&self, c: ClassId) -> &[InstanceId] {
        self.direct_instances
            .get(c.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    // ----- adjacency ------------------------------------------------------

    /// Objects `o` with a triple `(s, p, o)`. Sorted.
    pub fn objects(&self, s: InstanceId, p: PredId) -> &[Node] {
        self.out.get(&(s, p)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Subjects `s` with a triple `(s, p, o)`. Sorted.
    pub fn subjects(&self, o: Node, p: PredId) -> &[InstanceId] {
        self.inn.get(&(o, p)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the triple `(s, p, o)` is in the KB.
    pub fn has_edge(&self, s: InstanceId, p: PredId, o: Node) -> bool {
        self.objects(s, p).binary_search(&o).is_ok()
    }

    /// The predicates with at least one out-edge from `s`. Sorted.
    pub fn preds_of(&self, s: InstanceId) -> &[PredId] {
        self.preds_of
            .get(s.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all out-edges of `s` as `(pred, object)` pairs.
    pub fn edges_from(&self, s: InstanceId) -> impl Iterator<Item = (PredId, Node)> + '_ {
        self.preds_of(s)
            .iter()
            .flat_map(move |&p| self.objects(s, p).iter().map(move |&o| (p, o)))
    }

    // ----- sizes ----------------------------------------------------------

    /// Number of instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.pred_names.len()
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.literal_values.len()
    }

    /// Number of distinct triples.
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// The class taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Iterates over all class ids.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.class_names.len()).map(ClassId::from_index)
    }

    /// Iterates over all predicate ids.
    pub fn preds(&self) -> impl Iterator<Item = PredId> {
        (0..self.pred_names.len()).map(PredId::from_index)
    }

    /// Iterates over all instance ids.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> {
        (0..self.instances.len()).map(InstanceId::from_index)
    }

    /// Iterates over all triples `(s, p, o)` in unspecified order.
    pub fn triples(&self) -> impl Iterator<Item = (InstanceId, PredId, Node)> + '_ {
        self.out
            .iter()
            .flat_map(|(&(s, p), objs)| objs.iter().map(move |&o| (s, p, o)))
    }

    // ----- incremental edits (DESIGN.md §10) ------------------------------

    /// Applies `delta` in place: every op lands in order, indexes are
    /// maintained, the generation bumps, and the cached content hash is
    /// reset. Returns the **write footprint** — the classes, adjacency
    /// pairs, and literal state the delta touched — which cache layers
    /// intersect against recorded read footprints to invalidate only
    /// stale entries.
    ///
    /// The result is byte-identical to rebuilding the KB from scratch
    /// with the delta's ops appended to the original construction
    /// sequence (same ids, same content hash) — the invariant pinned by
    /// the `kb_delta_differential` suite.
    ///
    /// # Errors
    /// If a `sub+` op would make the taxonomy cyclic, nothing is mutated
    /// and [`KbError::TaxonomyCycle`] is returned.
    pub fn apply_delta(&mut self, delta: &KbDelta) -> Result<KbFootprint, KbError> {
        // --- plan: assign ids for not-yet-existing classes without
        // mutating, so taxonomy edits can be cycle-checked up front and a
        // rejected delta leaves the KB untouched.
        let mut planned: FxHashMap<Box<str>, ClassId> = FxHashMap::default();
        let mut next_class = self.class_names.len();
        fn plan_class(
            kb: &KnowledgeBase,
            planned: &mut FxHashMap<Box<str>, ClassId>,
            next_class: &mut usize,
            name: &str,
        ) -> ClassId {
            if let Some(c) = kb.class_named(name) {
                return c;
            }
            if let Some(&c) = planned.get(name) {
                return c;
            }
            let c = ClassId::from_index(*next_class);
            *next_class += 1;
            planned.insert(name.into(), c);
            c
        }
        let mut tax_ops: Vec<(bool, ClassId, ClassId)> = Vec::new();
        for op in delta.ops() {
            match op {
                DeltaOp::AddType { class, .. } | DeltaOp::RemoveType { class, .. } => {
                    plan_class(self, &mut planned, &mut next_class, class);
                }
                DeltaOp::AddSubclass { sub, sup } => {
                    let a = plan_class(self, &mut planned, &mut next_class, sub);
                    let b = plan_class(self, &mut planned, &mut next_class, sup);
                    tax_ops.push((true, a, b));
                }
                DeltaOp::RemoveSubclass { sub, sup } => {
                    let a = plan_class(self, &mut planned, &mut next_class, sub);
                    let b = plan_class(self, &mut planned, &mut next_class, sup);
                    tax_ops.push((false, a, b));
                }
                DeltaOp::InsertTriple { .. } | DeltaOp::RetractTriple { .. } => {}
            }
        }
        let taxonomy_changed = !tax_ops.is_empty();

        // --- validate: rebuild the taxonomy (existing edges replayed in
        // construction order + delta edits in op order) whenever the
        // hierarchy changes or new classes appear, so `descendants` covers
        // every class. Finalize before touching `self`: a cycle aborts the
        // whole delta.
        let needs_tax_rebuild = taxonomy_changed || next_class > self.class_names.len();
        let new_taxonomy = if needs_tax_rebuild {
            let mut t = Taxonomy::new();
            let total = next_class.max(self.taxonomy.num_classes());
            if total > 0 {
                t.ensure(ClassId::from_index(total - 1));
            }
            for c in 0..self.taxonomy.num_classes() {
                let c = ClassId::from_index(c);
                for &p in self.taxonomy.parents(c) {
                    t.add_subclass(c, p);
                }
            }
            for &(add, sub, sup) in &tax_ops {
                if add {
                    t.add_subclass(sub, sup);
                } else {
                    t.remove_subclass(sub, sup);
                }
            }
            t.finalize().map_err(|c| {
                let name = self
                    .class_names
                    .get(c.index())
                    .map(|&s| self.symbols.resolve(s).to_owned())
                    .or_else(|| {
                        planned
                            .iter()
                            .find(|&(_, &id)| id == c)
                            .map(|(n, _)| n.to_string())
                    })
                    .unwrap_or_else(|| format!("{c:?}"));
                KbError::TaxonomyCycle(name)
            })?;
            Some(t)
        } else {
            None
        };

        // --- mutate: ops in order. Entities are interned even by retract
        // ops (id parity with the rebuild oracle); the footprint records
        // only regions that actually changed.
        let mut fp = KbFootprint::new();
        let mut types_changed = false;
        for op in delta.ops() {
            match op {
                DeltaOp::InsertTriple {
                    subject,
                    pred,
                    object,
                } => {
                    let s = self.intern_instance_mut(subject);
                    let p = self.intern_pred_mut(pred);
                    let o = self.intern_node_mut(object, &mut fp);
                    let objs = self.out.entry((s, p)).or_default();
                    if let Err(pos) = objs.binary_search(&o) {
                        objs.insert(pos, o);
                        let subs = self.inn.entry((o, p)).or_default();
                        if let Err(sp) = subs.binary_search(&s) {
                            subs.insert(sp, s);
                        }
                        let preds = &mut self.preds_of[s.index()];
                        if let Err(pp) = preds.binary_search(&p) {
                            preds.insert(pp, p);
                        }
                        self.edge_count += 1;
                        fp.out_pairs.insert((s, p));
                        fp.in_pairs.insert((o, p));
                    }
                }
                DeltaOp::RetractTriple {
                    subject,
                    pred,
                    object,
                } => {
                    let s = self.intern_instance_mut(subject);
                    let p = self.intern_pred_mut(pred);
                    let o = self.intern_node_mut(object, &mut fp);
                    let Some(objs) = self.out.get_mut(&(s, p)) else {
                        continue;
                    };
                    let Ok(pos) = objs.binary_search(&o) else {
                        continue;
                    };
                    objs.remove(pos);
                    if objs.is_empty() {
                        self.out.remove(&(s, p));
                        let preds = &mut self.preds_of[s.index()];
                        if let Ok(pp) = preds.binary_search(&p) {
                            preds.remove(pp);
                        }
                    }
                    if let Some(subs) = self.inn.get_mut(&(o, p)) {
                        if let Ok(sp) = subs.binary_search(&s) {
                            subs.remove(sp);
                        }
                        if subs.is_empty() {
                            self.inn.remove(&(o, p));
                        }
                    }
                    self.edge_count -= 1;
                    fp.out_pairs.insert((s, p));
                    fp.in_pairs.insert((o, p));
                }
                DeltaOp::AddType { instance, class } => {
                    let i = self.intern_instance_mut(instance);
                    let c = self.intern_class_mut(class);
                    let meta = &mut self.instances[i.index()];
                    if !meta.classes.contains(&c) {
                        meta.classes.push(c);
                        let direct = &mut self.direct_instances[c.index()];
                        if let Err(pos) = direct.binary_search(&i) {
                            direct.insert(pos, i);
                        }
                        types_changed = true;
                        fp.classes.insert(c);
                    }
                }
                DeltaOp::RemoveType { instance, class } => {
                    let i = self.intern_instance_mut(instance);
                    let c = self.intern_class_mut(class);
                    let meta = &mut self.instances[i.index()];
                    if let Some(pos) = meta.classes.iter().position(|&d| d == c) {
                        meta.classes.remove(pos);
                        let direct = &mut self.direct_instances[c.index()];
                        if let Ok(dp) = direct.binary_search(&i) {
                            direct.remove(dp);
                        }
                        types_changed = true;
                        fp.classes.insert(c);
                    }
                }
                DeltaOp::AddSubclass { sub, sup } | DeltaOp::RemoveSubclass { sub, sup } => {
                    // Edge set already folded into `new_taxonomy`; intern
                    // here so class-id assignment matches the plan (and
                    // the rebuild oracle).
                    self.intern_class_mut(sub);
                    self.intern_class_mut(sup);
                }
            }
        }
        debug_assert_eq!(self.class_names.len(), next_class, "plan/mutation id drift");

        if let Some(t) = new_taxonomy {
            self.taxonomy = t;
        }
        if types_changed || needs_tax_rebuild {
            self.recompute_closed_instances();
        }

        // Ancestor expansion against the *installed* taxonomy: a type edit
        // on `c` changes the closed extent of `c` and every class above it.
        fp.all_classes = taxonomy_changed;
        if !fp.classes.is_empty() {
            let direct: Vec<ClassId> = fp.classes.iter().copied().collect();
            let mut stack = direct;
            while let Some(c) = stack.pop() {
                for &p in self.taxonomy.parents(c) {
                    if fp.classes.insert(p) {
                        stack.push(p);
                    }
                }
            }
        }

        self.generation = alloc_generation();
        self.content_hash = OnceLock::new();
        Ok(fp)
    }

    fn recompute_closed_instances(&mut self) {
        let n = self.class_names.len().max(self.taxonomy.num_classes());
        let mut closed: Vec<Vec<InstanceId>> = Vec::with_capacity(n);
        for c in 0..n {
            let class = ClassId::from_index(c);
            let mut acc: Vec<InstanceId> = Vec::new();
            for &d in self.taxonomy.descendants(class) {
                if let Some(direct) = self.direct_instances.get(d.index()) {
                    acc.extend_from_slice(direct);
                }
            }
            acc.sort_unstable();
            acc.dedup();
            closed.push(acc);
        }
        self.closed_instances = closed;
    }

    fn intern_class_mut(&mut self, name: &str) -> ClassId {
        let sym = self.symbols.intern(name);
        if let Some(&c) = self.class_by_name.get(&sym) {
            return c;
        }
        let id = ClassId::from_index(self.class_names.len());
        self.class_names.push(sym);
        self.class_by_name.insert(sym, id);
        // Keep the per-class indexes dense; closures are recomputed after
        // the op loop.
        if self.direct_instances.len() < id.index() + 1 {
            self.direct_instances.resize_with(id.index() + 1, Vec::new);
        }
        if self.closed_instances.len() < id.index() + 1 {
            self.closed_instances.resize_with(id.index() + 1, Vec::new);
        }
        id
    }

    fn intern_pred_mut(&mut self, name: &str) -> PredId {
        let sym = self.symbols.intern(name);
        if let Some(&p) = self.pred_by_name.get(&sym) {
            return p;
        }
        let id = PredId::from_index(self.pred_names.len());
        self.pred_names.push(sym);
        self.pred_by_name.insert(sym, id);
        id
    }

    fn intern_instance_mut(&mut self, label: &str) -> InstanceId {
        let sym = self.symbols.intern(label);
        if let Some(ids) = self.instance_by_label.get(&sym) {
            if let Some(&first) = ids.first() {
                return first;
            }
        }
        let id = InstanceId::from_index(self.instances.len());
        self.instances.push(InstanceMeta {
            label: sym,
            classes: Vec::new(),
        });
        // New id is the maximum, so pushing keeps the per-label list sorted.
        self.instance_by_label.entry(sym).or_default().push(id);
        self.preds_of.push(Vec::new());
        id
    }

    fn intern_node_mut(&mut self, node: &DeltaNode, fp: &mut KbFootprint) -> Node {
        match node {
            DeltaNode::Instance(label) => Node::Instance(self.intern_instance_mut(label)),
            DeltaNode::Literal(value) => {
                let sym = self.symbols.intern(value);
                if let Some(&l) = self.literal_by_value.get(&sym) {
                    return Node::Literal(l);
                }
                let id = LiteralId::from_index(self.literal_values.len());
                self.literal_values.push(sym);
                self.literal_by_value.insert(sym, id);
                // A reader that resolved this value before the delta saw a
                // miss; flag literal state as changed.
                fp.literals = true;
                Node::Literal(id)
            }
        }
    }
}

impl Clone for KnowledgeBase {
    /// Deep-copies the KB content under a **fresh generation**: generations
    /// are process-unique identities, never shared — cache state keyed to
    /// the source KB must not leak onto the clone. The cached content hash
    /// carries over (content is identical).
    fn clone(&self) -> Self {
        KnowledgeBase {
            symbols: self.symbols.clone(),
            class_names: self.class_names.clone(),
            class_by_name: self.class_by_name.clone(),
            pred_names: self.pred_names.clone(),
            pred_by_name: self.pred_by_name.clone(),
            instances: self.instances.clone(),
            instance_by_label: self.instance_by_label.clone(),
            literal_values: self.literal_values.clone(),
            literal_by_value: self.literal_by_value.clone(),
            taxonomy: self.taxonomy.clone(),
            out: self.out.clone(),
            inn: self.inn.clone(),
            preds_of: self.preds_of.clone(),
            direct_instances: self.direct_instances.clone(),
            closed_instances: self.closed_instances.clone(),
            edge_count: self.edge_count,
            generation: alloc_generation(),
            content_hash: self.content_hash.clone(),
        }
    }
}

impl fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("instances", &self.num_instances())
            .field("classes", &self.num_classes())
            .field("preds", &self.num_preds())
            .field("literals", &self.num_literals())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_kb;

    #[test]
    fn figure1_basic_lookups() {
        let kb = figure1_kb();
        assert_eq!(kb.num_classes(), 6);
        assert_eq!(kb.num_preds(), 7);
        assert_eq!(kb.num_instances(), 8);
        assert_eq!(kb.num_literals(), 1);
        assert_eq!(kb.num_edges(), 10);

        let city = kb.class_named("city").unwrap();
        let haifa = kb.instances_labeled("Haifa")[0];
        assert!(kb.has_type(haifa, city));
        assert_eq!(kb.instances_of(city).len(), 2); // Karcag + Haifa
    }

    #[test]
    fn adjacency_queries() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let technion = kb.instances_labeled("Israel Institute of Technology")[0];
        let haifa = kb.instances_labeled("Haifa")[0];
        let works_at = kb.pred_named("worksAt").unwrap();
        let located_in = kb.pred_named("locatedIn").unwrap();

        assert_eq!(kb.objects(hershko, works_at), &[Node::Instance(technion)]);
        assert!(kb.has_edge(technion, located_in, Node::Instance(haifa)));
        assert_eq!(kb.subjects(Node::Instance(technion), works_at), &[hershko]);
    }

    #[test]
    fn two_hop_lives_at_semantics() {
        // worksAt ∘ locatedIn reaches Haifa, while wasBornIn reaches Karcag.
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let works_at = kb.pred_named("worksAt").unwrap();
        let located_in = kb.pred_named("locatedIn").unwrap();
        let born_in = kb.pred_named("wasBornIn").unwrap();

        let inst = kb.objects(hershko, works_at)[0].as_instance().unwrap();
        let lives = kb.objects(inst, located_in)[0];
        assert_eq!(kb.node_value(lives), "Haifa");
        let born = kb.objects(hershko, born_in)[0];
        assert_eq!(kb.node_value(born), "Karcag");
        assert_ne!(lives, born);
    }

    #[test]
    fn property_edges_reach_literals() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let born_on = kb.pred_named("bornOnDate").unwrap();
        let objs = kb.objects(hershko, born_on);
        assert_eq!(objs.len(), 1);
        assert!(objs[0].is_literal());
        assert_eq!(kb.node_value(objs[0]), "1937-12-31");
        let lit = kb.literal_with_value("1937-12-31").unwrap();
        assert_eq!(kb.subjects(Node::Literal(lit), born_on), &[hershko]);
    }

    #[test]
    fn duplicate_edges_count_once() {
        let mut b = KbBuilder::new();
        let p = b.pred("r");
        let a = b.instance("a");
        let bb = b.instance("b");
        b.edge(a, p, bb);
        b.edge(a, p, bb);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.num_edges(), 1);
        assert_eq!(kb.objects(a, p).len(), 1);
    }

    #[test]
    fn taxonomy_closure_in_instances_of() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let chemist = b.class("chemist");
        b.subclass(chemist, person);
        let i = b.instance("Marie Curie");
        b.set_type(i, chemist);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.instances_of(person), &[i]);
        assert!(kb.direct_instances_of(person).is_empty());
        assert!(kb.has_type(i, person));
    }

    #[test]
    fn homonymous_instances() {
        let mut b = KbBuilder::new();
        let c = b.class("city");
        let paris_fr = b.new_instance("Paris");
        let paris_tx = b.new_instance("Paris");
        b.set_type(paris_fr, c);
        b.set_type(paris_tx, c);
        let kb = b.finalize().unwrap();
        assert_eq!(kb.instances_labeled("Paris").len(), 2);
    }

    #[test]
    fn cyclic_taxonomy_reported_by_name() {
        let mut b = KbBuilder::new();
        let a = b.class("alpha");
        let bb = b.class("beta");
        b.subclass(a, bb);
        b.subclass(bb, a);
        match b.finalize() {
            Err(KbError::TaxonomyCycle(name)) => {
                assert!(name == "alpha" || name == "beta");
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn per_instance_neighbourhood() {
        let kb = figure1_kb();
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        // worksAt, isCitizenOf, wasBornIn, wonPrize, bornOnDate, bornAt.
        assert_eq!(kb.preds_of(hershko).len(), 6);
        let edges: Vec<_> = kb.edges_from(hershko).collect();
        assert_eq!(edges.len(), 7); // wonPrize has two objects
        for (p, o) in edges {
            assert!(kb.has_edge(hershko, p, o));
        }
        // A leaf node (literal target) has no out-edges.
        let karcag = kb.instances_labeled("Karcag")[0];
        assert_eq!(kb.preds_of(karcag).len(), 1); // locatedIn Hungary
    }

    #[test]
    fn triples_iterator_covers_all_edges() {
        let kb = figure1_kb();
        let mut n = 0;
        for (s, p, o) in kb.triples() {
            assert!(kb.has_edge(s, p, o));
            n += 1;
        }
        assert_eq!(n, kb.num_edges());
    }

    #[test]
    fn generations_are_unique_even_for_identical_content() {
        let a = figure1_kb();
        let b = figure1_kb();
        assert_ne!(a.generation(), b.generation());
        assert_ne!(a.generation(), 0, "generation 0 is the `no KB` sentinel");
    }

    #[test]
    fn clone_draws_a_fresh_generation_but_keeps_content() {
        let a = figure1_kb();
        let hash = a.content_hash();
        let b = a.clone();
        assert_ne!(a.generation(), b.generation());
        assert_eq!(b.content_hash(), hash);
        assert_eq!(b.num_edges(), a.num_edges());
    }

    #[test]
    fn delta_insert_and_retract_maintain_indexes() {
        let mut kb = figure1_kb();
        let gen0 = kb.generation();
        let works_at = kb.pred_named("worksAt").unwrap();
        let haifa = kb.instances_labeled("Haifa")[0];

        let mut d = KbDelta::new();
        d.insert("Ada Yonath", "worksAt", DeltaNode::Instance("Haifa".into()));
        let fp = kb.apply_delta(&d).unwrap();
        assert!(kb.generation() > gen0);

        let ada = kb.instances_labeled("Ada Yonath")[0];
        assert!(kb.has_edge(ada, works_at, Node::Instance(haifa)));
        assert_eq!(kb.subjects(Node::Instance(haifa), works_at), &[ada]);
        assert_eq!(kb.preds_of(ada), &[works_at]);
        assert!(fp.out_pairs.contains(&(ada, works_at)));
        assert!(fp.in_pairs.contains(&(Node::Instance(haifa), works_at)));
        assert!(fp.classes.is_empty() && !fp.all_classes && !fp.literals);

        let edges = kb.num_edges();
        let mut r = KbDelta::new();
        r.retract("Ada Yonath", "worksAt", DeltaNode::Instance("Haifa".into()));
        kb.apply_delta(&r).unwrap();
        assert!(!kb.has_edge(ada, works_at, Node::Instance(haifa)));
        assert_eq!(kb.num_edges(), edges - 1);
        assert!(kb.preds_of(ada).is_empty());
        assert!(kb.subjects(Node::Instance(haifa), works_at).is_empty());
    }

    #[test]
    fn delta_type_ops_update_closed_extents_with_ancestors_in_footprint() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let chemist = b.class("chemist");
        b.subclass(chemist, person);
        let i = b.instance("Marie Curie");
        b.set_type(i, chemist);
        let mut kb = b.finalize().unwrap();

        let mut d = KbDelta::new();
        d.add_type("Paul Berg", "chemist");
        let fp = kb.apply_delta(&d).unwrap();
        let berg = kb.instances_labeled("Paul Berg")[0];
        assert_eq!(kb.instances_of(person), &[i, berg]);
        assert!(fp.touches_class(chemist) && fp.touches_class(person));
        assert!(!fp.all_classes);

        let mut r = KbDelta::new();
        r.remove_type("Marie Curie", "chemist");
        let fp = kb.apply_delta(&r).unwrap();
        assert_eq!(kb.instances_of(person), &[berg]);
        assert!(kb.instance_classes(i).is_empty());
        assert!(fp.touches_class(person));
    }

    #[test]
    fn delta_taxonomy_edit_sets_all_classes_and_cycle_aborts_cleanly() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let chemist = b.class("chemist");
        b.subclass(chemist, person);
        let i = b.instance("Marie Curie");
        b.set_type(i, chemist);
        let mut kb = b.finalize().unwrap();

        // A cyclic edit is rejected before anything mutates.
        let gen = kb.generation();
        let mut bad = KbDelta::new();
        bad.add_subclass("person", "chemist");
        match kb.apply_delta(&bad) {
            Err(KbError::TaxonomyCycle(_)) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
        assert_eq!(kb.generation(), gen, "rejected delta must not mutate");
        assert_eq!(kb.instances_of(person), &[i]);

        // Removing the subclass edge empties person's closed extent.
        let mut d = KbDelta::new();
        d.remove_subclass("chemist", "person");
        let fp = kb.apply_delta(&d).unwrap();
        assert!(fp.all_classes);
        assert!(kb.instances_of(person).is_empty());
        assert_eq!(kb.instances_of(chemist), &[i]);
    }

    #[test]
    fn delta_matches_rebuild_content_hash() {
        // In-place delta vs replaying construction + ops through the
        // builder: same ids, same content hash.
        let build_base = |b: &mut KbBuilder| {
            let city = b.class("city");
            let country = b.class("country");
            let located_in = b.pred("locatedIn");
            let haifa = b.instance("Haifa");
            let israel = b.instance("Israel");
            b.set_type(haifa, city);
            b.set_type(israel, country);
            b.edge(haifa, located_in, israel);
        };

        let mut live = {
            let mut b = KbBuilder::new();
            build_base(&mut b);
            b.finalize().unwrap()
        };
        let mut d = KbDelta::new();
        d.insert("Haifa", "population", DeltaNode::Literal("285000".into()))
            .retract("Haifa", "locatedIn", DeltaNode::Instance("Israel".into()))
            .add_type("Haifa", "port")
            .add_subclass("port", "place")
            .remove_type("Israel", "country");
        let fp = live.apply_delta(&d).unwrap();
        assert!(fp.literals, "new literal interned");

        let rebuilt = {
            let mut b = KbBuilder::new();
            build_base(&mut b);
            // Mirror the ops 1:1 through the builder (the rebuild oracle).
            let s = b.instance("Haifa");
            let p = b.pred("population");
            let l = b.literal("285000");
            b.edge(s, p, l);
            let s = b.instance("Haifa");
            let p = b.pred("locatedIn");
            let o = b.instance("Israel");
            b.retract_edge(s, p, o);
            let i = b.instance("Haifa");
            let c = b.class("port");
            b.set_type(i, c);
            let sub = b.class("port");
            let sup = b.class("place");
            b.subclass(sub, sup);
            let i = b.instance("Israel");
            let c = b.class("country");
            b.remove_type(i, c);
            b.finalize().unwrap()
        };

        assert_eq!(live.content_hash(), rebuilt.content_hash());
        assert_eq!(live.num_edges(), rebuilt.num_edges());
        assert_eq!(live.num_classes(), rebuilt.num_classes());
        assert_eq!(live.num_instances(), rebuilt.num_instances());
        assert_eq!(live.num_literals(), rebuilt.num_literals());
    }

    #[test]
    fn empty_and_noop_deltas_have_empty_footprints() {
        let mut kb = figure1_kb();
        let fp = kb.apply_delta(&KbDelta::new()).unwrap();
        assert!(fp.is_empty());

        // Re-inserting an existing edge and retracting a missing one both
        // leave the KB — and the footprint — untouched.
        let mut d = KbDelta::new();
        d.insert(
            "Israel Institute of Technology",
            "locatedIn",
            DeltaNode::Instance("Haifa".into()),
        );
        d.retract("Haifa", "locatedIn", DeltaNode::Instance("Karcag".into()));
        let edges = kb.num_edges();
        let fp = kb.apply_delta(&d).unwrap();
        assert!(fp.is_empty(), "no-op ops must not invalidate: {fp:?}");
        assert_eq!(kb.num_edges(), edges);
    }
}
