//! Aggregate statistics over a knowledge base.
//!
//! Used by the experiment harness to report Table-II-style alignment numbers
//! and by examples to describe generated KBs.

use crate::hash::FxHashSet;
use crate::ids::PredId;
use crate::view::KbRef;

/// The kind of a predicate, derived from the objects it connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// All observed objects are instances (a relationship in §II-A terms).
    Relationship,
    /// All observed objects are literals (a property in §II-A terms).
    Property,
    /// Objects of both kinds were observed.
    Mixed,
    /// The predicate appears in no triple.
    Unused,
}

/// Summary counters for a KB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KbStats {
    /// Number of instances.
    pub instances: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of predicates used as relationships (instance → instance).
    pub relationships: usize,
    /// Number of predicates used as properties (instance → literal).
    pub properties: usize,
    /// Number of predicates with mixed or zero usage.
    pub other_preds: usize,
    /// Number of literals.
    pub literals: usize,
    /// Number of distinct triples.
    pub edges: usize,
    /// Depth of the class taxonomy.
    pub taxonomy_depth: usize,
    /// Number of instances with at least one class.
    pub typed_instances: usize,
}

/// Classifies one predicate by scanning its triples. Works against either
/// KB backend (in-memory or mapped image).
pub fn pred_kind<'a>(kb: impl Into<KbRef<'a>>, p: PredId) -> PredKind {
    let kb = kb.into();
    let mut saw_instance = false;
    let mut saw_literal = false;
    for s in kb.instances() {
        for o in kb.objects(s, p).iter() {
            if o.is_literal() {
                saw_literal = true;
            } else {
                saw_instance = true;
            }
            if saw_instance && saw_literal {
                return PredKind::Mixed;
            }
        }
    }
    match (saw_instance, saw_literal) {
        (true, false) => PredKind::Relationship,
        (false, true) => PredKind::Property,
        (true, true) => PredKind::Mixed,
        (false, false) => PredKind::Unused,
    }
}

/// Computes all [`KbStats`] for `kb` — either backend.
pub fn stats<'a>(kb: impl Into<KbRef<'a>>) -> KbStats {
    let kb = kb.into();
    let mut relationships = 0;
    let mut properties = 0;
    let mut other = 0;
    // Single pass over triples instead of per-pred scans.
    let mut inst_preds: FxHashSet<PredId> = FxHashSet::default();
    let mut lit_preds: FxHashSet<PredId> = FxHashSet::default();
    for (_, p, o) in kb.triples() {
        if o.is_literal() {
            lit_preds.insert(p);
        } else {
            inst_preds.insert(p);
        }
    }
    for p in kb.preds() {
        match (inst_preds.contains(&p), lit_preds.contains(&p)) {
            (true, false) => relationships += 1,
            (false, true) => properties += 1,
            _ => other += 1,
        }
    }
    let typed_instances = kb
        .instances()
        .filter(|&i| !kb.instance_classes(i).is_empty())
        .count();
    KbStats {
        instances: kb.num_instances(),
        classes: kb.num_classes(),
        relationships,
        properties,
        other_preds: other,
        literals: kb.num_literals(),
        edges: kb.num_edges(),
        taxonomy_depth: kb.taxonomy().depth(),
        typed_instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_kb, names};

    #[test]
    fn figure1_stats() {
        let kb = figure1_kb();
        let s = stats(&kb);
        assert_eq!(s.instances, 8);
        assert_eq!(s.classes, 6);
        // worksAt, locatedIn, isCitizenOf, wasBornIn, wonPrize, bornAt
        assert_eq!(s.relationships, 6);
        assert_eq!(s.properties, 1); // bornOnDate
        assert_eq!(s.other_preds, 0);
        assert_eq!(s.edges, 10);
        assert_eq!(s.typed_instances, 8);
    }

    #[test]
    fn pred_kind_classification() {
        let kb = figure1_kb();
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        let born_on = kb.pred_named(names::BORN_ON_DATE).unwrap();
        assert_eq!(pred_kind(&kb, works_at), PredKind::Relationship);
        assert_eq!(pred_kind(&kb, born_on), PredKind::Property);
    }

    #[test]
    fn unused_pred() {
        let mut b = crate::graph::KbBuilder::new();
        let p = b.pred("never-used");
        let kb = b.finalize().unwrap();
        assert_eq!(pred_kind(&kb, p), PredKind::Unused);
        let s = stats(&kb);
        assert_eq!(s.other_preds, 1);
    }

    #[test]
    fn mixed_pred() {
        let mut b = crate::graph::KbBuilder::new();
        let p = b.pred("mixed");
        let a = b.instance("a");
        let x = b.instance("x");
        let l = b.literal("1");
        b.edge(a, p, x);
        b.edge(a, p, l);
        let kb = b.finalize().unwrap();
        assert_eq!(pred_kind(&kb, p), PredKind::Mixed);
    }
}
