//! The `.drkb` on-disk KB image format (DESIGN.md §8).
//!
//! A knowledge base packed into one flat, versioned binary file that
//! [`MappedKb`](crate::mapped::MappedKb) can open by mmap and query with
//! binary searches — no parse, no allocation proportional to KB size. The
//! conventions mirror the `.drsnap` value-cache snapshots: little-endian
//! fixed-width fields, a magic/version/`content_hash` header, and a
//! trailing FxHash checksum that is verified *before* any field is
//! interpreted, so torn writes and bit rot surface as a typed error rather
//! than a panic or a silently wrong answer.
//!
//! ## Layout
//!
//! ```text
//! header (64 bytes)
//!   magic            [u8;4]  "DRKB"
//!   version          u32
//!   content_hash     u64     KnowledgeBase::content_hash of the packed KB
//!   num_classes      u32
//!   num_preds        u32
//!   num_instances    u32
//!   num_literals     u32
//!   num_edges        u64
//!   num_spo_runs     u32     distinct (subject, predicate) pairs
//!   num_osp_runs     u32     distinct (object, predicate) pairs
//!   strings_len      u64     length of the string heap section
//!   reserved         u64     must be zero
//! section table (20 × { offset u64, len u64 })
//! sections (contiguous, in table order)
//! checksum           u64     FxHash of every preceding byte
//! ```
//!
//! Sections (all integers little-endian):
//!
//! | # | name          | contents |
//! |---|---------------|----------|
//! | 0 | Strings       | one UTF-8 heap: class names, pred names, instance labels, literal values, in id order |
//! | 1–4 | *StrOffs    | per id space, `(n+1)` × u64 heap offsets; string `i` is `heap[off[i]..off[i+1]]` |
//! | 5–6 | *ByName     | class/pred ids (u32) sorted by name — binary-searched by `class_named`/`pred_named` |
//! | 7 | InstByLabel   | instance ids sorted by `(label, id)` — range-scanned by `instances_labeled` |
//! | 8 | LitByValue    | literal ids sorted by value |
//! | 9 | TaxParents    | CSR over classes: `subClassOf` parent lists in insertion order |
//! | 10 | InstClasses  | CSR over instances: direct classes in insertion order |
//! | 11 | DirectInst   | CSR over classes: sorted direct instances |
//! | 12 | ClosedInst   | CSR over classes: sorted instances incl. taxonomy closure |
//! | 13 | PredsOf      | CSR over instances: sorted outgoing predicates |
//! | 14–16 | Spo*      | sorted `(s,p)` keys, run offsets, encoded object nodes per run (sorted) |
//! | 17–19 | Osp*      | sorted `(o,p)` keys, run offsets, subject ids per run (sorted) |
//! ```text
//! CSR over n rows = (n+1) × u32 offsets, then the concatenated u32 rows.
//! Node encoding   = u64: bit 32 is the literal tag, low 32 bits the id —
//!                   ordered exactly like the derived `Ord` on `Node`.
//! ```
//!
//! [`pack`] is deterministic: the same finalized KB (same `content_hash`)
//! always produces byte-identical images, pinned by a golden-file test.

use std::hash::Hasher;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::graph::KnowledgeBase;
use crate::hash::FxHasher;
use crate::ids::{ClassId, InstanceId, LiteralId, Node, PredId};

/// First bytes of every image.
pub const MAGIC: [u8; 4] = *b"DRKB";
/// Current format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;
/// Canonical file extension (`.drkb`).
pub const EXTENSION: &str = "drkb";

pub(crate) const NUM_SECTIONS: usize = 20;
pub(crate) const HEADER_LEN: usize = 64;
pub(crate) const BODY_START: usize = HEADER_LEN + NUM_SECTIONS * 16;
/// Smallest plausible image: header + section table + checksum.
pub const MIN_LEN: usize = BODY_START + 8;

/// Section indexes into the table (see the module docs for contents).
pub(crate) mod section {
    pub const STRINGS: usize = 0;
    pub const CLASS_STR: usize = 1;
    pub const PRED_STR: usize = 2;
    pub const INST_STR: usize = 3;
    pub const LIT_STR: usize = 4;
    pub const CLASS_BY_NAME: usize = 5;
    pub const PRED_BY_NAME: usize = 6;
    pub const INST_BY_LABEL: usize = 7;
    pub const LIT_BY_VALUE: usize = 8;
    pub const TAX_PARENTS: usize = 9;
    pub const INST_CLASSES: usize = 10;
    pub const DIRECT_INST: usize = 11;
    pub const CLOSED_INST: usize = 12;
    pub const PREDS_OF: usize = 13;
    pub const SPO_KEYS: usize = 14;
    pub const SPO_OFFS: usize = 15;
    pub const SPO_NODES: usize = 16;
    pub const OSP_KEYS: usize = 17;
    pub const OSP_OFFS: usize = 18;
    pub const OSP_SUBJS: usize = 19;
}

/// Why an image failed to open or write. Mirrors `SnapshotError` in
/// `dr-core`: every corruption mode maps to a typed variant, never a panic.
#[derive(Debug)]
pub enum KbImageError {
    /// Filesystem failure (missing file, permissions, short write).
    Io(io::Error),
    /// File shorter than the fixed header + section table + checksum.
    TooShort(usize),
    /// First four bytes are not `DRKB` — not an image at all.
    BadMagic([u8; 4]),
    /// An image from a different (likely future) format version.
    BadVersion(u32),
    /// Stored checksum does not match the bytes — torn write or bit rot.
    ChecksumMismatch {
        /// Checksum read from the trailer.
        stored: u64,
        /// Checksum computed over the preceding bytes.
        computed: u64,
    },
    /// The image is intact but packs a different KB than the caller
    /// expected (`content_hash` key mismatch).
    KeyMismatch {
        /// The `content_hash` in the image header.
        found: u64,
        /// The `content_hash` the caller demanded.
        expected: u64,
    },
    /// Checksum passed but the structure is inconsistent — a packer bug
    /// or a deliberately crafted file; the message names the first
    /// violated invariant.
    Malformed(&'static str),
}

impl KbImageError {
    /// True for the one non-corruption case — the file simply is not
    /// there. Everything else means an image existed and was bad.
    pub fn is_absence(&self) -> bool {
        matches!(self, KbImageError::Io(e) if e.kind() == io::ErrorKind::NotFound)
    }
}

impl std::fmt::Display for KbImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KbImageError::Io(e) => write!(f, "io error: {e}"),
            KbImageError::TooShort(len) => {
                write!(f, "file too short for a KB image ({len} bytes)")
            }
            KbImageError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            KbImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            KbImageError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#x}, computed {computed:#x})"
            ),
            KbImageError::KeyMismatch { found, expected } => {
                write!(f, "image packs KB {found:#x}, expected {expected:#x}")
            }
            KbImageError::Malformed(what) => write!(f, "malformed image: {what}"),
        }
    }
}

impl std::error::Error for KbImageError {}

impl From<io::Error> for KbImageError {
    fn from(e: io::Error) -> Self {
        KbImageError::Io(e)
    }
}

/// The checksum over everything before the 8-byte trailer: the same
/// FxHash-of-all-bytes the `.drsnap` format uses. Public so corruption
/// tests can re-seal a deliberately damaged body.
pub fn image_checksum(body: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(body);
    h.finish()
}

/// Bit 32 tags a literal; instances have tag 0. Chosen so the u64 order of
/// encoded nodes equals the derived `Ord` on [`Node`] (`Instance < Literal`,
/// then by id) — sorted mem slices and sorted image runs compare equal.
const NODE_TAG_LITERAL: u64 = 1 << 32;

pub(crate) fn encode_node(n: Node) -> u64 {
    match n {
        Node::Instance(i) => i.index() as u64,
        Node::Literal(l) => NODE_TAG_LITERAL | l.index() as u64,
    }
}

pub(crate) fn decode_node(v: u64) -> Option<Node> {
    let id = (v & 0xFFFF_FFFF) as usize;
    match v >> 32 {
        0 => Some(Node::Instance(InstanceId::from_index(id))),
        1 => Some(Node::Literal(LiteralId::from_index(id))),
        _ => None,
    }
}

pub(crate) fn u32_at(b: &[u8], pos: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[pos..pos + 4]);
    u32::from_le_bytes(buf)
}

pub(crate) fn u64_at(b: &[u8], pos: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[pos..pos + 8]);
    u64::from_le_bytes(buf)
}

fn small(n: usize) -> u32 {
    u32::try_from(n).expect("image section exceeds u32 range")
}

fn push_u32s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = u32>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends `n` strings to the shared heap and writes their `(n+1)` u64
/// offset table into `out`.
fn push_string_table<'a>(
    heap: &mut Vec<u8>,
    out: &mut Vec<u8>,
    strings: impl Iterator<Item = &'a str>,
) {
    for s in strings {
        out.extend_from_slice(&(heap.len() as u64).to_le_bytes());
        heap.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&(heap.len() as u64).to_le_bytes());
}

/// Writes a CSR section: `(n+1)` u32 offsets, then the concatenated rows.
fn push_csr(out: &mut Vec<u8>, n: usize, mut row: impl FnMut(usize, &mut Vec<u32>)) {
    let mut offs: Vec<u32> = Vec::with_capacity(n + 1);
    let mut data: Vec<u32> = Vec::new();
    let mut buf: Vec<u32> = Vec::new();
    for i in 0..n {
        offs.push(small(data.len()));
        buf.clear();
        row(i, &mut buf);
        data.extend_from_slice(&buf);
    }
    offs.push(small(data.len()));
    push_u32s(out, offs);
    push_u32s(out, data);
}

/// Packs `kb` into image bytes. Deterministic: a KB with the same triples
/// (same `content_hash`) always packs to byte-identical output.
pub fn pack(kb: &KnowledgeBase) -> Vec<u8> {
    let nc = kb.num_classes();
    let np = kb.num_preds();
    let ni = kb.num_instances();
    let nl = kb.num_literals();
    let ne = kb.num_edges() as u64;
    assert!(
        ne <= u32::MAX as u64,
        "image run offsets are u32: {ne} edges exceed the format limit"
    );

    let mut sections: Vec<Vec<u8>> = vec![Vec::new(); NUM_SECTIONS];

    // Strings: one heap, four offset tables, all in id order.
    let mut heap: Vec<u8> = Vec::new();
    push_string_table(
        &mut heap,
        &mut sections[section::CLASS_STR],
        kb.classes().map(|c| kb.class_name(c)),
    );
    push_string_table(
        &mut heap,
        &mut sections[section::PRED_STR],
        kb.preds().map(|p| kb.pred_name(p)),
    );
    push_string_table(
        &mut heap,
        &mut sections[section::INST_STR],
        kb.instances().map(|i| kb.instance_label(i)),
    );
    push_string_table(
        &mut heap,
        &mut sections[section::LIT_STR],
        (0..nl).map(|l| kb.literal_value(LiteralId::from_index(l))),
    );
    let strings_len = heap.len() as u64;
    sections[section::STRINGS] = heap;

    // Name/label/value lookup tables: ids sorted by string (ties — only
    // possible for homonym instance labels — broken by id).
    let mut class_by_name: Vec<u32> = (0..nc as u32).collect();
    class_by_name.sort_unstable_by(|&a, &b| {
        kb.class_name(ClassId::from_index(a as usize))
            .cmp(kb.class_name(ClassId::from_index(b as usize)))
    });
    push_u32s(&mut sections[section::CLASS_BY_NAME], class_by_name);

    let mut pred_by_name: Vec<u32> = (0..np as u32).collect();
    pred_by_name.sort_unstable_by(|&a, &b| {
        kb.pred_name(PredId::from_index(a as usize))
            .cmp(kb.pred_name(PredId::from_index(b as usize)))
    });
    push_u32s(&mut sections[section::PRED_BY_NAME], pred_by_name);

    let mut inst_by_label: Vec<u32> = (0..ni as u32).collect();
    inst_by_label.sort_unstable_by(|&a, &b| {
        kb.instance_label(InstanceId::from_index(a as usize))
            .cmp(kb.instance_label(InstanceId::from_index(b as usize)))
            .then(a.cmp(&b))
    });
    push_u32s(&mut sections[section::INST_BY_LABEL], inst_by_label);

    let mut lit_by_value: Vec<u32> = (0..nl as u32).collect();
    lit_by_value.sort_unstable_by(|&a, &b| {
        kb.literal_value(LiteralId::from_index(a as usize))
            .cmp(kb.literal_value(LiteralId::from_index(b as usize)))
    });
    push_u32s(&mut sections[section::LIT_BY_VALUE], lit_by_value);

    // Adjacency CSRs, straight from the query surface they will serve.
    push_csr(&mut sections[section::TAX_PARENTS], nc, |i, row| {
        row.extend(
            kb.taxonomy()
                .parents(ClassId::from_index(i))
                .iter()
                .map(|p| p.index() as u32),
        );
    });
    push_csr(&mut sections[section::INST_CLASSES], ni, |i, row| {
        row.extend(
            kb.instance_classes(InstanceId::from_index(i))
                .iter()
                .map(|c| c.index() as u32),
        );
    });
    push_csr(&mut sections[section::DIRECT_INST], nc, |i, row| {
        row.extend(
            kb.direct_instances_of(ClassId::from_index(i))
                .iter()
                .map(|x| x.index() as u32),
        );
    });
    push_csr(&mut sections[section::CLOSED_INST], nc, |i, row| {
        row.extend(
            kb.instances_of(ClassId::from_index(i))
                .iter()
                .map(|x| x.index() as u32),
        );
    });
    push_csr(&mut sections[section::PREDS_OF], ni, |i, row| {
        row.extend(
            kb.preds_of(InstanceId::from_index(i))
                .iter()
                .map(|p| p.index() as u32),
        );
    });

    // SPO runs: (s, p) keys ascend because instances and preds_of both do.
    let mut spo_count: u32 = 0;
    let mut num_spo: u32 = 0;
    for s in kb.instances() {
        for &p in kb.preds_of(s) {
            let objs = kb.objects(s, p);
            sections[section::SPO_KEYS].extend_from_slice(&(s.index() as u32).to_le_bytes());
            sections[section::SPO_KEYS].extend_from_slice(&(p.index() as u32).to_le_bytes());
            sections[section::SPO_OFFS].extend_from_slice(&spo_count.to_le_bytes());
            for &o in objs {
                sections[section::SPO_NODES].extend_from_slice(&encode_node(o).to_le_bytes());
            }
            spo_count += small(objs.len());
            num_spo += 1;
        }
    }
    sections[section::SPO_OFFS].extend_from_slice(&spo_count.to_le_bytes());

    // OSP runs: grouped via a BTreeMap so keys come out sorted.
    let mut osp: std::collections::BTreeMap<(u64, u32), Vec<u32>> =
        std::collections::BTreeMap::new();
    for (s, p, o) in kb.triples() {
        osp.entry((encode_node(o), p.index() as u32))
            .or_default()
            .push(s.index() as u32);
    }
    let num_osp = small(osp.len());
    let mut osp_count: u32 = 0;
    for ((o, p), mut subs) in osp {
        subs.sort_unstable();
        subs.dedup();
        sections[section::OSP_KEYS].extend_from_slice(&o.to_le_bytes());
        sections[section::OSP_KEYS].extend_from_slice(&p.to_le_bytes());
        sections[section::OSP_OFFS].extend_from_slice(&osp_count.to_le_bytes());
        osp_count += small(subs.len());
        push_u32s(&mut sections[section::OSP_SUBJS], subs);
    }
    sections[section::OSP_OFFS].extend_from_slice(&osp_count.to_le_bytes());

    // Header + section table + sections + checksum.
    let body_len: usize = sections.iter().map(Vec::len).sum();
    let mut buf = Vec::with_capacity(BODY_START + body_len + 8);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&kb.content_hash().to_le_bytes());
    buf.extend_from_slice(&small(nc).to_le_bytes());
    buf.extend_from_slice(&small(np).to_le_bytes());
    buf.extend_from_slice(&small(ni).to_le_bytes());
    buf.extend_from_slice(&small(nl).to_le_bytes());
    buf.extend_from_slice(&ne.to_le_bytes());
    buf.extend_from_slice(&num_spo.to_le_bytes());
    buf.extend_from_slice(&num_osp.to_le_bytes());
    buf.extend_from_slice(&strings_len.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // reserved
    debug_assert_eq!(buf.len(), HEADER_LEN);
    let mut offset = BODY_START as u64;
    for s in &sections {
        buf.extend_from_slice(&offset.to_le_bytes());
        buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        offset += s.len() as u64;
    }
    debug_assert_eq!(buf.len(), BODY_START);
    for s in &sections {
        buf.extend_from_slice(s);
    }
    let checksum = image_checksum(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Process-global suffix for temp names, so two threads packing images
/// into one directory never collide.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Packs `kb` and writes it to `path` atomically: a unique
/// `.<name>.<pid>.<seq>.drkb.tmp` sibling is written, fsynced, then
/// renamed over `path`. Readers either see the old image or the complete
/// new one, never a prefix.
pub fn write_image(path: &Path, kb: &KnowledgeBase) -> Result<(), KbImageError> {
    let bytes = pack(kb);
    let dir = path
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("image");
    let tmp = dir.join(format!(
        ".{name}.{}.{}.drkb.tmp",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// A fully validated map of an image's sections. Constructed once at open;
/// after [`ImageLayout::parse`] succeeds, every query-time read is in
/// bounds and every invariant queries rely on (sortedness, id ranges,
/// UTF-8) is known to hold — corrupt files are rejected here, so the query
/// path never panics and never returns silently wrong data.
#[derive(Debug, Clone)]
pub(crate) struct ImageLayout {
    pub content_hash: u64,
    pub num_classes: usize,
    pub num_preds: usize,
    pub num_instances: usize,
    pub num_literals: usize,
    pub num_edges: u64,
    pub num_spo: usize,
    pub num_osp: usize,
    sections: [Range<usize>; NUM_SECTIONS],
}

impl ImageLayout {
    pub fn section<'a>(&self, bytes: &'a [u8], idx: usize) -> &'a [u8] {
        &bytes[self.sections[idx].clone()]
    }

    pub fn parse(bytes: &[u8]) -> Result<Self, KbImageError> {
        if bytes.len() < MIN_LEN {
            return Err(KbImageError::TooShort(bytes.len()));
        }
        // Checksum first: any flipped or missing byte is caught before a
        // single field is trusted.
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64_at(trailer, 0);
        let computed = image_checksum(body);
        if stored != computed {
            return Err(KbImageError::ChecksumMismatch { stored, computed });
        }
        let magic: [u8; 4] = body[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(KbImageError::BadMagic(magic));
        }
        let version = u32_at(body, 4);
        if version != FORMAT_VERSION {
            return Err(KbImageError::BadVersion(version));
        }
        let content_hash = u64_at(body, 8);
        let num_classes = u32_at(body, 16) as usize;
        let num_preds = u32_at(body, 20) as usize;
        let num_instances = u32_at(body, 24) as usize;
        let num_literals = u32_at(body, 28) as usize;
        let num_edges = u64_at(body, 32);
        let num_spo = u32_at(body, 40) as usize;
        let num_osp = u32_at(body, 44) as usize;
        let strings_len = u64_at(body, 48);
        if u64_at(body, 56) != 0 {
            return Err(KbImageError::Malformed("reserved header field is nonzero"));
        }
        if num_edges > u32::MAX as u64 {
            return Err(KbImageError::Malformed(
                "edge count exceeds u32 run offsets",
            ));
        }

        // Section table: packed images are contiguous in table order, so
        // require exactly that — it rules out overlap and hidden gaps.
        let mut sections: [Range<usize>; NUM_SECTIONS] = std::array::from_fn(|_| 0..0);
        let mut expect_off = BODY_START as u64;
        for (i, sec) in sections.iter_mut().enumerate() {
            let off = u64_at(body, HEADER_LEN + i * 16);
            let len = u64_at(body, HEADER_LEN + i * 16 + 8);
            if off != expect_off {
                return Err(KbImageError::Malformed("section table is not contiguous"));
            }
            let end = off
                .checked_add(len)
                .ok_or(KbImageError::Malformed("section length overflows"))?;
            if end > body.len() as u64 {
                return Err(KbImageError::Malformed("section extends past the file"));
            }
            *sec = off as usize..end as usize;
            expect_off = end;
        }
        if expect_off != body.len() as u64 {
            return Err(KbImageError::Malformed("trailing bytes after last section"));
        }

        let layout = ImageLayout {
            content_hash,
            num_classes,
            num_preds,
            num_instances,
            num_literals,
            num_edges,
            num_spo,
            num_osp,
            sections,
        };
        layout.validate(body, strings_len)?;
        Ok(layout)
    }

    /// Structural validation beyond the checksum: section shapes, string
    /// table monotonicity + UTF-8, CSR consistency, id bounds, and the
    /// sort invariants every binary search relies on.
    fn validate(&self, body: &[u8], strings_len: u64) -> Result<(), KbImageError> {
        use section::*;
        let malformed = KbImageError::Malformed;

        let heap = self.section(body, STRINGS);
        if heap.len() as u64 != strings_len {
            return Err(malformed("strings_len disagrees with section table"));
        }

        // String offset tables: (n+1) monotonic u64s into the heap, every
        // slice valid UTF-8 (validated once here; query-time reads trust it).
        let tables = [
            (CLASS_STR, self.num_classes),
            (PRED_STR, self.num_preds),
            (INST_STR, self.num_instances),
            (LIT_STR, self.num_literals),
        ];
        for (idx, n) in tables {
            let sec = self.section(body, idx);
            if sec.len() != (n + 1) * 8 {
                return Err(malformed("string offset table has wrong size"));
            }
            let mut prev = u64_at(sec, 0);
            for i in 1..=n {
                let cur = u64_at(sec, i * 8);
                if cur < prev {
                    return Err(malformed("string offsets are not monotonic"));
                }
                prev = cur;
            }
            if prev > heap.len() as u64 {
                return Err(malformed("string offset past the heap"));
            }
            for i in 0..n {
                let start = u64_at(sec, i * 8) as usize;
                let end = u64_at(sec, (i + 1) * 8) as usize;
                if std::str::from_utf8(&heap[start..end]).is_err() {
                    return Err(malformed("string is not valid UTF-8"));
                }
            }
        }

        // Lookup tables: a permutation of 0..n, strictly ascending by the
        // string they point at (ids break instance-label ties).
        let str_of = |table: usize, id: usize| -> &[u8] {
            let sec = self.section(body, table);
            let start = u64_at(sec, id * 8) as usize;
            let end = u64_at(sec, (id + 1) * 8) as usize;
            &heap[start..end]
        };
        let lookups = [
            (CLASS_BY_NAME, CLASS_STR, self.num_classes, false),
            (PRED_BY_NAME, PRED_STR, self.num_preds, false),
            (INST_BY_LABEL, INST_STR, self.num_instances, true),
            (LIT_BY_VALUE, LIT_STR, self.num_literals, false),
        ];
        for (idx, str_table, n, ties_by_id) in lookups {
            let sec = self.section(body, idx);
            if sec.len() != n * 4 {
                return Err(malformed("lookup table has wrong size"));
            }
            let mut prev: Option<u32> = None;
            for i in 0..n {
                let id = u32_at(sec, i * 4);
                if id as usize >= n {
                    return Err(malformed("lookup table id out of range"));
                }
                if let Some(p) = prev {
                    let ord = str_of(str_table, p as usize).cmp(str_of(str_table, id as usize));
                    let ok = match ord {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => ties_by_id && p < id,
                        std::cmp::Ordering::Greater => false,
                    };
                    if !ok {
                        return Err(malformed("lookup table is not sorted"));
                    }
                }
                prev = Some(id);
            }
        }

        // CSR sections: shape, final-offset consistency, id bounds, and
        // (where the in-memory KB guarantees it) sorted rows.
        let csrs = [
            (TAX_PARENTS, self.num_classes, self.num_classes, false),
            (INST_CLASSES, self.num_instances, self.num_classes, false),
            (DIRECT_INST, self.num_classes, self.num_instances, true),
            (CLOSED_INST, self.num_classes, self.num_instances, true),
            (PREDS_OF, self.num_instances, self.num_preds, true),
        ];
        for (idx, n, id_bound, sorted) in csrs {
            let sec = self.section(body, idx);
            if sec.len() < (n + 1) * 4 || !sec.len().is_multiple_of(4) {
                return Err(malformed("CSR section has wrong size"));
            }
            let data_count = sec.len() / 4 - (n + 1);
            let mut prev_off = u32_at(sec, 0);
            if prev_off != 0 {
                return Err(malformed("CSR does not start at offset zero"));
            }
            for i in 1..=n {
                let off = u32_at(sec, i * 4);
                if off < prev_off || off as usize > data_count {
                    return Err(malformed("CSR offsets are not monotonic"));
                }
                if sorted {
                    let base = (n + 1 + prev_off as usize) * 4;
                    let mut prev_val: Option<u32> = None;
                    for j in 0..(off - prev_off) as usize {
                        let v = u32_at(sec, base + j * 4);
                        if v as usize >= id_bound {
                            return Err(malformed("CSR id out of range"));
                        }
                        if prev_val.is_some_and(|p| p >= v) {
                            return Err(malformed("CSR row is not sorted"));
                        }
                        prev_val = Some(v);
                    }
                }
                prev_off = off;
            }
            if prev_off as usize != data_count {
                return Err(malformed("CSR final offset disagrees with data"));
            }
            if !sorted {
                let base = (n + 1) * 4;
                for j in 0..data_count {
                    if u32_at(sec, base + j * 4) as usize >= id_bound {
                        return Err(malformed("CSR id out of range"));
                    }
                }
            }
        }

        self.validate_runs(body)
    }

    fn validate_runs(&self, body: &[u8]) -> Result<(), KbImageError> {
        use section::*;
        let malformed = KbImageError::Malformed;

        // SPO: strictly ascending (s, p) keys, non-empty runs whose nodes
        // decode, stay in id range, and ascend (has_edge binary-searches).
        let keys = self.section(body, SPO_KEYS);
        let offs = self.section(body, SPO_OFFS);
        let nodes = self.section(body, SPO_NODES);
        if keys.len() != self.num_spo * 8 || offs.len() != (self.num_spo + 1) * 4 {
            return Err(malformed("SPO index has wrong size"));
        }
        if nodes.len() as u64 != self.num_edges * 8 {
            return Err(malformed("SPO nodes disagree with edge count"));
        }
        let mut prev_key: Option<u64> = None;
        let mut prev_off = u32_at(offs, 0);
        if prev_off != 0 {
            return Err(malformed("SPO runs do not start at zero"));
        }
        for r in 0..self.num_spo {
            let s = u32_at(keys, r * 8);
            let p = u32_at(keys, r * 8 + 4);
            if s as usize >= self.num_instances || p as usize >= self.num_preds {
                return Err(malformed("SPO key id out of range"));
            }
            let key = (s as u64) << 32 | p as u64;
            if prev_key.is_some_and(|k| k >= key) {
                return Err(malformed("SPO keys are not sorted"));
            }
            prev_key = Some(key);
            let off = u32_at(offs, (r + 1) * 4);
            if off <= prev_off || off as u64 > self.num_edges {
                return Err(malformed("SPO run offsets are not ascending"));
            }
            let mut prev_node: Option<u64> = None;
            for j in prev_off..off {
                let v = u64_at(nodes, j as usize * 8);
                let node = decode_node(v).ok_or(malformed("SPO node has a bad tag"))?;
                let in_range = match node {
                    Node::Instance(i) => i.index() < self.num_instances,
                    Node::Literal(l) => l.index() < self.num_literals,
                };
                if !in_range {
                    return Err(malformed("SPO node id out of range"));
                }
                if prev_node.is_some_and(|p| p >= v) {
                    return Err(malformed("SPO run is not sorted"));
                }
                prev_node = Some(v);
            }
            prev_off = off;
        }
        if prev_off as u64 != self.num_edges {
            return Err(malformed("SPO runs do not cover all edges"));
        }

        // OSP: same story with 12-byte (o, p) keys and subject-id runs.
        let keys = self.section(body, OSP_KEYS);
        let offs = self.section(body, OSP_OFFS);
        let subs = self.section(body, OSP_SUBJS);
        if keys.len() != self.num_osp * 12 || offs.len() != (self.num_osp + 1) * 4 {
            return Err(malformed("OSP index has wrong size"));
        }
        if subs.len() as u64 != self.num_edges * 4 {
            return Err(malformed("OSP subjects disagree with edge count"));
        }
        let mut prev_key: Option<(u64, u32)> = None;
        let mut prev_off = u32_at(offs, 0);
        if prev_off != 0 {
            return Err(malformed("OSP runs do not start at zero"));
        }
        for r in 0..self.num_osp {
            let o = u64_at(keys, r * 12);
            let p = u32_at(keys, r * 12 + 8);
            let node = decode_node(o).ok_or(malformed("OSP key has a bad tag"))?;
            let in_range = match node {
                Node::Instance(i) => i.index() < self.num_instances,
                Node::Literal(l) => l.index() < self.num_literals,
            };
            if !in_range || p as usize >= self.num_preds {
                return Err(malformed("OSP key id out of range"));
            }
            if prev_key.is_some_and(|k| k >= (o, p)) {
                return Err(malformed("OSP keys are not sorted"));
            }
            prev_key = Some((o, p));
            let off = u32_at(offs, (r + 1) * 4);
            if off <= prev_off || off as u64 > self.num_edges {
                return Err(malformed("OSP run offsets are not ascending"));
            }
            let mut prev_sub: Option<u32> = None;
            for j in prev_off..off {
                let s = u32_at(subs, j as usize * 4);
                if s as usize >= self.num_instances {
                    return Err(malformed("OSP subject id out of range"));
                }
                if prev_sub.is_some_and(|p| p >= s) {
                    return Err(malformed("OSP run is not sorted"));
                }
                prev_sub = Some(s);
            }
            prev_off = off;
        }
        if prev_off as u64 != self.num_edges {
            return Err(malformed("OSP runs do not cover all edges"));
        }
        Ok(())
    }
}
