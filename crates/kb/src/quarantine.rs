//! Quarantine bookkeeping for lenient loaders (DESIGN.md §4c).
//!
//! Real-world dumps are dirty: a handful of malformed lines should not
//! abort a million-line load. The lenient parse entry points
//! ([`ntriples::parse_lenient`](crate::ntriples::parse_lenient) here, and
//! `csv::parse_lenient` in `dr-relation`) skip each malformed record,
//! record a [`Diagnostic`] for it, and keep going. The strict parsers are
//! untouched: same inputs, same first-error rejection.
//!
//! The contract shared by every lenient loader:
//!
//! * every record the strict parser would accept is loaded identically;
//! * every skipped record produces exactly one diagnostic with its 1-based
//!   line (or record) number and the same message the strict parser would
//!   have raised;
//! * diagnostics are capped ([`LenientOptions::max_diagnostics`]) so a
//!   wholly-garbage input cannot balloon memory — the quarantined *count*
//!   keeps counting past the cap.

use std::fmt;

/// One quarantined record: where it was and why it was skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line number (N-Triples) or record number (CSV).
    pub line: usize,
    /// The parse failure, verbatim from the strict grammar.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Options for lenient parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenientOptions {
    /// Maximum number of [`Diagnostic`]s retained; quarantined records past
    /// the cap are still *counted* but their diagnostics are dropped.
    pub max_diagnostics: usize,
}

impl Default for LenientOptions {
    fn default() -> Self {
        Self {
            max_diagnostics: 64,
        }
    }
}

/// The quarantine ledger a lenient parse returns alongside its data: how
/// many records were skipped and (capped) why.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    diagnostics: Vec<Diagnostic>,
    quarantined: usize,
    dropped: usize,
}

impl Quarantine {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one skipped record, retaining its diagnostic unless the
    /// ledger already holds `opts.max_diagnostics` of them.
    pub fn record(&mut self, diagnostic: Diagnostic, opts: &LenientOptions) {
        self.quarantined += 1;
        if self.diagnostics.len() < opts.max_diagnostics {
            self.diagnostics.push(diagnostic);
        } else {
            self.dropped += 1;
        }
    }

    /// Total records skipped (including any past the diagnostic cap).
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Retained diagnostics, in input order (at most the configured cap).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// How many diagnostics were dropped by the cap.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Whether nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.quarantined == 0
    }
}

/// Strips a single leading UTF-8 byte-order mark, the one piece of
/// Windows-tool debris `trim()` does not remove (U+FEFF is not
/// whitespace). Shared by every lenient loader — N-Triples here, CSV and
/// JSON in `dr-relation` — so `dr_kbpack` and the upload paths agree on
/// BOM handling: the mark never reaches a parsed name, header, or value.
pub fn strip_bom(text: &str) -> &str {
    text.strip_prefix('\u{FEFF}').unwrap_or(text)
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} record(s) quarantined", self.quarantined)?;
        if self.dropped > 0 {
            write!(f, " ({} diagnostic(s) dropped by cap)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_cap_then_counts() {
        let opts = LenientOptions { max_diagnostics: 2 };
        let mut q = Quarantine::new();
        assert!(q.is_empty());
        for line in 1..=5 {
            q.record(
                Diagnostic {
                    line,
                    message: "bad".into(),
                },
                &opts,
            );
        }
        assert_eq!(q.quarantined(), 5);
        assert_eq!(q.diagnostics().len(), 2);
        assert_eq!(q.dropped(), 3);
        assert_eq!(q.diagnostics()[0].line, 1);
        assert_eq!(
            q.to_string(),
            "5 record(s) quarantined (3 diagnostic(s) dropped by cap)"
        );
    }

    #[test]
    fn default_cap_is_generous() {
        assert_eq!(LenientOptions::default().max_diagnostics, 64);
        let d = Diagnostic {
            line: 7,
            message: "expected trailing `.`".into(),
        };
        assert_eq!(d.to_string(), "line 7: expected trailing `.`");
    }
}
