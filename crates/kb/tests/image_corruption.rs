//! Corruption-tolerance matrix for the `.drkb` KB image format, mirroring
//! the snapshot layer's `snapshot_corruption.rs`: every prefix truncation
//! of a valid image and a byte flip at every offset must open to a typed
//! [`KbImageError`] — never a panic, never a silently wrong KB — and
//! targeted corruptions hidden behind a re-sealed checksum must reach
//! their *specific* rejections instead of dying as generic checksum
//! failures.

use dr_kb::fixtures::nobel_mini_kb;
use dr_kb::image::{image_checksum, EXTENSION, MAGIC, MIN_LEN};
use dr_kb::{pack, KbImageError, MappedKb};
use std::path::PathBuf;

fn scratch_file(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "dr-image-corrupt-{tag}-{}-{}.{EXTENSION}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes `bytes` to a scratch file and opens it through the mmap path.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<MappedKb, KbImageError> {
    let path = scratch_file(tag);
    std::fs::write(&path, bytes).expect("write image bytes");
    let result = MappedKb::open(&path);
    std::fs::remove_file(&path).ok();
    result
}

/// Recomputes the trailing checksum after a deliberate edit, so the
/// corruption under test is reached instead of `ChecksumMismatch`.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes.truncate(bytes.len() - 8);
    let checksum = image_checksum(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn valid_image() -> Vec<u8> {
    pack(&nobel_mini_kb())
}

/// Reads the little-endian `(offset, len)` pair of section table entry `i`.
fn section_entry(bytes: &[u8], i: usize) -> (usize, usize) {
    let at = 64 + i * 16;
    let off = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
    (off as usize, len as usize)
}

#[test]
fn untampered_image_opens() {
    let kb = nobel_mini_kb();
    let bytes = pack(&kb);
    let mapped = open_bytes("sanity", &bytes).expect("valid image opens");
    assert_eq!(mapped.content_hash(), kb.content_hash());
}

/// Every prefix of a valid file — from empty up to one byte short —
/// opens to an error, never a panic and never an `Ok`.
#[test]
fn every_prefix_truncation_is_a_typed_error() {
    let bytes = valid_image();
    for len in 0..bytes.len() {
        let err = open_bytes("trunc", &bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("prefix of {len}/{} bytes accepted", bytes.len()));
        if len < MIN_LEN {
            assert!(
                matches!(err, KbImageError::TooShort(n) if n == len),
                "prefix {len}: {err}"
            );
        } else {
            assert!(
                matches!(err, KbImageError::ChecksumMismatch { .. }),
                "prefix {len}: {err}"
            );
        }
        assert!(!err.is_absence(), "prefix {len}: truncation is not absence");
    }
}

/// A single flipped bit at every offset — header, section table, string
/// heap, triple runs, and the checksum trailer alike — is caught by the
/// whole-file checksum (or, for trailer flips, the mismatch itself).
#[test]
fn every_byte_flip_is_caught_by_the_checksum() {
    let bytes = valid_image();
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x40;
        let err = open_bytes("flip", &flipped)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {i} accepted"));
        assert!(
            matches!(err, KbImageError::ChecksumMismatch { .. }),
            "flip at byte {i}: {err}"
        );
    }
}

/// A flipped bit at every offset with the checksum re-sealed afterwards:
/// the validator must classify each as a typed error or a still-valid
/// image — it must never panic, whatever structure the flip lands in.
/// (Flips that *are* accepted land in free fields like the content hash,
/// where any value is a well-formed image.)
#[test]
fn resealed_flip_matrix_never_panics() {
    let bytes = valid_image();
    // Skip the trailer: resealing overwrites it anyway.
    for i in 0..bytes.len() - 8 {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x40;
        match open_bytes("reflip", &reseal(flipped)) {
            Ok(_) | Err(_) => {} // reaching here at all is the assertion
        }
    }
}

/// Targeted header corruptions behind a re-sealed checksum reach their
/// specific rejections.
#[test]
fn resealed_header_corruptions_report_specific_errors() {
    let bytes = valid_image();
    assert_eq!(&bytes[..4], &MAGIC, "layout assumption: magic first");

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        open_bytes("magic", &reseal(bad_magic)),
        Err(KbImageError::BadMagic(_))
    ));

    let mut bad_version = bytes.clone();
    bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        open_bytes("version", &reseal(bad_version)),
        Err(KbImageError::BadVersion(99))
    ));

    // Reserved header tail must stay zero in version 1.
    let mut reserved = bytes.clone();
    reserved[56] = 1;
    assert!(matches!(
        open_bytes("reserved", &reseal(reserved)),
        Err(KbImageError::Malformed(_))
    ));

    // An absurd instance count can no longer match the section sizes.
    let mut huge = bytes.clone();
    huge[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        open_bytes("huge-count", &reseal(huge)),
        Err(KbImageError::Malformed(_))
    ));

    // An edge count beyond u32 is rejected before any allocation.
    let mut edges = bytes.clone();
    edges[32..40].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
    assert!(matches!(
        open_bytes("huge-edges", &reseal(edges)),
        Err(KbImageError::Malformed(_))
    ));
}

/// Section-table corruptions: gaps, overlaps, and out-of-bounds ranges are
/// all structural `Malformed` failures — the table must tile the body
/// exactly.
#[test]
fn resealed_section_table_corruptions_are_malformed() {
    let bytes = valid_image();

    // Shift section 1's offset forward: leaves a gap after section 0.
    let (off1, _) = section_entry(&bytes, 1);
    let mut gap = bytes.clone();
    gap[64 + 16..64 + 24].copy_from_slice(&((off1 as u64) + 8).to_le_bytes());
    assert!(matches!(
        open_bytes("gap", &reseal(gap)),
        Err(KbImageError::Malformed(_))
    ));

    // Point section 0 past the end of the file.
    let mut oob = bytes.clone();
    oob[64..72].copy_from_slice(&(bytes.len() as u64).to_le_bytes());
    assert!(matches!(
        open_bytes("oob", &reseal(oob)),
        Err(KbImageError::Malformed(_))
    ));

    // Grow section 0's length: overlaps section 1 and breaks the tiling.
    let (_, len0) = section_entry(&bytes, 0);
    let mut overlap = bytes.clone();
    overlap[72..80].copy_from_slice(&((len0 as u64) + 1).to_le_bytes());
    assert!(matches!(
        open_bytes("overlap", &reseal(overlap)),
        Err(KbImageError::Malformed(_))
    ));
}

/// Payload corruptions behind a valid checksum: broken UTF-8 in the string
/// heap and an unsorted triple run are both caught by validation, not
/// served as silently wrong answers.
#[test]
fn resealed_payload_corruptions_are_malformed() {
    let bytes = valid_image();

    // Section 0 is the string heap; 0xFF is never valid UTF-8.
    let (off0, len0) = section_entry(&bytes, 0);
    assert!(len0 > 0, "fixture has strings");
    let mut bad_utf8 = bytes.clone();
    bad_utf8[off0] = 0xFF;
    assert!(matches!(
        open_bytes("utf8", &reseal(bad_utf8)),
        Err(KbImageError::Malformed(_))
    ));

    // Section 14 holds the sorted (subject, predicate) SPO keys, 8 bytes
    // each; swapping the first two destroys the strict ordering.
    let (off14, len14) = section_entry(&bytes, 14);
    assert!(len14 >= 16, "fixture has at least two SPO runs");
    let mut unsorted = bytes.clone();
    let (a, b) = (off14, off14 + 8);
    for k in 0..8 {
        unsorted.swap(a + k, b + k);
    }
    assert!(matches!(
        open_bytes("unsorted", &reseal(unsorted)),
        Err(KbImageError::Malformed(_))
    ));
}

/// `open_expecting` with a foreign content hash is a `KeyMismatch` — the
/// image itself is fine, it is just not the KB the caller wanted.
#[test]
fn foreign_content_hash_is_a_key_mismatch() {
    let kb = nobel_mini_kb();
    let path = scratch_file("key");
    std::fs::write(&path, pack(&kb)).expect("write image");
    let err = MappedKb::open_expecting(&path, kb.content_hash() ^ 1).expect_err("wrong key");
    assert!(matches!(err, KbImageError::KeyMismatch { .. }), "{err}");
    assert!(!err.is_absence());
    std::fs::remove_file(&path).ok();
}

/// A missing file is the one *absence* case — callers that treat absence
/// as "build from source" must be able to tell it apart from damage.
#[test]
fn missing_image_is_absence_every_corruption_is_not() {
    let missing = scratch_file("missing");
    let err = MappedKb::open(&missing).expect_err("missing file");
    assert!(err.is_absence(), "{err}");

    let bytes = valid_image();
    let mut damaged = bytes.clone();
    damaged[MIN_LEN / 2] ^= 0x10;
    let err = open_bytes("not-absence", &damaged).expect_err("damaged file");
    assert!(!err.is_absence(), "{err}");
}
