//! Byte-level edge cases for the lenient N-Triples loader: files written
//! by Windows tooling (CRLF line endings, UTF-8 BOM) and editors that do
//! or don't leave a trailing newline must all load to the same KB with an
//! empty quarantine — none of these are *malformed*, just inconvenient.

use dr_kb::{ntriples, strip_bom, KnowledgeBase, LenientOptions};

const CLEAN: &str = "<a> <rdf:type> <class:person> .\n<a> <knows> <b> .\n<a> <name> \"Ada\" .\n";

fn load(text: &str) -> (KnowledgeBase, dr_kb::Quarantine) {
    ntriples::parse_lenient(text, &LenientOptions::default()).expect("parse")
}

fn assert_same_kb(text: &str, label: &str) {
    let (clean, q0) = load(CLEAN);
    let (kb, q) = load(text);
    assert!(q0.is_empty());
    assert!(q.is_empty(), "{label}: quarantine should be empty: {q}");
    assert_eq!(
        kb.content_hash(),
        clean.content_hash(),
        "{label}: same triples must hash identically"
    );
    assert_eq!(kb.num_edges(), clean.num_edges(), "{label}");
}

#[test]
fn crlf_line_endings_load_clean() {
    assert_same_kb(&CLEAN.replace('\n', "\r\n"), "CRLF");
}

#[test]
fn utf8_bom_is_stripped_not_quarantined() {
    assert_same_kb(&format!("\u{FEFF}{CLEAN}"), "BOM");
}

#[test]
fn bom_plus_crlf_combine() {
    assert_same_kb(
        &format!("\u{FEFF}{}", CLEAN.replace('\n', "\r\n")),
        "BOM+CRLF",
    );
}

#[test]
fn missing_trailing_newline_loads_clean() {
    assert_same_kb(CLEAN.trim_end(), "no trailing newline");
}

#[test]
fn empty_trailing_lines_load_clean() {
    assert_same_kb(&format!("{CLEAN}\n\n"), "empty trailing lines");
    assert_same_kb(&format!("{CLEAN}\r\n\r\n"), "empty trailing CRLF lines");
}

#[test]
fn bom_only_in_first_line_is_stripped() {
    // A BOM mid-file is real content (a zero-width no-break space inside a
    // label), not a byte-order mark — only the leading one is stripped.
    let text = "<a\u{FEFF}b> <knows> <c> .\n";
    let (kb, q) = load(text);
    assert!(q.is_empty(), "{q}");
    assert!(!kb.instances_labeled("a\u{FEFF}b").is_empty());
}

#[test]
fn strip_bom_is_idempotent_and_single_shot() {
    assert_eq!(strip_bom("\u{FEFF}x"), "x");
    assert_eq!(strip_bom("\u{FEFF}\u{FEFF}x"), "\u{FEFF}x");
    assert_eq!(strip_bom("x"), "x");
    assert_eq!(strip_bom(""), "");
}

#[test]
fn lenient_bytes_handles_bom_and_crlf() {
    let bytes = format!("\u{FEFF}{}", CLEAN.replace('\n', "\r\n")).into_bytes();
    let (kb, q) = ntriples::parse_lenient_bytes(&bytes, &LenientOptions::default()).expect("parse");
    assert!(q.is_empty(), "{q}");
    let (clean, _) = load(CLEAN);
    assert_eq!(kb.content_hash(), clean.content_hash());
}
