//! Byte-exact golden test for the `.drkb` image format: packing the
//! `nobel-mini` fixture must produce the identical byte sequence on every
//! run and machine — the format is versioned, the packer is deterministic,
//! and any drift here is a format change that needs a `FORMAT_VERSION`
//! bump (or at minimum a deliberate golden regeneration), mirroring
//! `crates/core/tests/trace_schema.rs`.

use dr_kb::fixtures::nobel_mini_kb;
use dr_kb::image::{FORMAT_VERSION, MAGIC, MIN_LEN};
use dr_kb::pack;

const GOLDEN: &[u8] = include_bytes!("golden/nobel_mini.drkb");

/// Regenerates the golden image. Run explicitly after an intentional
/// format change:
/// `cargo test -p dr-kb --test image_golden -- --ignored`.
#[test]
#[ignore = "writes the golden file; run only to regenerate it"]
fn regenerate_golden() {
    let bytes = pack(&nobel_mini_kb());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/nobel_mini.drkb");
    std::fs::write(path, bytes).expect("write golden image");
}

#[test]
fn packed_nobel_mini_matches_golden_byte_for_byte() {
    let bytes = pack(&nobel_mini_kb());
    assert_eq!(bytes.len(), GOLDEN.len(), "image size drifted");
    if bytes != GOLDEN {
        let first_diff = bytes
            .iter()
            .zip(GOLDEN)
            .position(|(a, b)| a != b)
            .unwrap_or(bytes.len().min(GOLDEN.len()));
        panic!(
            "image bytes drifted from the golden file (first difference at \
             offset {first_diff}); if the format change is intentional, bump \
             FORMAT_VERSION and regenerate crates/kb/tests/golden/nobel_mini.drkb"
        );
    }
}

#[test]
fn golden_image_layout_pins_the_format_header() {
    assert!(GOLDEN.len() >= MIN_LEN);
    assert_eq!(&GOLDEN[..4], &MAGIC, "magic bytes");
    let version = u32::from_le_bytes(GOLDEN[4..8].try_into().expect("4 bytes"));
    assert_eq!(version, FORMAT_VERSION, "format version field");
    let content_hash = u64::from_le_bytes(GOLDEN[8..16].try_into().expect("8 bytes"));
    assert_eq!(
        content_hash,
        nobel_mini_kb().content_hash(),
        "stored content hash keys the image to its source KB"
    );
}
