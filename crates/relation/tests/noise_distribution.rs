//! Statistical checks on the noise injector: the realized error mix must
//! match the requested rates across seeds, not just for one lucky seed.

use dr_relation::noise::{inject, ColumnSwapSource, NoiseSpec};
use dr_relation::{ErrorKind, Relation, Schema};

fn sample(n: usize) -> Relation {
    let schema = Schema::new("R", &["A", "B", "C", "D"]);
    let mut r = Relation::new(schema);
    for i in 0..n {
        r.push_strs(&[
            &format!("a{i}"),
            &format!("b{}", i % 13),
            &format!("c{}", i % 7),
            &format!("d{}", i % 5),
        ]);
    }
    r
}

#[test]
fn error_counts_are_exact_across_seeds() {
    let clean = sample(250); // 1000 cells
    for seed in 0..20 {
        for rate_pct in [4usize, 10, 20] {
            let spec = NoiseSpec::new(rate_pct as f64 / 100.0, seed);
            let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
            assert_eq!(log.len(), rate_pct * 10, "seed {seed}, rate {rate_pct}%");
        }
    }
}

#[test]
fn typo_share_is_respected_within_tolerance() {
    let clean = sample(500); // 2000 cells
    for seed in 0..10 {
        let spec = NoiseSpec::new(0.10, seed).with_typo_share(0.5);
        let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
        let typos = log.iter().filter(|e| e.kind == ErrorKind::Typo).count();
        let share = typos as f64 / log.len() as f64;
        // Semantic fallback can only push the share up, never down.
        assert!(
            (0.48..=0.65).contains(&share),
            "seed {seed}: typo share {share}"
        );
    }
}

#[test]
fn errors_spread_across_rows_and_columns() {
    let clean = sample(400);
    let spec = NoiseSpec::new(0.10, 3);
    let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
    let rows: dr_kb::FxHashSet<usize> = log.iter().map(|e| e.cell.row).collect();
    let cols: dr_kb::FxHashSet<usize> = log.iter().map(|e| e.cell.attr.index()).collect();
    assert_eq!(cols.len(), 4, "every column gets some errors");
    // 160 errors over 400 rows: most land on distinct rows.
    assert!(rows.len() > 100, "{}", rows.len());
}

#[test]
fn seeds_produce_disjoint_error_patterns() {
    let clean = sample(200);
    let spec_a = NoiseSpec::new(0.05, 100);
    let spec_b = NoiseSpec::new(0.05, 101);
    let (_, log_a) = inject(&clean, &spec_a, &ColumnSwapSource);
    let (_, log_b) = inject(&clean, &spec_b, &ColumnSwapSource);
    let cells_a: dr_kb::FxHashSet<_> = log_a.iter().map(|e| e.cell).collect();
    let overlap = log_b.iter().filter(|e| cells_a.contains(&e.cell)).count();
    // 40 of 800 cells each: overlap should be far below identity.
    assert!(overlap < log_b.len() / 2, "overlap {overlap}");
}
