//! Byte-level edge cases for the lenient CSV and JSON relation loaders:
//! CRLF line endings, a leading UTF-8 BOM, and trailing empty lines are
//! artifacts of the writing tool, not malformed data — they must load to
//! the same relation with an empty quarantine, and the BOM must never end
//! up glued to the first attribute name.

use dr_kb::LenientOptions;
use dr_relation::{csv, json, Relation};

const CSV_CLEAN: &str = "Name,City\nAda,London\nGrace,Arlington\n";

fn csv_load(text: &str) -> (Relation, dr_kb::Quarantine) {
    csv::parse_lenient("R", text, &LenientOptions::default()).expect("parse")
}

fn attr_names(rel: &Relation) -> Vec<String> {
    rel.schema().attrs().map(|(_, n)| n.to_owned()).collect()
}

fn assert_same_csv(text: &str, label: &str) {
    let (clean, _) = csv_load(CSV_CLEAN);
    let (rel, q) = csv_load(text);
    assert!(q.is_empty(), "{label}: quarantine should be empty: {q}");
    assert_eq!(attr_names(&rel), attr_names(&clean), "{label}: header");
    assert_eq!(rel.len(), clean.len(), "{label}: row count");
    for (a, b) in rel.tuples().iter().zip(clean.tuples()) {
        assert_eq!(a.cells(), b.cells(), "{label}: rows");
    }
}

#[test]
fn csv_crlf_line_endings_load_clean() {
    assert_same_csv(&CSV_CLEAN.replace('\n', "\r\n"), "CRLF");
}

#[test]
fn csv_utf8_bom_does_not_corrupt_first_attr() {
    let (rel, q) = csv_load(&format!("\u{FEFF}{CSV_CLEAN}"));
    assert!(q.is_empty(), "{q}");
    assert_eq!(
        attr_names(&rel),
        vec!["Name".to_owned(), "City".to_owned()],
        "BOM must not be glued to the first header field"
    );
    assert_same_csv(&format!("\u{FEFF}{CSV_CLEAN}"), "BOM");
}

#[test]
fn csv_bom_plus_crlf_combine() {
    assert_same_csv(
        &format!("\u{FEFF}{}", CSV_CLEAN.replace('\n', "\r\n")),
        "BOM+CRLF",
    );
}

#[test]
fn csv_trailing_newline_variants_load_clean() {
    assert_same_csv(CSV_CLEAN.trim_end(), "no trailing newline");
    assert_same_csv(&format!("{CSV_CLEAN}\n"), "empty trailing line");
    assert_same_csv(
        &format!("{}\r\n", CSV_CLEAN.replace('\n', "\r\n")),
        "empty trailing CRLF line",
    );
}

#[test]
fn csv_strict_parser_gets_the_same_treatment() {
    let rel = csv::parse("R", &format!("\u{FEFF}{}", CSV_CLEAN.replace('\n', "\r\n")))
        .expect("strict parse");
    assert_eq!(attr_names(&rel), vec!["Name".to_owned(), "City".to_owned()]);
    assert_eq!(rel.len(), 2);
}

#[test]
fn csv_lenient_bytes_handles_bom_and_crlf() {
    let bytes = format!("\u{FEFF}{}", CSV_CLEAN.replace('\n', "\r\n")).into_bytes();
    let (rel, q) =
        csv::parse_lenient_bytes("R", &bytes, &LenientOptions::default()).expect("parse");
    assert!(q.is_empty(), "{q}");
    assert_eq!(rel.len(), 2);
}

const JSON_CLEAN: &str =
    r#"{"header":["Name","City"],"rows":[["Ada","London"],["Grace","Arlington"]]}"#;

fn json_variants() -> Vec<(String, &'static str)> {
    vec![
        (format!("\u{FEFF}{JSON_CLEAN}"), "BOM"),
        (format!("{JSON_CLEAN}\r\n"), "trailing CRLF"),
        (
            format!("\u{FEFF}{JSON_CLEAN}\r\n\r\n"),
            "BOM + trailing empty CRLF lines",
        ),
        (format!("{JSON_CLEAN}\n\n"), "trailing empty lines"),
    ]
}

#[test]
fn json_bom_and_line_ending_variants_load_clean() {
    let (clean, q0) = json::parse_lenient("R", JSON_CLEAN, &LenientOptions::default())
        .expect("clean json parses");
    assert!(q0.is_empty());
    for (text, label) in json_variants() {
        let (rel, q) = json::parse_lenient("R", &text, &LenientOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(q.is_empty(), "{label}: {q}");
        assert_eq!(attr_names(&rel), attr_names(&clean), "{label}");
        assert_eq!(rel.len(), clean.len(), "{label}");
        for (a, b) in rel.tuples().iter().zip(clean.tuples()) {
            assert_eq!(a.cells(), b.cells(), "{label}");
        }
    }
}

#[test]
fn json_bytes_twin_handles_bom() {
    let bytes = format!("\u{FEFF}{JSON_CLEAN}").into_bytes();
    let (rel, q) =
        json::parse_lenient_bytes("R", &bytes, &LenientOptions::default()).expect("parse");
    assert!(q.is_empty(), "{q}");
    assert_eq!(rel.len(), 2);
}

#[test]
fn json_mid_document_bom_is_still_an_error() {
    // Only a leading BOM is tolerated; one inside the document is not
    // whitespace and must still fail like any stray character.
    let text = "{\u{FEFF}}".to_owned();
    assert!(json::parse_lenient("R", &text, &LenientOptions::default()).is_err());
}
