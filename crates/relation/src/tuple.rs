//! Tuples with per-cell correctness marks.
//!
//! Applying a detective rule marks attribute values as **positive** (`+` in
//! the paper): confirmed correct, and frozen — no later rule may change them
//! (§III-B). A [`Tuple`] carries its cell values plus that mark vector.

use crate::schema::{AttrId, Schema};
use std::fmt;
use std::sync::Arc;

/// Correctness state of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mark {
    /// Correctness unknown (the initial state).
    #[default]
    Unknown,
    /// Confirmed correct (`+`). Frozen against further updates.
    Positive,
}

/// One row of a relation, with marks.
#[derive(Clone, PartialEq, Eq)]
pub struct Tuple {
    cells: Vec<String>,
    marks: Vec<Mark>,
}

impl Tuple {
    /// Builds an unmarked tuple from cell values.
    pub fn new(cells: Vec<String>) -> Self {
        let marks = vec![Mark::Unknown; cells.len()];
        Self { cells, marks }
    }

    /// Builds an unmarked tuple from string slices.
    pub fn from_strs(cells: &[&str]) -> Self {
        Self::new(cells.iter().map(|&c| c.to_owned()).collect())
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// Value of attribute `attr`.
    #[inline]
    pub fn get(&self, attr: AttrId) -> &str {
        &self.cells[attr.index()]
    }

    /// All cell values in column order.
    pub fn cells(&self) -> &[String] {
        &self.cells
    }

    /// Overwrites the value of `attr`.
    ///
    /// # Panics
    /// Panics if the cell is marked positive — positive cells are frozen, and
    /// writing one is a logic error in the caller.
    pub fn set(&mut self, attr: AttrId, value: impl Into<String>) {
        assert_ne!(
            self.marks[attr.index()],
            Mark::Positive,
            "attempted to overwrite a positively marked cell"
        );
        self.cells[attr.index()] = value.into();
    }

    /// Mark of attribute `attr`.
    #[inline]
    pub fn mark(&self, attr: AttrId) -> Mark {
        self.marks[attr.index()]
    }

    /// Whether `attr` is marked positive.
    #[inline]
    pub fn is_positive(&self, attr: AttrId) -> bool {
        self.marks[attr.index()] == Mark::Positive
    }

    /// Marks `attr` as positive (idempotent).
    pub fn mark_positive(&mut self, attr: AttrId) {
        self.marks[attr.index()] = Mark::Positive;
    }

    /// Ids of positively marked attributes, in column order.
    pub fn positive_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.marks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == Mark::Positive)
            .map(|(i, _)| AttrId::from_index(i))
    }

    /// Number of positively marked cells.
    pub fn positive_count(&self) -> usize {
        self.marks.iter().filter(|&&m| m == Mark::Positive).count()
    }

    /// Whether any cell is marked positive (a *marked tuple*, §III-B).
    pub fn is_marked(&self) -> bool {
        self.marks.contains(&Mark::Positive)
    }

    /// Clears all marks (keeps values).
    pub fn clear_marks(&mut self) {
        self.marks.fill(Mark::Unknown);
    }

    /// Renders the tuple in the paper's `value⁺` notation against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> TupleDisplay<'a> {
        TupleDisplay {
            tuple: self,
            schema,
        }
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{cell}")?;
            if self.marks[i] == Mark::Positive {
                write!(f, "⁺")?;
            }
        }
        write!(f, ")")
    }
}

/// Pretty-printer pairing a tuple with its schema.
pub struct TupleDisplay<'a> {
    tuple: &'a Tuple,
    schema: &'a Schema,
}

impl fmt::Display for TupleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name())?;
        for (i, (attr, name)) in self.schema.attrs().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {}", self.tuple.get(attr))?;
            if self.tuple.is_positive(attr) {
                write!(f, "⁺")?;
            }
        }
        write!(f, ")")
    }
}

/// A tuple paired with its (shared) schema — convenience for APIs that would
/// otherwise take the two separately.
#[derive(Debug, Clone)]
pub struct OwnedRow {
    /// The schema the tuple conforms to.
    pub schema: Arc<Schema>,
    /// The tuple itself.
    pub tuple: Tuple,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["A", "B", "C"])
    }

    #[test]
    fn get_set_roundtrip() {
        let s = schema();
        let mut t = Tuple::from_strs(&["1", "2", "3"]);
        let b = s.attr_expect("B");
        t.set(b, "two");
        assert_eq!(t.get(b), "two");
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn marks_start_unknown() {
        let t = Tuple::from_strs(&["x"]);
        assert_eq!(t.mark(AttrId::from_index(0)), Mark::Unknown);
        assert!(!t.is_marked());
        assert_eq!(t.positive_count(), 0);
    }

    #[test]
    fn mark_positive_is_idempotent_and_freezes() {
        let s = schema();
        let mut t = Tuple::from_strs(&["1", "2", "3"]);
        let a = s.attr_expect("A");
        t.mark_positive(a);
        t.mark_positive(a);
        assert!(t.is_positive(a));
        assert_eq!(t.positive_count(), 1);
        assert!(t.is_marked());
    }

    #[test]
    #[should_panic(expected = "positively marked")]
    fn writing_frozen_cell_panics() {
        let s = schema();
        let mut t = Tuple::from_strs(&["1", "2", "3"]);
        let a = s.attr_expect("A");
        t.mark_positive(a);
        t.set(a, "changed");
    }

    #[test]
    fn positive_attrs_in_order() {
        let mut t = Tuple::from_strs(&["1", "2", "3"]);
        t.mark_positive(AttrId::from_index(2));
        t.mark_positive(AttrId::from_index(0));
        let ids: Vec<usize> = t.positive_attrs().map(AttrId::index).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn clear_marks_resets() {
        let mut t = Tuple::from_strs(&["1"]);
        t.mark_positive(AttrId::from_index(0));
        t.clear_marks();
        assert!(!t.is_marked());
    }

    #[test]
    fn debug_uses_plus_notation() {
        let mut t = Tuple::from_strs(&["Avram Hershko", "Haifa"]);
        t.mark_positive(AttrId::from_index(0));
        assert_eq!(format!("{t:?}"), "(Avram Hershko⁺, Haifa)");
    }

    #[test]
    fn display_includes_attr_names() {
        let s = Schema::new("Nobel", &["Name", "City"]);
        let mut t = Tuple::from_strs(&["Curie", "Paris"]);
        t.mark_positive(s.attr_expect("City"));
        let rendered = t.display(&s).to_string();
        assert_eq!(rendered, "Nobel(Name: Curie, City: Paris⁺)");
    }
}
