//! Relation schemas: named attribute lists with fast name→id lookup.

use dr_kb::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies an attribute (column) inside one [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub(crate) u16);

impl AttrId {
    /// Builds an id from a raw column index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        AttrId(u16::try_from(i).expect("more than u16::MAX attributes"))
    }

    /// The raw column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An ordered list of named attributes.
///
/// Schemas are immutable once built and shared via [`Arc`] between a relation
/// and the rules that reference its columns.
#[derive(Debug, Clone)]
pub struct Schema {
    name: String,
    attributes: Vec<String>,
    by_name: FxHashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from a relation name and attribute names.
    ///
    /// # Panics
    /// Panics on duplicate attribute names.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Arc<Self> {
        let attributes: Vec<String> = attributes.iter().map(|&a| a.to_owned()).collect();
        let mut by_name = FxHashMap::default();
        for (i, a) in attributes.iter().enumerate() {
            let prev = by_name.insert(a.clone(), AttrId::from_index(i));
            assert!(prev.is_none(), "duplicate attribute `{a}`");
        }
        Arc::new(Self {
            name: name.into(),
            attributes,
            by_name,
        })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute name for `attr`.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attributes[attr.index()]
    }

    /// Resolves an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an attribute by name, panicking with a useful message when
    /// absent. For test and fixture code.
    pub fn attr_expect(&self, name: &str) -> AttrId {
        self.attr(name)
            .unwrap_or_else(|| panic!("schema `{}` has no attribute `{name}`", self.name))
    }

    /// Iterates over `(id, name)` pairs in column order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId::from_index(i), a.as_str()))
    }

    /// All attribute ids in column order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attributes.len()).map(AttrId::from_index)
    }

    /// A stable 64-bit fingerprint of the schema shape: the relation name
    /// plus the ordered attribute names. Two `Schema` values compare equal
    /// iff they fingerprint equal (modulo hash collisions), so the
    /// fingerprint can key caches shared across relations of one schema.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = dr_kb::hash::FxHasher::default();
        self.name.hash(&mut h);
        self.attributes.hash(&mut h);
        h.finish()
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.attributes == other.attributes
    }
}

impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_id() {
        let s = Schema::new("Nobel", &["Name", "DOB", "Country"]);
        assert_eq!(s.arity(), 3);
        let dob = s.attr("DOB").unwrap();
        assert_eq!(dob.index(), 1);
        assert_eq!(s.attr_name(dob), "DOB");
        assert_eq!(s.attr("Missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_panic() {
        Schema::new("R", &["A", "A"]);
    }

    #[test]
    fn attrs_iterate_in_order() {
        let s = Schema::new("R", &["X", "Y"]);
        let names: Vec<&str> = s.attrs().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["X", "Y"]);
    }

    #[test]
    fn equality_ignores_map_internals() {
        let a = Schema::new("R", &["X"]);
        let b = Schema::new("R", &["X"]);
        assert_eq!(*a, *b);
        let c = Schema::new("R2", &["X"]);
        assert_ne!(*a, *c);
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let a = Schema::new("R", &["X", "Y"]);
        let b = Schema::new("R", &["X", "Y"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different name, attribute set, or attribute *order* all differ.
        assert_ne!(
            a.fingerprint(),
            Schema::new("R2", &["X", "Y"]).fingerprint()
        );
        assert_ne!(a.fingerprint(), Schema::new("R", &["X"]).fingerprint());
        assert_ne!(a.fingerprint(), Schema::new("R", &["Y", "X"]).fingerprint());
    }
}
