//! Ground-truth bookkeeping for repair evaluation.

use crate::relation::{CellRef, Relation};

/// The clean version of a relation, used to judge repairs.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    clean: Relation,
}

impl GroundTruth {
    /// Wraps the clean relation.
    pub fn new(clean: Relation) -> Self {
        Self { clean }
    }

    /// The clean relation.
    pub fn clean(&self) -> &Relation {
        &self.clean
    }

    /// The correct value for a cell.
    pub fn correct_value(&self, cell: CellRef) -> &str {
        self.clean.value(cell)
    }

    /// Whether `value` is the correct value for `cell`.
    pub fn is_correct(&self, cell: CellRef, value: &str) -> bool {
        self.clean.value(cell) == value
    }

    /// Cells where `other` disagrees with the clean relation, in row-major
    /// order.
    ///
    /// # Panics
    /// Panics if the two relations have different shapes.
    pub fn erroneous_cells(&self, other: &Relation) -> Vec<CellRef> {
        assert_eq!(self.clean.len(), other.len(), "row count mismatch");
        assert_eq!(
            self.clean.schema().arity(),
            other.schema().arity(),
            "arity mismatch"
        );
        self.clean
            .cell_refs()
            .filter(|&c| self.clean.value(c) != other.value(c))
            .collect()
    }

    /// Number of cells where `other` disagrees with the clean relation.
    pub fn error_count(&self, other: &Relation) -> usize {
        self.erroneous_cells(other).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{inject, ColumnSwapSource, NoiseSpec};
    use crate::schema::Schema;

    fn clean() -> Relation {
        let schema = Schema::new("R", &["A", "B"]);
        let mut r = Relation::new(schema);
        for i in 0..20 {
            r.push_strs(&[&format!("a{i}"), &format!("b{}", i % 4)]);
        }
        r
    }

    #[test]
    fn no_errors_when_identical() {
        let c = clean();
        let gt = GroundTruth::new(c.clone());
        assert!(gt.erroneous_cells(&c).is_empty());
        assert_eq!(gt.error_count(&c), 0);
    }

    #[test]
    fn detects_injected_errors_exactly() {
        let c = clean();
        let gt = GroundTruth::new(c.clone());
        let (dirty, log) = inject(&c, &NoiseSpec::new(0.15, 9), &ColumnSwapSource);
        let found = gt.erroneous_cells(&dirty);
        let injected: Vec<_> = log.iter().map(|e| e.cell).collect();
        assert_eq!(found, injected);
    }

    #[test]
    fn is_correct_consults_clean_value() {
        let c = clean();
        let gt = GroundTruth::new(c);
        let cell = CellRef {
            row: 3,
            attr: gt.clean().schema().attr_expect("A"),
        };
        assert!(gt.is_correct(cell, "a3"));
        assert!(!gt.is_correct(cell, "a4"));
        assert_eq!(gt.correct_value(cell), "a3");
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn shape_mismatch_panics() {
        let c = clean();
        let gt = GroundTruth::new(c.clone());
        let mut shorter = c;
        let _ = shorter.tuples_mut(); // no-op; build a truly shorter relation
        let schema = shorter.schema().clone();
        let shorter = Relation::new(schema);
        gt.erroneous_cells(&shorter);
    }
}
