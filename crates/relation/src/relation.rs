//! The relation (table) container.

use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use std::fmt;
use std::sync::Arc;

/// Identifies one cell in a relation: `(row, attribute)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    /// Row index into the relation.
    pub row: usize,
    /// Column of the cell.
    pub attr: AttrId,
}

/// A table: a shared schema plus rows of [`Tuple`]s.
#[derive(Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation from ready-made tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from the schema's.
    pub fn from_tuples(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        for (i, t) in tuples.iter().enumerate() {
            assert_eq!(
                t.arity(),
                schema.arity(),
                "tuple {i} has arity {} but schema `{}` has arity {}",
                t.arity(),
                schema.name(),
                schema.arity()
            );
        }
        Self { schema, tuples }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Appends a tuple.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push(&mut self, tuple: Tuple) {
        assert_eq!(tuple.arity(), self.schema.arity(), "arity mismatch");
        self.tuples.push(tuple);
    }

    /// Appends a tuple built from string slices.
    pub fn push_strs(&mut self, cells: &[&str]) {
        self.push(Tuple::from_strs(cells));
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at `row`.
    pub fn tuple(&self, row: usize) -> &Tuple {
        &self.tuples[row]
    }

    /// Mutable access to the tuple at `row`.
    pub fn tuple_mut(&mut self, row: usize) -> &mut Tuple {
        &mut self.tuples[row]
    }

    /// All tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to all tuples.
    pub fn tuples_mut(&mut self) -> &mut [Tuple] {
        &mut self.tuples
    }

    /// The value at `cell`.
    pub fn value(&self, cell: CellRef) -> &str {
        self.tuples[cell.row].get(cell.attr)
    }

    /// Iterates over every cell reference in row-major order.
    pub fn cell_refs(&self) -> impl Iterator<Item = CellRef> + '_ {
        let arity = self.schema.arity();
        (0..self.tuples.len()).flat_map(move |row| {
            (0..arity).map(move |a| CellRef {
                row,
                attr: AttrId::from_index(a),
            })
        })
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.tuples.len() * self.schema.arity()
    }

    /// Distinct values of one column, in first-occurrence order.
    pub fn column_values(&self, attr: AttrId) -> Vec<&str> {
        let mut seen = dr_kb::FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.tuples {
            let v = t.get(attr);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Clears every tuple's marks.
    pub fn clear_marks(&mut self) {
        for t in &mut self.tuples {
            t.clear_marks();
        }
    }

    /// Total positively marked cells across all tuples (the paper's #-POS).
    pub fn positive_count(&self) -> usize {
        self.tuples.iter().map(Tuple::positive_count).sum()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("schema", &self.schema.name())
            .field("arity", &self.schema.arity())
            .field("tuples", &self.tuples.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nobel() -> Relation {
        let schema = Schema::new("Nobel", &["Name", "City"]);
        let mut r = Relation::new(schema);
        r.push_strs(&["Avram Hershko", "Karcag"]);
        r.push_strs(&["Marie Curie", "Paris"]);
        r
    }

    #[test]
    fn push_and_read() {
        let r = nobel();
        assert_eq!(r.len(), 2);
        let city = r.schema().attr_expect("City");
        assert_eq!(r.tuple(0).get(city), "Karcag");
        assert_eq!(r.value(CellRef { row: 1, attr: city }), "Paris");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_push() {
        let mut r = nobel();
        r.push_strs(&["only one"]);
    }

    #[test]
    fn cell_refs_enumerate_all() {
        let r = nobel();
        assert_eq!(r.cell_refs().count(), 4);
        assert_eq!(r.cell_count(), 4);
    }

    #[test]
    fn column_values_dedupe() {
        let mut r = nobel();
        r.push_strs(&["Third Person", "Paris"]);
        let city = r.schema().attr_expect("City");
        assert_eq!(r.column_values(city), vec!["Karcag", "Paris"]);
    }

    #[test]
    fn positive_count_sums_rows() {
        let mut r = nobel();
        let name = r.schema().attr_expect("Name");
        let city = r.schema().attr_expect("City");
        r.tuple_mut(0).mark_positive(name);
        r.tuple_mut(1).mark_positive(name);
        r.tuple_mut(1).mark_positive(city);
        assert_eq!(r.positive_count(), 3);
        r.clear_marks();
        assert_eq!(r.positive_count(), 0);
    }

    #[test]
    fn from_tuples_validates() {
        let schema = Schema::new("R", &["A"]);
        let r = Relation::from_tuples(schema.clone(), vec![Tuple::from_strs(&["x"])]);
        assert_eq!(r.len(), 1);
    }
}
