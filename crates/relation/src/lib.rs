//! # dr-relation — relational substrate
//!
//! Tables for the detective-rules reproduction: schemas, tuples with
//! per-cell positive marks (`value⁺` in the paper), CSV interchange, the
//! paper's noise model (typos + semantic errors at rate `e%`), and
//! ground-truth bookkeeping for repair evaluation.
//!
//! ```
//! use dr_relation::{Relation, Schema};
//!
//! let schema = Schema::new("Nobel", &["Name", "City"]);
//! let mut relation = Relation::new(schema);
//! relation.push_strs(&["Avram Hershko", "Karcag"]);
//!
//! let city = relation.schema().attr_expect("City");
//! relation.tuple_mut(0).set(city, "Haifa");
//! relation.tuple_mut(0).mark_positive(city);
//! assert!(relation.tuple(0).is_positive(city));
//! ```

#![warn(missing_docs)]
// Resilience hygiene (DESIGN.md §4c): library code must surface failures as
// typed errors, not panics. `.expect()` stays available for genuine
// invariants — the message documents why the panic cannot fire.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod csv;
pub mod ground_truth;
pub mod json;
pub mod noise;
pub mod relation;
pub mod schema;
pub mod tuple;

pub use ground_truth::GroundTruth;
pub use noise::{inject, ColumnSwapSource, ErrorKind, InjectedError, NoiseSpec, SemanticSource};
pub use relation::{CellRef, Relation};
pub use schema::{AttrId, Schema};
pub use tuple::{Mark, Tuple};
