//! Error injection, reproducing the paper's noise model (§V-A):
//!
//! > "Noises injected ... have two types: (i) typos; (ii) semantic errors:
//! > the value is replaced with a different one from a semantically related
//! > attribute. Errors were produced by adding noises with a certain rate
//! > e%, i.e., the percentage of dirty cells over all data cells."
//!
//! Injection is deterministic given the seed, records every change, and
//! guarantees the dirty value differs from the clean value.

use crate::relation::{CellRef, Relation};
use crate::schema::AttrId;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which kind of noise dirtied a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Character-level perturbation of the clean value.
    Typo,
    /// Replacement by a semantically related (but wrong) value.
    Semantic,
}

/// One injected error, for ground-truth bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// The dirtied cell.
    pub cell: CellRef,
    /// The original (correct) value.
    pub clean: String,
    /// The injected (wrong) value.
    pub dirty: String,
    /// The noise type used.
    pub kind: ErrorKind,
}

/// Supplies semantically related wrong values for cells.
pub trait SemanticSource {
    /// A wrong-but-related replacement for the cell's clean value, or `None`
    /// if this source has nothing better than a typo for that cell.
    fn related_value(&self, relation: &Relation, cell: CellRef, rng: &mut StdRng)
        -> Option<String>;
}

/// Default semantic source: replaces a value with a *different* value drawn
/// from the same column — a value of the right domain in the wrong row,
/// which is how the UIS generator produces semantic errors.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColumnSwapSource;

impl SemanticSource for ColumnSwapSource {
    fn related_value(
        &self,
        relation: &Relation,
        cell: CellRef,
        rng: &mut StdRng,
    ) -> Option<String> {
        let current = relation.value(cell);
        let others: Vec<&str> = relation
            .column_values(cell.attr)
            .into_iter()
            .filter(|&v| v != current)
            .collect();
        others.choose(rng).map(|&v| v.to_owned())
    }
}

/// Noise-injection parameters.
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Fraction of all data cells to dirty (`e%` in the paper), in `[0, 1]`.
    pub error_rate: f64,
    /// Fraction of errors that are typos (the rest are semantic), in `[0, 1]`.
    pub typo_share: f64,
    /// RNG seed; equal seeds give identical injections.
    pub seed: u64,
    /// Columns never dirtied (e.g. a key attribute used to anchor tuples).
    pub excluded_attrs: Vec<AttrId>,
}

impl NoiseSpec {
    /// A spec with the paper's default 50/50 typo/semantic split.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        Self {
            error_rate,
            typo_share: 0.5,
            seed,
            excluded_attrs: Vec::new(),
        }
    }

    /// Sets the typo share (the remainder becomes semantic errors).
    pub fn with_typo_share(mut self, share: f64) -> Self {
        self.typo_share = share;
        self
    }

    /// Excludes columns from injection.
    pub fn with_excluded(mut self, attrs: Vec<AttrId>) -> Self {
        self.excluded_attrs = attrs;
        self
    }
}

const TYPO_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z',
];

/// Applies 1–2 character edits to `value`, guaranteeing a different result.
pub fn make_typo(value: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        // Nothing to perturb: fabricate a short junk token.
        let len = rng.gen_range(1..=3);
        return (0..len)
            .map(|_| *TYPO_ALPHABET.choose(rng).expect("nonempty"))
            .collect();
    }
    let edits = if chars.len() > 3 && rng.gen_bool(0.3) {
        2
    } else {
        1
    };
    for _ in 0..edits {
        match rng.gen_range(0..4u8) {
            // substitution
            0 => {
                let pos = rng.gen_range(0..chars.len());
                let old = chars[pos];
                let mut new = *TYPO_ALPHABET.choose(rng).expect("nonempty");
                while new == old {
                    new = *TYPO_ALPHABET.choose(rng).expect("nonempty");
                }
                chars[pos] = new;
            }
            // insertion
            1 => {
                let pos = rng.gen_range(0..=chars.len());
                chars.insert(pos, *TYPO_ALPHABET.choose(rng).expect("nonempty"));
            }
            // deletion
            2 => {
                if chars.len() > 1 {
                    let pos = rng.gen_range(0..chars.len());
                    chars.remove(pos);
                } else {
                    chars.push(*TYPO_ALPHABET.choose(rng).expect("nonempty"));
                }
            }
            // adjacent transposition
            _ => {
                if chars.len() >= 2 {
                    let pos = rng.gen_range(0..chars.len() - 1);
                    chars.swap(pos, pos + 1);
                } else {
                    chars.push(*TYPO_ALPHABET.choose(rng).expect("nonempty"));
                }
            }
        }
    }
    let result: String = chars.into_iter().collect();
    if result == value {
        // Rare (e.g. transposing equal chars): force a substitution.
        let mut chars: Vec<char> = result.chars().collect();
        let pos = 0;
        let old = chars[pos];
        let mut new = *TYPO_ALPHABET.choose(rng).expect("nonempty");
        while new == old {
            new = *TYPO_ALPHABET.choose(rng).expect("nonempty");
        }
        chars[pos] = new;
        chars.into_iter().collect()
    } else {
        result
    }
}

/// Injects noise into a copy of `clean` according to `spec`, drawing semantic
/// errors from `semantic`. Returns the dirty relation and the error log
/// (sorted by cell).
pub fn inject(
    clean: &Relation,
    spec: &NoiseSpec,
    semantic: &dyn SemanticSource,
) -> (Relation, Vec<InjectedError>) {
    assert!(
        (0.0..=1.0).contains(&spec.error_rate),
        "error_rate must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&spec.typo_share),
        "typo_share must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut dirty = clean.clone();
    dirty.clear_marks();

    let mut candidates: Vec<CellRef> = clean
        .cell_refs()
        .filter(|c| !spec.excluded_attrs.contains(&c.attr))
        .collect();
    candidates.shuffle(&mut rng);
    let n_errors = ((clean.cell_count() as f64) * spec.error_rate).round() as usize;
    let n_errors = n_errors.min(candidates.len());
    let n_typos = ((n_errors as f64) * spec.typo_share).round() as usize;

    let mut log = Vec::with_capacity(n_errors);
    for (i, &cell) in candidates[..n_errors].iter().enumerate() {
        let clean_value = clean.value(cell).to_owned();
        let want_typo = i < n_typos;
        let (dirty_value, kind) = if want_typo {
            (make_typo(&clean_value, &mut rng), ErrorKind::Typo)
        } else {
            match semantic.related_value(clean, cell, &mut rng) {
                Some(v) if v != clean_value => (v, ErrorKind::Semantic),
                // No usable related value: degrade to a typo so the target
                // error count is still met.
                _ => (make_typo(&clean_value, &mut rng), ErrorKind::Typo),
            }
        };
        debug_assert_ne!(dirty_value, clean_value);
        dirty
            .tuple_mut(cell.row)
            .set(cell.attr, dirty_value.clone());
        log.push(InjectedError {
            cell,
            clean: clean_value,
            dirty: dirty_value,
            kind,
        });
    }
    log.sort_by_key(|e| e.cell);
    (dirty, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use proptest::prelude::*;

    fn sample(n: usize) -> Relation {
        let schema = Schema::new("R", &["Name", "City", "State"]);
        let mut r = Relation::new(schema);
        for i in 0..n {
            r.push_strs(&[
                &format!("person {i}"),
                &format!("city {}", i % 7),
                &format!("state {}", i % 3),
            ]);
        }
        r
    }

    #[test]
    fn injects_requested_count() {
        let clean = sample(100);
        let spec = NoiseSpec::new(0.10, 42);
        let (dirty, log) = inject(&clean, &spec, &ColumnSwapSource);
        assert_eq!(log.len(), 30); // 300 cells * 10%
                                   // Every logged cell actually differs; all others are untouched.
        let mut logged: Vec<CellRef> = log.iter().map(|e| e.cell).collect();
        logged.dedup();
        assert_eq!(logged.len(), log.len(), "cells dirtied at most once");
        for cell in clean.cell_refs() {
            let changed = clean.value(cell) != dirty.value(cell);
            assert_eq!(changed, logged.binary_search(&cell).is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let clean = sample(50);
        let spec = NoiseSpec::new(0.2, 7);
        let (d1, l1) = inject(&clean, &spec, &ColumnSwapSource);
        let (d2, l2) = inject(&clean, &spec, &ColumnSwapSource);
        assert_eq!(l1, l2);
        for cell in clean.cell_refs() {
            assert_eq!(d1.value(cell), d2.value(cell));
        }
        let other = NoiseSpec::new(0.2, 8);
        let (_, l3) = inject(&clean, &other, &ColumnSwapSource);
        assert_ne!(l1, l3, "different seeds should differ");
    }

    #[test]
    fn typo_share_controls_kinds() {
        let clean = sample(200);
        for share in [0.0, 0.5, 1.0] {
            let spec = NoiseSpec::new(0.1, 3).with_typo_share(share);
            let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
            let typos = log.iter().filter(|e| e.kind == ErrorKind::Typo).count();
            let expect = ((log.len() as f64) * share).round() as usize;
            // Semantic fallback can only increase typos.
            assert!(typos >= expect, "share {share}: {typos} < {expect}");
            if share == 1.0 {
                assert_eq!(typos, log.len());
            }
        }
    }

    #[test]
    fn excluded_attrs_never_dirtied() {
        let clean = sample(100);
        let name = clean.schema().attr_expect("Name");
        let spec = NoiseSpec::new(0.5, 11).with_excluded(vec![name]);
        let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
        assert!(log.iter().all(|e| e.cell.attr != name));
        assert!(!log.is_empty());
    }

    #[test]
    fn semantic_errors_stay_in_domain() {
        let clean = sample(100);
        let spec = NoiseSpec::new(0.2, 5).with_typo_share(0.0);
        let (_, log) = inject(&clean, &spec, &ColumnSwapSource);
        for e in &log {
            if e.kind == ErrorKind::Semantic {
                // The replacement is another value of the same column.
                let domain = clean.column_values(e.cell.attr);
                assert!(domain.contains(&e.dirty.as_str()));
                assert_ne!(e.dirty, e.clean);
            }
        }
        assert!(log.iter().any(|e| e.kind == ErrorKind::Semantic));
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let clean = sample(10);
        let (dirty, log) = inject(&clean, &NoiseSpec::new(0.0, 1), &ColumnSwapSource);
        assert!(log.is_empty());
        for cell in clean.cell_refs() {
            assert_eq!(clean.value(cell), dirty.value(cell));
        }
    }

    proptest! {
        #[test]
        fn typos_always_differ(value in "\\PC{0,12}", seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let typo = make_typo(&value, &mut rng);
            prop_assert_ne!(typo, value);
        }

        #[test]
        fn error_count_tracks_rate(rate in 0.0f64..=0.3, seed in 0u64..20) {
            let clean = sample(40); // 120 cells
            let (_, log) = inject(&clean, &NoiseSpec::new(rate, seed), &ColumnSwapSource);
            let expect = ((120.0 * rate).round()) as usize;
            prop_assert_eq!(log.len(), expect);
        }
    }
}
