//! JSON interchange for relations — the request-body twin of [`crate::csv`].
//!
//! The serving layer accepts relations as JSON as well as CSV. Two shapes
//! load, both mirroring the CSV convention that the first record is the
//! header:
//!
//! ```json
//! [["City", "Country"], ["Haifa", "Israel"]]
//! {"header": ["City", "Country"], "rows": [["Haifa", "Israel"]]}
//! ```
//!
//! Cells are strings; numbers, booleans, and `null` coerce to their
//! canonical text (`null` to the empty string) so numeric columns load
//! without quoting gymnastics. Ragged rows are quarantined under the same
//! [`LenientOptions`] policy the CSV loader uses — the header is not
//! negotiable.
//!
//! The parser is a self-contained recursive-descent JSON reader (the build
//! is offline; no serde), kept to what relation bodies need: strings with
//! full escape handling, numbers, arrays, objects, literals.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use dr_kb::{Diagnostic, LenientOptions, Quarantine};
use std::fmt;

/// A JSON relation-load failure: structural (bad JSON) or shape-level (the
/// value is valid JSON but not a relation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input (0 for shape-level errors).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value — only what relation bodies need.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as its source text (relations store strings;
    /// re-rendering through f64 would mangle `1e400` or big integers).
    Number(String),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The cell text this scalar coerces to, or `None` for arrays/objects.
    fn as_cell(&self) -> Option<String> {
        match self {
            JsonValue::Null => Some(String::new()),
            JsonValue::Bool(b) => Some(b.to_string()),
            JsonValue::Number(n) => Some(n.clone()),
            JsonValue::String(s) => Some(s.clone()),
            JsonValue::Array(_) | JsonValue::Object(_) => None,
        }
    }
}

/// Parses one complete JSON value from `text` (trailing non-whitespace is
/// an error).
///
/// # Errors
/// Malformed JSON, with the byte offset of the failure.
pub fn parse_value(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        // A UTF-8 BOM is not legal JSON but common in files from Windows
        // tooling; tolerate exactly one at the start.
        bytes: dr_kb::strip_bom(text).as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                None
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits; skip the
                            // shared `self.pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through verbatim: the
                    // input is a &str, so byte boundaries are sound.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = match rest[0] {
                        0x00..=0x1F => return Err(self.err("unescaped control character")),
                        0x20..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    out.push_str(
                        std::str::from_utf8(&rest[..len.min(rest.len())])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digit"));
            }
        }
        // The scanned range is ASCII digits/signs, so the slice is valid.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok(JsonValue::Number(text.to_owned()))
    }
}

/// Extracts `(header, rows)` from a parsed relation body: either a bare
/// array whose first element is the header, or an object with `header` and
/// `rows` keys.
fn relation_shape(value: JsonValue) -> Result<(Vec<String>, Vec<JsonValue>), JsonError> {
    let shape_err = |message: &str| JsonError {
        offset: 0,
        message: message.into(),
    };
    let (header_value, rows) = match value {
        JsonValue::Array(mut items) => {
            if items.is_empty() {
                return Err(shape_err("missing header record"));
            }
            let header = items.remove(0);
            (header, items)
        }
        JsonValue::Object(fields) => {
            let mut header = None;
            let mut rows = None;
            for (key, value) in fields {
                match key.as_str() {
                    "header" => header = Some(value),
                    "rows" => rows = Some(value),
                    _ => {} // unknown keys are ignored, like CSV comments
                }
            }
            let header = header.ok_or_else(|| shape_err("missing \"header\" key"))?;
            let rows = match rows.ok_or_else(|| shape_err("missing \"rows\" key"))? {
                JsonValue::Array(items) => items,
                _ => return Err(shape_err("\"rows\" must be an array")),
            };
            (header, rows)
        }
        _ => return Err(shape_err("relation body must be an array or object")),
    };
    let header = match header_value {
        JsonValue::Array(cells) => cells
            .iter()
            .map(|c| {
                c.as_cell()
                    .ok_or_else(|| shape_err("header cells must be scalars"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(shape_err("header must be an array")),
    };
    if header.is_empty() {
        return Err(shape_err("header must not be empty"));
    }
    Ok((header, rows))
}

/// Parses a JSON relation body leniently: rows that are not arrays, have
/// the wrong arity, or hold non-scalar cells are quarantined (with their
/// 1-based row number) instead of aborting — the JSON twin of
/// [`crate::csv::parse_lenient`].
///
/// # Errors
/// Malformed JSON or a missing/invalid header fails the whole load, as in
/// CSV: the header defines the schema and is not negotiable.
pub fn parse_lenient(
    name: &str,
    text: &str,
    opts: &LenientOptions,
) -> Result<(Relation, Quarantine), JsonError> {
    let (header, rows) = relation_shape(parse_value(text)?)?;
    let attr_names: Vec<&str> = header.iter().map(String::as_str).collect();
    let arity = attr_names.len();
    let schema = Schema::new(name, &attr_names);
    let mut relation = Relation::new(schema);
    let mut quarantine = Quarantine::new();
    for (i, row) in rows.into_iter().enumerate() {
        let line = i + 1;
        match row {
            JsonValue::Array(cells) if cells.len() == arity => {
                match cells
                    .iter()
                    .map(JsonValue::as_cell)
                    .collect::<Option<Vec<_>>>()
                {
                    Some(values) => relation.push(Tuple::new(values)),
                    None => quarantine.record(
                        Diagnostic {
                            line,
                            message: "row holds a non-scalar cell".into(),
                        },
                        opts,
                    ),
                }
            }
            JsonValue::Array(cells) => quarantine.record(
                Diagnostic {
                    line,
                    message: format!("expected {arity} cells, found {}", cells.len()),
                },
                opts,
            ),
            _ => quarantine.record(
                Diagnostic {
                    line,
                    message: "row is not an array".into(),
                },
                opts,
            ),
        }
    }
    Ok((relation, quarantine))
}

/// Byte-level twin of [`parse_lenient`], for request bodies.
///
/// # Errors
/// Invalid UTF-8 is an offset-0 [`JsonError`]; otherwise as
/// [`parse_lenient`].
pub fn parse_lenient_bytes(
    name: &str,
    bytes: &[u8],
    opts: &LenientOptions,
) -> Result<(Relation, Quarantine), JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JsonError {
        offset: e.valid_up_to(),
        message: format!("body is not UTF-8: {e}"),
    })?;
    parse_lenient(name, text, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> (Relation, Quarantine) {
        parse_lenient("R", text, &LenientOptions::default()).expect("parse")
    }

    fn schema_names(rel: &Relation) -> Vec<String> {
        rel.schema().attrs().map(|(_, n)| n.to_owned()).collect()
    }

    #[test]
    fn array_shape_loads_with_first_row_as_header() {
        let (rel, q) = parse_ok(r#"[["City","Country"],["Haifa","Israel"],["Oslo","Norway"]]"#);
        assert!(q.is_empty());
        assert_eq!(schema_names(&rel), ["City", "Country"]);
        assert_eq!(rel.len(), 2);
        let city = rel.schema().attr_expect("City");
        assert_eq!(rel.tuple(1).get(city), "Oslo");
    }

    #[test]
    fn object_shape_loads_header_and_rows() {
        let (rel, q) =
            parse_ok(r#"{"header": ["A", "B"], "rows": [["1", "2"]], "note": "ignored"}"#);
        assert!(q.is_empty());
        assert_eq!(schema_names(&rel), ["A", "B"]);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn scalar_cells_coerce_to_text() {
        let (rel, q) = parse_ok(r#"[["N","F","B","Z"],[42,1.5,true,null]]"#);
        assert!(q.is_empty());
        let t = rel.tuple(0);
        let s = rel.schema();
        assert_eq!(t.get(s.attr_expect("N")), "42");
        assert_eq!(t.get(s.attr_expect("F")), "1.5");
        assert_eq!(t.get(s.attr_expect("B")), "true");
        assert_eq!(t.get(s.attr_expect("Z")), "");
    }

    #[test]
    fn ragged_and_nonarray_rows_are_quarantined() {
        let (rel, q) = parse_ok(r#"[["A","B"],["x"],["x","y"],"noise",["x",["nested"]]]"#);
        assert_eq!(rel.len(), 1, "only the well-shaped row loads");
        assert_eq!(q.quarantined(), 3);
        assert!(q.diagnostics()[0].message.contains("expected 2 cells"));
        assert!(q.diagnostics()[1].message.contains("not an array"));
        assert!(q.diagnostics()[2].message.contains("non-scalar"));
        assert_eq!(q.diagnostics()[0].line, 1);
    }

    #[test]
    fn string_escapes_round_trip() {
        let (rel, _) = parse_ok(r#"[["A"],["tab\tquote\"slash\\uAsur😀"]]"#);
        let a = rel.schema().attr_expect("A");
        assert_eq!(rel.tuple(0).get(a), "tab\tquote\"slash\\uAsur😀");
    }

    #[test]
    fn header_failures_abort_the_load() {
        let opts = LenientOptions::default();
        for bad in [
            "[]",
            "[[]]",
            "{\"rows\": []}",
            "{\"header\": [\"A\"]}",
            "\"just a string\"",
            "[[\"A\"],", // malformed JSON
        ] {
            assert!(parse_lenient("R", bad, &opts).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn byte_entry_rejects_invalid_utf8() {
        let err = parse_lenient_bytes("R", &[0xFF, 0xFE], &LenientOptions::default())
            .expect_err("invalid UTF-8 accepted");
        assert!(err.message.contains("UTF-8"));
    }
}
