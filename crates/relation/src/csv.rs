//! Minimal RFC-4180-style CSV reading and writing for relations.
//!
//! Supports quoted fields with embedded commas, quotes (doubled), and
//! newlines. The first record is the header and becomes the schema.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use dr_kb::{Diagnostic, LenientOptions, Quarantine};
use std::fmt;

/// CSV parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (header = 1).
    pub record: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for CsvError {}

/// A streaming record scanner over CSV text.
///
/// Both the strict and the lenient parse drive this one lexer: the strict
/// path aborts on the first `Err`, the lenient path quarantines it and
/// keeps scanning — [`scan_next`](Self::scan_next) leaves the input
/// positioned after the malformed record, so the grammars cannot drift
/// apart.
struct RecordScanner<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Number of the record currently being scanned (1-based; both emitted
    /// and quarantined records consume a number).
    record_no: usize,
}

impl<'a> RecordScanner<'a> {
    fn new(text: &'a str) -> Self {
        // A UTF-8 BOM would otherwise glue itself to the first header
        // field name; Excel and friends emit one routinely.
        let text = dr_kb::strip_bom(text);
        Self {
            chars: text.chars().peekable(),
            record_no: 1,
        }
    }

    /// The record number [`scan_next`](Self::scan_next) just returned.
    fn last_record_no(&self) -> usize {
        self.record_no - 1
    }

    /// Skips input up to and including the next bare `\n` — the recovery
    /// point after a malformed record. Quote state is deliberately not
    /// tracked here: the record is already known broken, so its quoting
    /// cannot be trusted; resynchronizing on the next physical line keeps
    /// damage bounded to (at worst) a few cascading diagnostics.
    fn skip_to_newline(&mut self) {
        for ch in self.chars.by_ref() {
            if ch == '\n' {
                break;
            }
        }
    }

    /// Scans the next record: `None` at end of input, `Ok(fields)` for a
    /// well-formed record, `Err` for a malformed one (input is left at its
    /// recovery point). Blank lines are skipped, and a trailing newline
    /// does not produce a phantom empty record.
    fn scan_next(&mut self) -> Option<Result<Vec<String>, CsvError>> {
        let mut fields: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut record_started = false;
        let record = self.record_no;

        while let Some(ch) = self.chars.next() {
            if in_quotes {
                match ch {
                    '"' => {
                        if self.chars.peek() == Some(&'"') {
                            self.chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    _ => field.push(ch),
                }
                continue;
            }
            match ch {
                '"' => {
                    if !field.is_empty() {
                        self.skip_to_newline();
                        self.record_no += 1;
                        return Some(Err(CsvError {
                            record,
                            message: "quote inside unquoted field".into(),
                        }));
                    }
                    in_quotes = true;
                    record_started = true;
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    record_started = true;
                }
                '\r' => {
                    // Swallow; \r\n handled by the \n branch.
                }
                '\n' => {
                    if record_started || !field.is_empty() || !fields.is_empty() {
                        fields.push(field);
                        self.record_no += 1;
                        return Some(Ok(fields));
                    }
                    // Blank line: keep scanning.
                }
                _ => {
                    field.push(ch);
                    record_started = true;
                }
            }
        }
        if in_quotes {
            self.record_no += 1;
            return Some(Err(CsvError {
                record,
                message: "unterminated quoted field".into(),
            }));
        }
        if record_started || !field.is_empty() || !fields.is_empty() {
            fields.push(field);
            self.record_no += 1;
            return Some(Ok(fields));
        }
        None
    }
}

/// Splits CSV text into records of fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut scanner = RecordScanner::new(text);
    let mut records = Vec::new();
    while let Some(record) = scanner.scan_next() {
        records.push(record?);
    }
    Ok(records)
}

/// Parses CSV text into a relation named `name`. The first record is the
/// header.
///
/// # Errors
/// Fails on malformed CSV, a missing header, or ragged rows.
pub fn parse(name: &str, text: &str) -> Result<Relation, CsvError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(CsvError {
        record: 1,
        message: "missing header record".into(),
    })?;
    let attr_names: Vec<&str> = header.iter().map(String::as_str).collect();
    let schema = Schema::new(name, &attr_names);
    let mut relation = Relation::new(schema);
    for (i, record) in iter.enumerate() {
        if record.len() != attr_names.len() {
            return Err(CsvError {
                record: i + 2,
                message: format!(
                    "expected {} fields, found {}",
                    attr_names.len(),
                    record.len()
                ),
            });
        }
        relation.push(Tuple::new(record));
    }
    Ok(relation)
}

/// Parses CSV text into a relation leniently: malformed and ragged records
/// are quarantined (skipped, with a [`Diagnostic`] carrying the 1-based
/// record number and the strict parser's message) instead of aborting.
///
/// Well-formed records load exactly as under [`parse`]. The header is not
/// negotiable — it defines the schema, so a missing or malformed first
/// record fails the whole load just as in strict mode.
///
/// # Errors
/// Only a missing or malformed header record.
pub fn parse_lenient(
    name: &str,
    text: &str,
    opts: &LenientOptions,
) -> Result<(Relation, Quarantine), CsvError> {
    let mut scanner = RecordScanner::new(text);
    let header = match scanner.scan_next() {
        None => {
            return Err(CsvError {
                record: 1,
                message: "missing header record".into(),
            })
        }
        Some(Err(e)) => return Err(e),
        Some(Ok(fields)) => fields,
    };
    let attr_names: Vec<&str> = header.iter().map(String::as_str).collect();
    let arity = attr_names.len();
    let schema = Schema::new(name, &attr_names);
    let mut relation = Relation::new(schema);
    let mut quarantine = Quarantine::new();
    while let Some(record) = scanner.scan_next() {
        match record {
            Ok(fields) if fields.len() == arity => relation.push(Tuple::new(fields)),
            Ok(fields) => quarantine.record(
                Diagnostic {
                    line: scanner.last_record_no(),
                    message: format!("expected {arity} fields, found {}", fields.len()),
                },
                opts,
            ),
            Err(e) => quarantine.record(
                Diagnostic {
                    line: e.record,
                    message: e.message,
                },
                opts,
            ),
        }
    }
    Ok((relation, quarantine))
}

/// Parses raw CSV bytes (an HTTP request body, a socket read) into a
/// relation leniently — the byte-level twin of [`parse_lenient`], for
/// callers that never had a path or a `&str` to begin with.
///
/// # Errors
/// Invalid UTF-8 is reported as a record-0 [`CsvError`] naming the byte
/// offset; header failures as in [`parse_lenient`].
pub fn parse_lenient_bytes(
    name: &str,
    bytes: &[u8],
    opts: &LenientOptions,
) -> Result<(Relation, Quarantine), CsvError> {
    let text = std::str::from_utf8(bytes).map_err(|e| CsvError {
        record: 0,
        message: format!("body is not UTF-8: {e}"),
    })?;
    parse_lenient(name, text, opts)
}

/// Loads a relation from a CSV file leniently (see [`parse_lenient`]); the
/// relation is named after the file stem.
///
/// # Errors
/// I/O failures (record 0) and header failures only.
pub fn load_file_lenient(
    path: impl AsRef<std::path::Path>,
    opts: &LenientOptions,
) -> Result<(Relation, Quarantine), CsvError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    let text = std::fs::read_to_string(path).map_err(|e| CsvError {
        record: 0,
        message: format!("io error: {e}"),
    })?;
    parse_lenient(&name, &text, opts)
}

/// Loads a relation from a CSV file; the relation is named after the file
/// stem.
///
/// # Errors
/// I/O failures and malformed CSV are both reported as [`CsvError`] (I/O
/// errors use record 0).
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Relation, CsvError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    let text = std::fs::read_to_string(path).map_err(|e| CsvError {
        record: 0,
        message: format!("io error: {e}"),
    })?;
    parse(&name, &text)
}

/// Writes a relation to a CSV file (see [`serialize`]).
///
/// # Errors
/// Propagates I/O failures.
pub fn save_file(relation: &Relation, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, serialize(relation))
}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn write_field(out: &mut String, field: &str) {
    if needs_quoting(field) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a relation to CSV text (header + rows). Marks are not encoded.
pub fn serialize(relation: &Relation) -> String {
    let mut out = String::new();
    let schema = relation.schema();
    for (i, (_, name)) in schema.attrs().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');
    for tuple in relation.tuples() {
        for (i, cell) in tuple.cells().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, cell);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_simple() {
        let r = parse(
            "Nobel",
            "Name,City\nAvram Hershko,Karcag\nMarie Curie,Paris\n",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().arity(), 2);
        let city = r.schema().attr_expect("City");
        assert_eq!(r.tuple(1).get(city), "Paris");
    }

    #[test]
    fn quoted_fields() {
        let r = parse("R", "A,B\n\"x, y\",\"say \"\"hi\"\"\"\n").unwrap();
        let a = r.schema().attr_expect("A");
        let b = r.schema().attr_expect("B");
        assert_eq!(r.tuple(0).get(a), "x, y");
        assert_eq!(r.tuple(0).get(b), "say \"hi\"");
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let r = parse("R", "A\n\"line1\nline2\"\n").unwrap();
        let a = r.schema().attr_expect("A");
        assert_eq!(r.tuple(0).get(a), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let r = parse("R", "A,B\r\n1,2\r\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ragged_row_rejected() {
        let err = parse("R", "A,B\n1\n").unwrap_err();
        assert_eq!(err.record, 2);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse("R", "A\n\"oops\n").is_err());
    }

    #[test]
    fn empty_text_rejected() {
        assert!(parse("R", "").is_err());
    }

    #[test]
    fn no_trailing_newline_ok() {
        let r = parse("R", "A\nlast").unwrap();
        let a = r.schema().attr_expect("A");
        assert_eq!(r.tuple(0).get(a), "last");
    }

    #[test]
    fn empty_fields_preserved() {
        let r = parse("R", "A,B,C\n,,\n").unwrap();
        assert_eq!(r.tuple(0).cells(), &["", "", ""]);
    }

    #[test]
    fn file_roundtrip_uses_stem_as_name() {
        let r = parse("X", "A,B\n1,2\n").unwrap();
        let path = std::env::temp_dir().join("dr_relation_roundtrip.csv");
        save_file(&r, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back.schema().name(), "dr_relation_roundtrip");
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_reports_io() {
        let err = load_file("/nonexistent/missing.csv").unwrap_err();
        assert_eq!(err.record, 0);
        assert!(err.message.contains("io error"));
    }

    /// Interleaved malformed records: the lenient parse loads every good
    /// row, quarantines each bad one with its record number and the strict
    /// message — and the strict parser still rejects the same input.
    #[test]
    fn lenient_parse_quarantines_interleaved_garbage() {
        let text = "\
Name,City
Avram Hershko,Karcag
only-one-field
Marie Curie,Paris
bad\"quote,x
a,b,c
Albert Einstein,Ulm
";
        let opts = LenientOptions::default();
        let (r, quarantine) = parse_lenient("Nobel", text, &opts).unwrap();

        assert_eq!(r.len(), 3);
        let city = r.schema().attr_expect("City");
        assert_eq!(r.tuple(0).get(city), "Karcag");
        assert_eq!(r.tuple(1).get(city), "Paris");
        assert_eq!(r.tuple(2).get(city), "Ulm");

        assert_eq!(quarantine.quarantined(), 3);
        let got: Vec<(usize, &str)> = quarantine
            .diagnostics()
            .iter()
            .map(|d| (d.line, d.message.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![
                (3, "expected 2 fields, found 1"),
                (5, "quote inside unquoted field"),
                (6, "expected 2 fields, found 3"),
            ]
        );

        // Strict still rejects: it lexes the whole text before arity
        // checks, so its first error is the quote failure at record 5.
        let err = parse("Nobel", text).unwrap_err();
        assert_eq!(err.record, 5);
        assert_eq!(err.message, "quote inside unquoted field");
    }

    /// An unterminated quote at EOF quarantines the remainder instead of
    /// failing the load.
    #[test]
    fn lenient_parse_quarantines_unterminated_quote() {
        let text = "A,B\n1,2\n\"oops,3\n4,5\n";
        let (r, quarantine) = parse_lenient("R", text, &LenientOptions::default()).unwrap();
        // The open quote swallows everything to EOF; only the row before it
        // survives.
        assert_eq!(r.len(), 1);
        assert_eq!(quarantine.quarantined(), 1);
        assert_eq!(quarantine.diagnostics()[0].line, 3);
        assert_eq!(
            quarantine.diagnostics()[0].message,
            "unterminated quoted field"
        );
        assert!(parse("R", text).is_err(), "strict still rejects");
    }

    /// Lenient and strict agree exactly on clean input.
    #[test]
    fn lenient_parse_is_strict_on_clean_input() {
        let text = "A,B\n\"x, y\",\"say \"\"hi\"\"\"\nplain,row\n";
        let strict = parse("R", text).unwrap();
        let (lenient, quarantine) = parse_lenient("R", text, &LenientOptions::default()).unwrap();
        assert!(quarantine.is_empty());
        assert_eq!(serialize(&strict), serialize(&lenient));
    }

    /// The header is not negotiable: a missing or malformed first record
    /// fails the lenient load too.
    #[test]
    fn lenient_parse_requires_valid_header() {
        let err = parse_lenient("R", "", &LenientOptions::default()).unwrap_err();
        assert_eq!(err.record, 1);
        assert_eq!(err.message, "missing header record");

        let err = parse_lenient("R", "bad\"header\n1,2\n", &LenientOptions::default()).unwrap_err();
        assert_eq!(err.record, 1);
        assert_eq!(err.message, "quote inside unquoted field");
    }

    /// The diagnostic cap bounds retained diagnostics, not the count.
    #[test]
    fn lenient_parse_enforces_diagnostic_cap() {
        let mut text = String::from("A,B\n");
        for _ in 0..10 {
            text.push_str("ragged\n");
        }
        text.push_str("ok,row\n");
        let opts = LenientOptions { max_diagnostics: 4 };
        let (r, quarantine) = parse_lenient("R", &text, &opts).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(quarantine.quarantined(), 10);
        assert_eq!(quarantine.diagnostics().len(), 4);
        assert_eq!(quarantine.dropped(), 6);
    }

    #[test]
    fn lenient_file_roundtrip() {
        let path = std::env::temp_dir().join("dr_relation_lenient.csv");
        std::fs::write(&path, "A,B\n1,2\nragged\n").unwrap();
        let (r, quarantine) = load_file_lenient(&path, &LenientOptions::default()).unwrap();
        assert_eq!(r.schema().name(), "dr_relation_lenient");
        assert_eq!(r.len(), 1);
        assert_eq!(quarantine.quarantined(), 1);
        std::fs::remove_file(&path).ok();
    }

    proptest! {
        /// Lenient parsing never changes what loads from *clean* text: it
        /// returns exactly the strict result with an empty quarantine.
        #[test]
        fn lenient_equals_strict_on_serialized_relations(
            rows in prop::collection::vec(
                prop::collection::vec("[a-z,\"\n ]{0,8}", 2..=2),
                0..6,
            ),
        ) {
            let schema = Schema::new("R", &["A", "B"]);
            let mut rel = Relation::new(schema);
            for row in &rows {
                rel.push(Tuple::new(row.clone()));
            }
            let text = serialize(&rel);
            let strict = parse("R", &text).unwrap();
            let (lenient, quarantine) =
                parse_lenient("R", &text, &LenientOptions::default()).unwrap();
            prop_assert!(quarantine.is_empty());
            prop_assert_eq!(serialize(&strict), serialize(&lenient));
        }
    }

    proptest! {
        #[test]
        fn roundtrip(
            rows in prop::collection::vec(
                prop::collection::vec("[a-z,\"\n ]{0,8}", 2..=2),
                0..6,
            ),
        ) {
            let schema = Schema::new("R", &["A", "B"]);
            let mut rel = Relation::new(schema);
            for row in &rows {
                rel.push(Tuple::new(row.clone()));
            }
            let text = serialize(&rel);
            let back = parse("R", &text).unwrap();
            prop_assert_eq!(back.len(), rel.len());
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(back.tuple(i).cells(), row.as_slice());
            }
        }
    }
}
