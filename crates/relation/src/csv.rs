//! Minimal RFC-4180-style CSV reading and writing for relations.
//!
//! Supports quoted fields with embedded commas, quotes (doubled), and
//! newlines. The first record is the header and becomes the schema.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::fmt;

/// CSV parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (header = 1).
    pub record: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Splits CSV text into records of fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut record_no = 1usize;
    // Track whether the current record has any content (avoids emitting a
    // phantom empty record for a trailing newline).
    let mut record_started = false;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError {
                        record: record_no,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                record_started = true;
            }
            ',' => {
                fields.push(std::mem::take(&mut field));
                record_started = true;
            }
            '\r' => {
                // Swallow; \r\n handled by the \n branch.
            }
            '\n' => {
                if record_started || !field.is_empty() || !fields.is_empty() {
                    fields.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut fields));
                    record_no += 1;
                }
                record_started = false;
            }
            _ => {
                field.push(ch);
                record_started = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            record: record_no,
            message: "unterminated quoted field".into(),
        });
    }
    if record_started || !field.is_empty() || !fields.is_empty() {
        fields.push(field);
        records.push(fields);
    }
    Ok(records)
}

/// Parses CSV text into a relation named `name`. The first record is the
/// header.
///
/// # Errors
/// Fails on malformed CSV, a missing header, or ragged rows.
pub fn parse(name: &str, text: &str) -> Result<Relation, CsvError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(CsvError {
        record: 1,
        message: "missing header record".into(),
    })?;
    let attr_names: Vec<&str> = header.iter().map(String::as_str).collect();
    let schema = Schema::new(name, &attr_names);
    let mut relation = Relation::new(schema);
    for (i, record) in iter.enumerate() {
        if record.len() != attr_names.len() {
            return Err(CsvError {
                record: i + 2,
                message: format!(
                    "expected {} fields, found {}",
                    attr_names.len(),
                    record.len()
                ),
            });
        }
        relation.push(Tuple::new(record));
    }
    Ok(relation)
}

/// Loads a relation from a CSV file; the relation is named after the file
/// stem.
///
/// # Errors
/// I/O failures and malformed CSV are both reported as [`CsvError`] (I/O
/// errors use record 0).
pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Relation, CsvError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    let text = std::fs::read_to_string(path).map_err(|e| CsvError {
        record: 0,
        message: format!("io error: {e}"),
    })?;
    parse(&name, &text)
}

/// Writes a relation to a CSV file (see [`serialize`]).
///
/// # Errors
/// Propagates I/O failures.
pub fn save_file(relation: &Relation, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, serialize(relation))
}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn write_field(out: &mut String, field: &str) {
    if needs_quoting(field) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a relation to CSV text (header + rows). Marks are not encoded.
pub fn serialize(relation: &Relation) -> String {
    let mut out = String::new();
    let schema = relation.schema();
    for (i, (_, name)) in schema.attrs().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, name);
    }
    out.push('\n');
    for tuple in relation.tuples() {
        for (i, cell) in tuple.cells().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, cell);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_simple() {
        let r = parse(
            "Nobel",
            "Name,City\nAvram Hershko,Karcag\nMarie Curie,Paris\n",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().arity(), 2);
        let city = r.schema().attr_expect("City");
        assert_eq!(r.tuple(1).get(city), "Paris");
    }

    #[test]
    fn quoted_fields() {
        let r = parse("R", "A,B\n\"x, y\",\"say \"\"hi\"\"\"\n").unwrap();
        let a = r.schema().attr_expect("A");
        let b = r.schema().attr_expect("B");
        assert_eq!(r.tuple(0).get(a), "x, y");
        assert_eq!(r.tuple(0).get(b), "say \"hi\"");
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let r = parse("R", "A\n\"line1\nline2\"\n").unwrap();
        let a = r.schema().attr_expect("A");
        assert_eq!(r.tuple(0).get(a), "line1\nline2");
    }

    #[test]
    fn crlf_line_endings() {
        let r = parse("R", "A,B\r\n1,2\r\n").unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ragged_row_rejected() {
        let err = parse("R", "A,B\n1\n").unwrap_err();
        assert_eq!(err.record, 2);
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse("R", "A\n\"oops\n").is_err());
    }

    #[test]
    fn empty_text_rejected() {
        assert!(parse("R", "").is_err());
    }

    #[test]
    fn no_trailing_newline_ok() {
        let r = parse("R", "A\nlast").unwrap();
        let a = r.schema().attr_expect("A");
        assert_eq!(r.tuple(0).get(a), "last");
    }

    #[test]
    fn empty_fields_preserved() {
        let r = parse("R", "A,B,C\n,,\n").unwrap();
        assert_eq!(r.tuple(0).cells(), &["", "", ""]);
    }

    #[test]
    fn file_roundtrip_uses_stem_as_name() {
        let r = parse("X", "A,B\n1,2\n").unwrap();
        let path = std::env::temp_dir().join("dr_relation_roundtrip.csv");
        save_file(&r, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(back.schema().name(), "dr_relation_roundtrip");
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_reports_io() {
        let err = load_file("/nonexistent/missing.csv").unwrap_err();
        assert_eq!(err.record, 0);
        assert!(err.message.contains("io error"));
    }

    proptest! {
        #[test]
        fn roundtrip(
            rows in prop::collection::vec(
                prop::collection::vec("[a-z,\"\n ]{0,8}", 2..=2),
                0..6,
            ),
        ) {
            let schema = Schema::new("R", &["A", "B"]);
            let mut rel = Relation::new(schema);
            for row in &rows {
                rel.push(Tuple::new(row.clone()));
            }
            let text = serialize(&rel);
            let back = parse("R", &text).unwrap();
            prop_assert_eq!(back.len(), rel.len());
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(back.tuple(i).cells(), row.as_slice());
            }
        }
    }
}
